"""Behavioural tests for PrefillInstance and DecodeInstance."""

import pytest

from repro.core import DEFAULT_SLO, DecodeBatch
from repro.core.instance import DecodeInstance, PrefillInstance
from repro.core.prefill_sched import PrefillGroup
from repro.engine import AegaeonEngine, EngineConfig, Phase, Request
from repro.hardware import H800, Node
from repro.memory import HostModelCache, SlabAllocator
from repro.models import get_model
from repro.sim import Environment
from repro.workload.trace import TraceRequest

GiB = 1024**3
MiB = 1024**2


def make_engine(env, warm=("Qwen-7B", "Yi-6B", "InternLM2.5-7B")):
    node = Node(env, H800, gpu_count=1)
    cache = HostModelCache(640 * GiB)
    for name in warm:
        cache.insert(name, get_model(name).weight_bytes)
    cpu_kv = SlabAllocator(320 * GiB, 256 * MiB)
    return AegaeonEngine(
        env, node, node.gpus, cache, cpu_kv, pre_initialized=True
    )


def make_request(request_id=0, model="Qwen-7B", arrival=0.0, inp=256, out=64):
    trace = TraceRequest(
        request_id=request_id,
        model=model,
        arrival=arrival,
        input_tokens=inp,
        output_tokens=out,
    )
    return Request(trace=trace, spec=get_model(model))


class TestPrefillInstance:
    def test_executes_group_and_hands_off(self):
        env = Environment()
        engine = make_engine(env)
        handed = []
        instance = PrefillInstance(env, engine, handed.append)
        group = PrefillGroup(spec=get_model("Qwen-7B"))
        request = make_request(0)
        group.add(request)
        instance.groups.append(group)
        instance.kick()
        env.run(until=10.0)
        assert handed == [request]
        assert request.phase is Phase.DECODING
        assert request.generated_tokens == 1  # the prefill token
        assert request.prefill_end is not None
        assert request.kv.location == "cpu"  # offloaded for the decoder

    def test_groups_amortize_switching(self):
        env = Environment()
        engine = make_engine(env)
        handed = []
        instance = PrefillInstance(env, engine, handed.append)
        group_a = PrefillGroup(spec=get_model("Qwen-7B"))
        for request_id in range(3):
            group_a.add(make_request(request_id, "Qwen-7B"))
        group_b = PrefillGroup(spec=get_model("Yi-6B"))
        group_b.add(make_request(3, "Yi-6B"))
        instance.groups.extend([group_a, group_b])
        instance.kick()
        env.run(until=20.0)
        assert len(handed) == 4
        # One switch to Qwen, one to Yi — not one per request.
        assert len(engine.scale_history) == 2

    def test_fcfs_within_group(self):
        env = Environment()
        engine = make_engine(env)
        handed = []
        instance = PrefillInstance(env, engine, handed.append)
        group = PrefillGroup(spec=get_model("Qwen-7B"))
        for request_id in range(4):
            group.add(make_request(request_id))
        instance.groups.append(group)
        instance.kick()
        env.run(until=20.0)
        assert [r.request_id for r in handed] == [0, 1, 2, 3]

    def test_idle_instance_wakes_on_kick(self):
        env = Environment()
        engine = make_engine(env)
        handed = []
        instance = PrefillInstance(env, engine, handed.append)
        env.run(until=5.0)  # idles

        group = PrefillGroup(spec=get_model("Qwen-7B"))
        group.add(make_request(0, arrival=5.0))
        instance.groups.append(group)
        instance.kick()
        env.run(until=15.0)
        assert len(handed) == 1

    def test_load_estimate_counts_switch(self):
        env = Environment()
        engine = make_engine(env)
        instance = PrefillInstance(env, engine, lambda r: None)
        group = PrefillGroup(spec=get_model("Qwen-7B"))
        group.add(make_request(0))
        estimate = instance.estimate_group_time(group, previous=None)
        assert estimate > engine.base_switch_time(get_model("Qwen-7B"))


def prefilled_request(env, engine, request):
    """Stage a request as if a prefill instance had produced it."""
    from repro.models import kv_shape
    from repro.transfer import RequestKv

    request.kv = RequestKv(
        request_id=request.request_id,
        shape=kv_shape(request.spec),
        tokens=request.input_tokens,
    )
    request.kv.cpu_blocks = engine.kv.cpu_cache.alloc(
        request.kv.shape, request.kv.block_bytes, request.kv.block_count
    )
    request.kv.location = "cpu"
    request.record_tokens([env.now])
    request.phase = Phase.DECODING
    request.decode_enqueue = env.now
    return request


class TestDecodeInstance:
    def test_decodes_to_completion(self):
        env = Environment()
        engine = make_engine(env)
        finished = []
        instance = DecodeInstance(env, engine, DEFAULT_SLO, finished.append)
        request = prefilled_request(env, engine, make_request(0, out=32))
        batch = DecodeBatch(spec=request.spec, requests=[request])
        instance.work_list.append(batch)
        instance.kick()
        env.run(until=30.0)
        assert finished == [request]
        assert request.finished
        assert request.generated_tokens == 32
        assert request.finish_time is not None

    def test_round_robin_between_models(self):
        env = Environment()
        engine = make_engine(env)
        finished = []
        instance = DecodeInstance(env, engine, DEFAULT_SLO, finished.append)
        for index, model in enumerate(["Qwen-7B", "Yi-6B"]):
            request = prefilled_request(env, engine, make_request(index, model, out=128))
            instance.work_list.append(
                DecodeBatch(spec=request.spec, requests=[request])
            )
        instance.kick()
        env.run(until=120.0)
        assert len(finished) == 2
        # Both models were actually decoded (switches happened).
        switched_to = {record.model_to for record in engine.scale_history}
        assert {"Qwen-7B", "Yi-6B"} <= switched_to
        assert instance.rounds >= 2

    def test_tokens_respect_step_spacing(self):
        env = Environment()
        engine = make_engine(env)
        finished = []
        instance = DecodeInstance(env, engine, DEFAULT_SLO, finished.append)
        request = prefilled_request(env, engine, make_request(0, out=64))
        instance.work_list.append(DecodeBatch(spec=request.spec, requests=[request]))
        instance.kick()
        env.run(until=30.0)
        times = request.token_times
        gaps = [b - a for a, b in zip(times[1:], times[2:])]
        # Within-turn spacing equals a decode step (few ms), far under TBT.
        assert all(0 < gap < DEFAULT_SLO.tbt for gap in gaps if gap > 1e-9)

    def test_kv_freed_after_completion(self):
        env = Environment()
        engine = make_engine(env)
        instance = DecodeInstance(env, engine, DEFAULT_SLO, lambda r: None)
        request = prefilled_request(env, engine, make_request(0, out=16))
        instance.work_list.append(DecodeBatch(spec=request.spec, requests=[request]))
        instance.kick()
        env.run(until=30.0)
        assert engine.gpu_kv_cache.held_bytes == 0

    def test_batch_capacity_positive_and_bounded(self):
        env = Environment()
        engine = make_engine(env)
        instance = DecodeInstance(env, engine, DEFAULT_SLO, lambda r: None)
        for name in ["Qwen-7B", "Qwen-72B"]:
            capacity = instance.batch_capacity(get_model(name))
            assert 1 <= capacity <= instance.max_batch_size
        # The big-KV model admits fewer requests per batch.
        assert instance.batch_capacity(get_model("Qwen-72B")) <= instance.batch_capacity(
            get_model("Qwen-7B")
        )

    def test_single_model_uses_qmax_turns(self):
        env = Environment()
        engine = make_engine(env)
        instance = DecodeInstance(env, engine, DEFAULT_SLO, lambda r: None)
        request = prefilled_request(env, engine, make_request(0, out=2000))
        instance.work_list.append(DecodeBatch(spec=request.spec, requests=[request]))
        instance.kick()
        env.run(until=10.0)
        # No other model: no switching at all beyond the initial scale.
        switches = [r for r in engine.scale_history if r.model_from is not None]
        assert len(switches) == 0
