"""Property-based tests for the analytical latency model (Appendix A.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import A10, GPU_PRESETS, H800
from repro.models import LatencyModel, get_model, switch_time

from .strategies import (
    batch_sizes,
    context_tokens,
    gpu_names,
    model_names,
    prompt_lengths,
)


class TestPrefillProperties:
    @settings(max_examples=50, deadline=None)
    @given(model=model_names, length=prompt_lengths)
    def test_positive_and_finite(self, model, length):
        latency = LatencyModel(get_model(model), H800)
        time = latency.prefill_time([length])
        assert 0 < time < 120.0

    @settings(max_examples=50, deadline=None)
    @given(
        model=model_names,
        short=st.integers(min_value=1, max_value=2048),
        extra=st.integers(min_value=1, max_value=2048),
    )
    def test_monotone_in_length(self, model, short, extra):
        latency = LatencyModel(get_model(model), H800)
        assert latency.prefill_time([short + extra]) > latency.prefill_time([short])

    @settings(max_examples=30, deadline=None)
    @given(
        lengths=st.lists(
            st.integers(min_value=16, max_value=1024), min_size=2, max_size=6
        )
    )
    def test_batching_no_worse_than_serial(self, lengths):
        # One batch never takes longer than running the requests one by
        # one (it saves the per-batch overhead).
        latency = LatencyModel(get_model("Qwen-7B"), H800)
        together = latency.prefill_time(lengths)
        apart = sum(latency.prefill_time([length]) for length in lengths)
        assert together <= apart + 1e-9


class TestDecodeProperties:
    @settings(max_examples=50, deadline=None)
    @given(model=model_names, batch=batch_sizes, context=context_tokens)
    def test_positive_and_bounded(self, model, batch, context):
        latency = LatencyModel(get_model(model), H800)
        time = latency.decode_step_time(batch, context)
        assert 0 < time < 5.0

    @settings(max_examples=50, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=32),
        context=st.integers(min_value=64, max_value=16384),
        extra=st.integers(min_value=1, max_value=16384),
    )
    def test_monotone_in_context(self, batch, context, extra):
        latency = LatencyModel(get_model("Llama-13B"), H800)
        assert latency.decode_step_time(batch, context + extra) >= latency.decode_step_time(
            batch, context
        )

    @settings(max_examples=30, deadline=None)
    @given(model=model_names)
    def test_batching_improves_per_token_efficiency(self, model):
        # Decoding is memory-bound: 8 requests in one step cost far less
        # than 8 separate steps.
        latency = LatencyModel(get_model(model), H800)
        batched = latency.decode_step_time(8, 8 * 512)
        serial = 8 * latency.decode_step_time(1, 512)
        assert batched < serial


class TestCrossHardwareProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        model=st.sampled_from(["Qwen-1.8B", "Yi-6B", "Qwen-7B"]),
        length=st.integers(min_value=64, max_value=2048),
    )
    def test_a10_never_faster_than_h800(self, model, length):
        spec = get_model(model)
        fast = LatencyModel(spec, H800)
        slow = LatencyModel(spec, A10)
        assert slow.prefill_time([length]) > fast.prefill_time([length])
        assert slow.decode_step_time(4, length) > fast.decode_step_time(4, length)

    @settings(max_examples=40, deadline=None)
    @given(model=model_names, gpu=gpu_names)
    def test_switch_time_scales_with_weights(self, model, gpu):
        spec = get_model(model)
        device = GPU_PRESETS[gpu]
        time = switch_time(spec, device)
        assert time == pytest.approx(
            spec.weight_bytes / (device.pcie_bandwidth * 0.625)
        )

    @settings(max_examples=20, deadline=None)
    @given(tp=st.sampled_from([1, 2, 4, 8]))
    def test_tp_divides_switch_time(self, tp):
        spec = get_model("Qwen-72B")
        assert switch_time(spec, H800, tp=tp) == pytest.approx(
            switch_time(spec, H800, tp=1) / tp
        )
