"""Differential test: continuation machines vs generator processes.

The tentpole refactor rewrote the hot-path lifecycles as explicit
:class:`~repro.sim.ContTask` state machines with the contract that a
converted lifecycle is *indistinguishable* from its generator form —
same events, same firing order, same clocks, same consumed sequence
numbers.  This property test checks the contract at the kernel level:
hypothesis draws a random multi-actor schedule of timeouts, store
puts/gets, ``all_of``/``any_of`` composites, and cross-actor
interrupts, runs it once with every actor as a generator process and
once with every actor as a hand-flattened ``ContTask``, and requires
the two executions to be identical — op-completion log (time, actor,
op, kind, value), final clock, dispatched step count, and scheduled
event count all byte-equal.

Any divergence — a continuation consuming an extra event, firing in a
different order at a shared timestamp, or surfacing an interrupt to a
different op — fails with a shrunk schedule that reproduces it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ContTask, Environment, Interrupt, Store

N_STORES = 2

# Delays on a coarse grid: collisions at shared timestamps are the
# interesting case (same-timestamp batched dispatch), so make them
# likely; exact float equality across the two runs is trivially safe
# because both runs do identical arithmetic.
_delays = st.integers(min_value=0, max_value=12).map(lambda n: n * 0.25)
_store_ids = st.integers(min_value=0, max_value=N_STORES - 1)


def _ops(n_actors: int) -> st.SearchStrategy:
    actor_ids = st.integers(min_value=0, max_value=n_actors - 1)
    return st.one_of(
        st.tuples(st.just("timeout"), _delays),
        st.tuples(st.just("put"), _store_ids),
        st.tuples(st.just("get"), _store_ids),
        st.tuples(st.just("all_of"), st.lists(_delays, min_size=1, max_size=3)),
        st.tuples(st.just("any_of"), st.lists(_delays, min_size=1, max_size=3)),
        st.tuples(st.just("interrupt"), actor_ids),
    )


@st.composite
def _programs(draw) -> list[list[tuple]]:
    """One script (a list of ops) per actor."""
    n_actors = draw(st.integers(min_value=1, max_value=4))
    return draw(
        st.lists(
            st.lists(_ops(n_actors), max_size=6),
            min_size=n_actors,
            max_size=n_actors,
        )
    )


def _interrupt_target(procs: dict, aid: int, target_id: int):
    """The interruptible target, or None.

    Both implementations guard identically: only a live actor currently
    parked on an event can be interrupted.  Self-interrupt is excluded —
    a running actor's wait target is the event it just woke from, so
    interrupting it would deliver after the actor already finished.
    """
    if target_id == aid:
        return None
    target = procs[target_id]
    if target.is_alive and target.target is not None:
        return target
    return None


# -- reference implementation: one generator process per actor ---------------

def _gen_actor(env, aid, ops, stores, log, procs):
    for i, op in enumerate(ops):
        kind = op[0]
        try:
            if kind == "timeout":
                yield env.timeout(op[1])
                log.append((env.now, aid, i, kind, None))
            elif kind == "put":
                yield stores[op[1]].put((aid, i))
                log.append((env.now, aid, i, kind, None))
            elif kind == "get":
                item = yield stores[op[1]].get()
                log.append((env.now, aid, i, kind, item))
            elif kind == "all_of":
                yield env.all_of([env.timeout(d) for d in op[1]])
                log.append((env.now, aid, i, kind, None))
            elif kind == "any_of":
                yield env.any_of([env.timeout(d) for d in op[1]])
                log.append((env.now, aid, i, kind, None))
            else:  # interrupt: synchronous, no yield
                target = _interrupt_target(procs, aid, op[1])
                if target is not None:
                    target.interrupt((aid, i))
                log.append((env.now, aid, i, kind, None))
        except Interrupt as exc:
            log.append((env.now, aid, i, "interrupted", str(exc.cause)))


# -- subject implementation: one continuation machine per actor --------------

class _TaskActor(ContTask):
    __slots__ = ("_aid", "_ops", "_stores", "_log", "_procs", "_i")

    def __init__(self, env, aid, ops, stores, log, procs):
        self._aid = aid
        self._ops = ops
        self._stores = stores
        self._log = log
        self._procs = procs
        self._i = 0
        ContTask.__init__(self, env)

    def _start(self, value):
        return self._next()

    def _next(self):
        ops = self._ops
        env = self.env
        while self._i < len(ops):
            op = ops[self._i]
            kind = op[0]
            if kind == "timeout":
                self._send = self._done
                return env.timeout(op[1])
            if kind == "put":
                self._send = self._done
                return self._stores[op[1]].put((self._aid, self._i))
            if kind == "get":
                self._send = self._done
                return self._stores[op[1]].get()
            if kind == "all_of":
                self._send = self._done
                return env.all_of([env.timeout(d) for d in op[1]])
            if kind == "any_of":
                self._send = self._done
                return env.any_of([env.timeout(d) for d in op[1]])
            # interrupt: synchronous, no wait
            target = _interrupt_target(self._procs, self._aid, op[1])
            if target is not None:
                target.interrupt((self._aid, self._i))
            self._log.append((env.now, self._aid, self._i, kind, None))
            self._i += 1
        raise StopIteration(None)

    def _done(self, value):
        op = self._ops[self._i]
        kind = op[0]
        self._log.append(
            (self.env.now, self._aid, self._i, kind,
             value if kind == "get" else None)
        )
        self._i += 1
        return self._next()

    def _on_throw(self, exc):
        if isinstance(exc, Interrupt):
            self._log.append(
                (self.env.now, self._aid, self._i, "interrupted", str(exc.cause))
            )
            self._i += 1
            return self._next()
        raise exc


# -- the differential runs ---------------------------------------------------

def _run_reference(program):
    env = Environment()
    stores = [Store(env) for _ in range(N_STORES)]
    log: list = []
    procs: dict = {}
    for aid, ops in enumerate(program):
        procs[aid] = env.process(_gen_actor(env, aid, ops, stores, log, procs))
    env.run()
    return log, env.now, env.steps_executed, env.events_scheduled


def _run_continuations(program):
    env = Environment()
    stores = [Store(env) for _ in range(N_STORES)]
    log: list = []
    procs: dict = {}
    for aid, ops in enumerate(program):
        procs[aid] = _TaskActor(env, aid, ops, stores, log, procs)
    env.run()
    return log, env.now, env.steps_executed, env.events_scheduled


class TestContinuationDifferential:
    @settings(max_examples=200, deadline=None)
    @given(program=_programs())
    def test_firing_order_and_clocks_identical(self, program):
        ref_log, ref_now, ref_steps, ref_events = _run_reference(program)
        task_log, task_now, task_steps, task_events = _run_continuations(program)
        assert task_log == ref_log
        assert task_now == ref_now
        assert task_steps == ref_steps
        assert task_events == ref_events

    def test_known_interleaving(self):
        # A fixed schedule covering every op kind, as a readable anchor:
        # actor 1 feeds actor 0's get, actor 2 interrupts actor 0's
        # long timeout, composites race at a shared timestamp.
        program = [
            [("get", 0), ("timeout", 10.0), ("all_of", [0.5, 0.25])],
            [("timeout", 0.25), ("put", 0), ("any_of", [0.25, 0.25])],
            [("timeout", 0.5), ("interrupt", 0), ("timeout", 0.0)],
        ]
        ref = _run_reference(program)
        task = _run_continuations(program)
        assert task == ref
        log = ref[0]
        kinds = [(entry[1], entry[3]) for entry in log]
        assert (0, "get") in kinds
        assert (0, "interrupted") in kinds
        assert (2, "interrupt") in kinds
