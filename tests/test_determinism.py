"""Determinism: identical seeds must give bit-identical serving runs.

The simulation kernel breaks ties by scheduling order, so a full
end-to-end serve — schedulers, engines, transfers, daemons — must be a
pure function of (trace, configuration).
"""

from repro.core import AegaeonConfig, AegaeonServer
from repro.baselines import ServerlessLLM
from repro.hardware import Cluster, H800
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import sharegpt, synthesize_trace


def run_aegaeon(seed):
    env = Environment()
    server = AegaeonServer(
        env,
        Cluster.homogeneous(env, H800, 1, 4),
        AegaeonConfig(prefill_instances=1, decode_instances=3),
    )
    models = market_mix(8)
    trace = synthesize_trace(models, [0.1] * 8, sharegpt(), horizon=60.0, seed=seed)
    result = server.serve(trace)
    return [
        (r.request_id, r.prefill_start, r.finish_time, tuple(r.token_times))
        for r in result.requests
    ]


class TestDeterminism:
    def test_aegaeon_bitwise_repeatable(self):
        assert run_aegaeon(1) == run_aegaeon(1)

    def test_different_seeds_differ(self):
        assert run_aegaeon(1) != run_aegaeon(2)

    def test_serverless_llm_repeatable(self):
        def run():
            env = Environment()
            server = ServerlessLLM(env, Cluster.homogeneous(env, H800, 1, 2))
            models = market_mix(4)
            trace = synthesize_trace(models, [0.1] * 4, sharegpt(), horizon=40.0, seed=5)
            result = server.serve(trace)
            return [(r.request_id, tuple(r.token_times)) for r in result.requests]

        assert run() == run()
