"""Determinism: identical seeds must give bit-identical serving runs.

The simulation kernel breaks ties by scheduling order, so a full
end-to-end serve — schedulers, engines, transfers, daemons — must be a
pure function of (trace, configuration).
"""

from repro.core import AegaeonConfig, AegaeonServer, SystemSpec, build_system
from repro.baselines import ServerlessLLM
from repro.hardware import Cluster, H800
from repro.models import market_mix
from repro.obs import ObsConfig
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace


def run_aegaeon(seed):
    env = Environment()
    server = AegaeonServer(
        env,
        Cluster.homogeneous(env, H800, 1, 4),
        AegaeonConfig(prefill_instances=1, decode_instances=3),
    )
    models = market_mix(8)
    trace = materialize_trace(models, [0.1] * 8, sharegpt(), horizon=60.0, seed=seed)
    result = server.serve(trace)
    return [
        (r.request_id, r.prefill_start, r.finish_time, tuple(r.token_times))
        for r in result.requests
    ]


class TestDeterminism:
    def test_aegaeon_bitwise_repeatable(self):
        assert run_aegaeon(1) == run_aegaeon(1)

    def test_different_seeds_differ(self):
        assert run_aegaeon(1) != run_aegaeon(2)

    def test_serverless_llm_repeatable(self):
        def run():
            env = Environment()
            server = ServerlessLLM(env, Cluster.homogeneous(env, H800, 1, 2))
            models = market_mix(4)
            trace = materialize_trace(models, [0.1] * 4, sharegpt(), horizon=40.0, seed=5)
            result = server.serve(trace)
            return [(r.request_id, tuple(r.token_times)) for r in result.requests]

        assert run() == run()


def _canonical(value):
    """Make a metric snapshot comparable: NaN (empty-histogram summary
    statistics) compares unequal to itself, so map it to a sentinel."""
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, float) and value != value:
        return "nan"
    return value


def run_unified_with_metrics(seed):
    """One unified-API serve with the metrics layer on; returns the
    full observable surface: metric snapshot, end time, kernel counters."""
    env = Environment()
    system = build_system(
        SystemSpec(
            config=AegaeonConfig(
                prefill_instances=1,
                decode_instances=2,
                cluster="h800-quad",
                obs=ObsConfig.metrics_only(),
            ),
        ),
        env,
    )
    models = market_mix(6)
    trace = materialize_trace(
        models, [0.15] * 6, sharegpt(), horizon=40.0, seed=seed
    )
    result = system.serve(trace)
    return {
        "metrics": _canonical(result.metrics),
        "end_time": result.end_time,
        "sim_now": env.now,
        "steps": env.steps_executed,
        "requests": [
            (r.request_id, r.prefill_start, r.finish_time, tuple(r.token_times))
            for r in result.requests
        ],
    }


class TestMetricSnapshotDeterminism:
    """The kernel freelists/fast paths must not leak into results: two
    serves of the same seeded trace give identical metric snapshots."""

    def test_snapshots_bitwise_identical(self):
        first = run_unified_with_metrics(11)
        second = run_unified_with_metrics(11)
        assert first["metrics"] == second["metrics"]
        assert first["end_time"] == second["end_time"]
        assert first["sim_now"] == second["sim_now"]
        assert first["steps"] == second["steps"]
        assert first["requests"] == second["requests"]

    def test_snapshot_is_nontrivial(self):
        snapshot = run_unified_with_metrics(11)
        assert snapshot["metrics"], "metrics layer produced an empty snapshot"
        assert snapshot["requests"], "trace produced no requests"
