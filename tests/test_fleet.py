"""Tests for the fleet control plane: partitioning, rollup, fleet runs."""

import math

import numpy as np
import pytest

from repro.chaos import FaultPlan, InstanceFailure
from repro.core import AegaeonConfig, SystemSpec
from repro.fleet import (
    CatalogPartitioner,
    FleetConfig,
    FleetRollup,
    LatencyHistogram,
    ShardStats,
    build_fleet,
)
from repro.models import market_mix
from repro.workload import market_stream


def small_spec(**overrides):
    """A 4-GPU Aegaeon shard, cheap enough to stack several per test."""
    config = AegaeonConfig(
        prefill_instances=1, decode_instances=3, cluster="h800-quad", **overrides
    )
    return SystemSpec(config=config)


class TestPartitioner:
    def test_deterministic_across_instances(self):
        names = [f"model-{i:03d}" for i in range(200)]
        a = CatalogPartitioner(8)
        b = CatalogPartitioner(8)
        assert [a.shard_of(n) for n in names] == [b.shard_of(n) for n in names]

    def test_assign_covers_catalog_exactly_once(self):
        models = market_mix(60)
        partitioner = CatalogPartitioner(5)
        buckets = partitioner.assign(models)
        assert set(buckets) == set(range(5))
        flat = [spec.name for bucket in buckets.values() for spec in bucket]
        assert sorted(flat) == sorted(spec.name for spec in models)

    def test_spread_is_roughly_uniform(self):
        names = [f"model-{i}" for i in range(4000)]
        partitioner = CatalogPartitioner(4, virtual_nodes=128)
        counts = [0] * 4
        for name in names:
            counts[partitioner.shard_of(name)] += 1
        assert min(counts) > 0.5 * (4000 / 4)
        assert max(counts) < 2.0 * (4000 / 4)

    def test_pin_overrides_ring(self):
        partitioner = CatalogPartitioner(4)
        home = partitioner.shard_of("hot-model")
        target = (home + 1) % 4
        partitioner.pin("hot-model", target)
        assert partitioner.shard_of("hot-model") == target
        partitioner.unpin("hot-model")
        assert partitioner.shard_of("hot-model") == home

    def test_pin_validates_range(self):
        with pytest.raises(ValueError):
            CatalogPartitioner(2).pin("m", 5)

    def test_rebalance_sheds_overloaded_shard(self):
        partitioner = CatalogPartitioner(4)
        loads = {f"model-{i}": 0.05 for i in range(40)}
        hot = "model-7"
        loads[hot] = 10.0  # one model dwarfs everything
        before = max(_shard_loads(partitioner, loads))
        moves = partitioner.rebalance(loads, tolerance=0.10)
        after = max(_shard_loads(partitioner, loads))
        assert after <= before
        # Deterministic: a fresh partitioner makes identical moves.
        again = CatalogPartitioner(4).rebalance(dict(loads), tolerance=0.10)
        assert moves == again


def _shard_loads(partitioner, loads):
    totals = [0.0] * partitioner.shard_count
    for name, load in loads.items():
        totals[partitioner.shard_of(name)] += load
    return totals


class TestLatencyHistogram:
    def test_merge_equals_union(self):
        rng = np.random.default_rng(5)
        left_values = rng.lognormal(-2.0, 1.0, 3000)
        right_values = rng.lognormal(-1.0, 0.5, 2000)
        left, right, union = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for v in left_values:
            left.observe(v)
            union.observe(v)
        for v in right_values:
            right.observe(v)
            union.observe(v)
        left.merge(right)
        assert left.count == union.count == 5000
        assert left.total == pytest.approx(union.total)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert left.quantile(q) == union.quantile(q)

    def test_quantiles_track_exact_within_bucket_error(self):
        rng = np.random.default_rng(9)
        values = rng.lognormal(-2.0, 1.2, 20000)
        hist = LatencyHistogram()
        for v in values:
            hist.observe(v)
        for q in (0.50, 0.99):
            exact = float(np.quantile(values, q))
            # Geometric buckets: 32/decade => <= ~7.5% relative error.
            assert hist.quantile(q) == pytest.approx(exact, rel=0.08)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.mean)


class TestRollupConsistency:
    def test_fleet_counts_are_shard_sums(self):
        fleet = build_fleet(FleetConfig(shards=3, spec=small_spec()))
        stream = market_stream(18, 90.0, seed=21, total_rate=3.0)
        result = fleet.run(stream)
        total = result.rollup.total
        assert total.requests == sum(s.requests for s in result.shard_stats)
        assert total.requests == result.submitted
        assert total.tokens_met == sum(s.tokens_met for s in result.shard_stats)
        assert total.tokens_generated == sum(
            s.tokens_generated for s in result.shard_stats
        )
        assert total.ttft.count == sum(
            s.ttft.count for s in result.shard_stats
        )

    def test_fleet_rollup_matches_direct_merge(self):
        fleet = build_fleet(FleetConfig(shards=2, spec=small_spec()))
        result = fleet.run(market_stream(12, 60.0, seed=3, total_rate=2.0))
        direct = ShardStats(slo=result.shard_stats[0].slo)
        for stats in result.shard_stats:
            direct.merge(stats)
        rollup = FleetRollup(result.shard_stats)
        assert rollup.total.tokens_met == direct.tokens_met
        assert rollup.ttft_quantile(0.99) == direct.ttft.quantile(0.99)
        assert rollup.slo_attainment == direct.slo_attainment

    def test_attainment_counts_missing_tokens_as_missed(self):
        stats = ShardStats()

        class Stub:
            phase = None
            finished = False
            arrival = 0.0
            token_times = []
            output_tokens = 100
            input_tokens = 10

        from repro.engine.request import Phase

        Stub.phase = Phase.FAILED
        stats.fold(Stub())
        assert stats.tokens_expected == 100
        assert stats.slo_attainment == 0.0


class TestFleetRuns:
    def test_same_seed_runs_are_identical(self):
        def run():
            fleet = build_fleet(FleetConfig(shards=2, spec=small_spec()))
            return fleet.run(market_stream(12, 60.0, seed=17, total_rate=2.0))

        first, second = run(), run()
        assert first.summary() == second.summary()
        assert [s.as_dict() for s in first.shard_stats] == [
            s.as_dict() for s in second.shard_stats
        ]

    def test_streaming_mode_drops_disposed_requests(self):
        fleet = build_fleet(FleetConfig(shards=2, spec=small_spec()))
        result = fleet.run(market_stream(12, 60.0, seed=8, total_rate=2.0))
        assert result.submitted > 0
        for shard in fleet.shards:
            assert shard.system.finished == []  # nothing retained
            assert shard.system.proxy.live == {}
            assert shard.system.registry.statuses == {}
            assert shard.system.accounted == shard.stats.requests

    def test_retaining_mode_keeps_ledgers(self):
        fleet = build_fleet(
            FleetConfig(shards=2, spec=small_spec(), retain_requests=True)
        )
        result = fleet.run(market_stream(12, 60.0, seed=8, total_rate=2.0))
        kept = sum(len(s.system.finished) for s in fleet.shards)
        assert kept == result.rollup.total.finished > 0

    def test_cost_accounting_uses_market_rates(self):
        fleet = build_fleet(FleetConfig(shards=2, spec=small_spec()))
        result = fleet.run(market_stream(8, 40.0, seed=2, total_rate=1.0))
        # 8 H800s at $12/hr for end_time seconds.
        expected = 8 * 12.00 * result.end_time / 3600.0
        assert result.cost_usd == pytest.approx(expected)
        assert result.cost_per_token == pytest.approx(
            expected / result.rollup.total.tokens_generated
        )

    def test_fleet_metrics_exported_through_obs(self):
        fleet = build_fleet(FleetConfig(shards=2, spec=small_spec()))
        result = fleet.run(market_stream(8, 40.0, seed=2, total_rate=1.0))
        assert result.metrics["fleet/slo_attainment"] == pytest.approx(
            result.slo_attainment
        )
        assert result.metrics["fleet/submitted"] == result.submitted
        assert len(result.shard_metrics) == 2


class TestFleetChaos:
    def test_shard_instance_loss_with_invariants(self, monkeypatch):
        # REPRO_INVARIANTS=1 arms the runtime checker in every shard the
        # moment it is built; fleet.run() then asserts a clean record.
        monkeypatch.setenv("REPRO_INVARIANTS", "1")
        fleet = build_fleet(FleetConfig(shards=2, spec=small_spec()))
        victim = fleet.shards[1].system
        victim.attach_faults(
            FaultPlan.of(InstanceFailure(at=10.0, instance="decode1"))
        )
        result = fleet.run(market_stream(12, 60.0, seed=31, total_rate=2.0))
        for shard in fleet.shards:
            assert shard.system.invariant_checker is not None
            assert shard.system.invariant_checker.violations == []
        total = result.rollup.total
        assert total.requests == result.submitted
        assert total.finished + total.failed + total.rejected == total.requests

    def test_faulted_shard_does_not_contaminate_others(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "1")

        def run(faulted):
            fleet = build_fleet(FleetConfig(shards=2, spec=small_spec()))
            if faulted:
                fleet.shards[1].system.attach_faults(
                    FaultPlan.of(InstanceFailure(at=5.0, instance="decode0"))
                )
            result = fleet.run(market_stream(12, 60.0, seed=31, total_rate=2.0))
            return result, fleet

        clean_result, _ = run(faulted=False)
        faulted_result, fleet = run(faulted=True)
        # Shard 0 never sees the fault: identical stats either way.
        assert (
            faulted_result.shard_stats[0].as_dict()
            == clean_result.shard_stats[0].as_dict()
        )
