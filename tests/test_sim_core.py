"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_time_advances_clock(self, env):
        env.timeout(3.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_with_no_events_and_until(self, env):
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)


class TestTimeout:
    def test_fires_at_delay(self, env):
        times = []

        def proc():
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [2.5]

    def test_carries_value(self, env):
        got = []

        def proc():
            value = yield env.timeout(1.0, value="payload")
            got.append(value)

        env.process(proc())
        env.run()
        assert got == ["payload"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_sequential_timeouts_accumulate(self, env):
        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)
            return env.now

        result = env.run(until=env.process(proc()))
        assert result == 3.0


class TestDeterminism:
    def test_same_time_events_fire_in_schedule_order(self, env):
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ["a", "b", "c"]:
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_peek_returns_next_event_time(self, env):
        env.timeout(7.0)
        env.timeout(3.0)
        assert env.peek() == 3.0

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")


class TestProcess:
    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return 42

        assert env.run(until=env.process(proc())) == 42

    def test_process_is_alive(self, env):
        def proc():
            yield env.timeout(5.0)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_waiting_on_another_process(self, env):
        def child():
            yield env.timeout(2.0)
            return "done"

        def parent():
            result = yield env.process(child())
            return (env.now, result)

        assert env.run(until=env.process(parent())) == (2.0, "done")

    def test_waiting_on_finished_process(self, env):
        def child():
            yield env.timeout(1.0)
            return "early"

        child_proc = env.process(child())

        def parent():
            yield env.timeout(5.0)
            result = yield child_proc  # already finished
            return result

        assert env.run(until=env.process(parent())) == "early"

    def test_process_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield env.process(child())
            except ValueError as exc:
                return str(exc)

        assert env.run(until=env.process(parent())) == "boom"

    def test_unhandled_process_exception_surfaces(self, env):
        def proc():
            yield env.timeout(1.0)
            raise RuntimeError("unobserved")

        env.process(proc())
        with pytest.raises(RuntimeError, match="unobserved"):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yield_non_event_rejected(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()


class TestEvent:
    def test_manual_succeed(self, env):
        gate = env.event()
        log = []

        def waiter():
            value = yield gate
            log.append((env.now, value))

        def opener():
            yield env.timeout(3.0)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert log == [(3.0, "open")]

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_rejected(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_fail_requires_exception(self, env):
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_multiple_waiters_all_resume(self, env):
        gate = env.event()
        resumed = []

        def waiter(tag):
            yield gate
            resumed.append(tag)

        env.process(waiter(1))
        env.process(waiter(2))
        gate.succeed()
        env.run()
        assert resumed == [1, 2]


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def proc():
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(3.0, value="b")
            results = yield env.all_of([t1, t2])
            return (env.now, sorted(results.values()))

        assert env.run(until=env.process(proc())) == (3.0, ["a", "b"])

    def test_any_of_fires_on_first(self, env):
        def proc():
            t1 = env.timeout(1.0, value="fast")
            t2 = env.timeout(3.0, value="slow")
            results = yield env.any_of([t1, t2])
            return (env.now, list(results.values()))

        assert env.run(until=env.process(proc())) == (1.0, ["fast"])

    def test_all_of_empty_fires_immediately(self, env):
        def proc():
            yield env.all_of([])
            return env.now

        assert env.run(until=env.process(proc())) == 0.0

    def test_all_of_propagates_failure(self, env):
        def failing():
            yield env.timeout(1.0)
            raise KeyError("inner")

        def proc():
            try:
                yield env.all_of([env.process(failing()), env.timeout(5.0)])
            except KeyError:
                return "caught"

        assert env.run(until=env.process(proc())) == "caught"


class TestInterrupt:
    def test_interrupt_resumes_with_cause(self, env):
        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                return (env.now, interrupt.cause)

        victim_process = env.process(victim())

        def attacker():
            yield env.timeout(2.0)
            victim_process.interrupt(cause="preempted")

        env.process(attacker())
        assert env.run(until=victim_process) == (2.0, "preempted")

    def test_interrupt_terminated_process_rejected(self, env):
        def quick():
            yield env.timeout(0.1)

        process = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_old_target_does_not_resume_interrupted_process(self, env):
        resumes = []

        def victim():
            try:
                yield env.timeout(5.0)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield env.timeout(100.0)

        victim_process = env.process(victim())

        def attacker():
            yield env.timeout(1.0)
            victim_process.interrupt()

        env.process(attacker())
        env.run(until=50.0)
        assert resumes == ["interrupt"]


class TestRunUntilEvent:
    def test_returns_event_value(self, env):
        def proc():
            yield env.timeout(2.0)
            return "finished"

        assert env.run(until=env.process(proc())) == "finished"

    def test_starved_until_event_raises(self, env):
        gate = env.event()
        with pytest.raises(SimulationError):
            env.run(until=gate)
