"""Focused tests for paths the broader suites touch only incidentally."""

import numpy as np
import pytest

from repro.analysis import ServingResult, format_table, percentiles
from repro.core import DEFAULT_SLO, SloSpec, estimate_round_attainment
from repro.engine import AegaeonEngine, EngineConfig
from repro.hardware import H800, Link, Node
from repro.memory import HostModelCache, SlabAllocator
from repro.models import get_model
from repro.sim import Environment
from repro.workload import rate_series

GiB = 1024**3
MiB = 1024**2


class TestLinkQueueing:
    def test_queue_depth_visible_under_contention(self):
        env = Environment()
        link = Link(env, bandwidth=1e9, latency=0.0)
        for _ in range(3):
            env.process(link.transfer(int(1e9)))
        env.run(until=0.5)
        # One in flight, two queued.
        assert link.queue_depth == 2
        env.run()
        assert link.queue_depth == 0


class TestRateSeries:
    def test_windows_cover_horizon(self):
        arrivals = np.array([0.5, 1.5, 1.6, 9.9])
        centers, rates = rate_series(arrivals, horizon=10.0, window=2.0)
        assert len(centers) == len(rates) == 5
        assert rates[0] == pytest.approx(3 / 2.0)  # 0.5, 1.5, 1.6
        assert rates[4] == pytest.approx(1 / 2.0)  # 9.9

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            rate_series(np.array([1.0]), horizon=10.0, window=0.0)


class TestRoundAttainmentEstimate:
    def test_no_batches_is_perfect(self):
        assert estimate_round_attainment([], 5.0, DEFAULT_SLO) == 1.0

    def test_zero_cost_is_perfect(self):
        assert estimate_round_attainment([0.02, 0.03], 0.0, DEFAULT_SLO) == 1.0

    def test_step_slower_than_tbt_clamps(self):
        # When the step time exceeds the TBT the slack ratio clamps just
        # above one; the estimate stays a valid probability.
        slo = SloSpec(ttft=10.0, tbt=0.01)
        value = estimate_round_attainment([0.05, 0.05], 2.0, slo)
        assert 0.0 < value <= 1.0


class TestBlockingSyncPaths:
    """The non-fine-grained engine paths (T1/T2 ablation levels)."""

    def make_engine(self, env, config):
        node = Node(env, H800, gpu_count=1)
        cache = HostModelCache(640 * GiB)
        for name in ("Qwen-7B", "Yi-6B"):
            cache.insert(name, get_model(name).weight_bytes)
        return AegaeonEngine(
            env,
            node,
            node.gpus,
            cache,
            SlabAllocator(64 * GiB, 256 * MiB),
            config=config,
            pre_initialized=True,
        )

    def test_blocking_switch_records_kv_out_sync(self):
        env = Environment()
        config = EngineConfig(
            fine_grained_sync=False, prefetch=False
        )
        engine = self.make_engine(env, config)
        from repro.models import kv_shape
        from repro.transfer import RequestKv

        def scenario():
            yield from engine.scale_to(get_model("Qwen-7B"))
            kv = RequestKv(request_id=0, shape=kv_shape(get_model("Qwen-7B")), tokens=2048)
            engine.kv.alloc_gpu(kv)
            engine.kv.swap_out(kv)
            record = yield from engine.scale_to(get_model("Yi-6B"))
            return record

        record = env.run(until=env.process(scenario()))
        assert "kv_out_sync" in record.stages
        assert record.stages["kv_out_sync"] > 0

    def test_gc_stage_charged_without_explicit_memory(self):
        env = Environment()
        config = EngineConfig(
            explicit_memory=False, fine_grained_sync=False, prefetch=False
        )
        engine = self.make_engine(env, config)

        def scenario():
            yield from engine.scale_to(get_model("Qwen-7B"))
            record = yield from engine.scale_to(get_model("Yi-6B"))
            return record

        record = env.run(until=env.process(scenario()))
        assert record.stages.get("gc") == pytest.approx(
            engine.init_costs.gc_pass
        )


class TestServingResultEdges:
    def test_summary_with_unserved_requests(self):
        from repro.engine.request import Request
        from repro.workload.trace import TraceRequest

        trace = TraceRequest(
            request_id=0, model="Qwen-7B", arrival=0.0, input_tokens=8, output_tokens=4
        )
        request = Request(trace=trace, spec=get_model("Qwen-7B"))
        result = ServingResult(
            requests=[request], slo=DEFAULT_SLO, horizon=10.0, end_time=10.0
        )
        summary = result.summary()
        assert summary["finished"] == 0
        assert np.isnan(summary["mean_ttft"])
        assert result.slo_attainment() == 0.0

    def test_kv_sync_overheads_default_zero(self):
        result = ServingResult(
            requests=[], slo=DEFAULT_SLO, horizon=1.0, end_time=1.0
        )
        assert result.kv_sync_overheads().size == 0

    def test_scaling_latencies_filters_first_boot(self):
        from repro.engine.engine import ScaleRecord

        boot = ScaleRecord(model_from=None, model_to="a", started=0.0, ended=20.0)
        switch = ScaleRecord(model_from="a", model_to="b", started=21.0, ended=22.0)
        result = ServingResult(
            requests=[],
            slo=DEFAULT_SLO,
            horizon=1.0,
            end_time=1.0,
            scale_records=[boot, switch],
        )
        assert result.scaling_latencies().tolist() == [1.0]
        assert result.scaling_latencies(exclude_first_boot=False).size == 2


class TestReportingEdges:
    def test_table_handles_nan_and_large_values(self):
        table = format_table(["x"], [[float("nan")], [123456.0], [0.0001]])
        assert "nan" in table
        assert "1.23e" in table or "123456" in table

    def test_percentiles_custom_points(self):
        values = np.arange(11.0)
        result = percentiles(values, points=(10, 90))
        assert set(result) == {"p10", "p90"}
