"""Tests for metrics, the active-model theorem, and reporting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ServingResult,
    expected_active_models,
    format_cdf,
    format_series,
    format_table,
    goodput_frontier,
    models_per_gpu_bound,
    percentiles,
    simulate_active_models,
)
from repro.core import DEFAULT_SLO
from repro.engine.request import Request
from repro.models import get_model
from repro.workload.trace import TraceRequest


def make_request(request_id=0, arrival=0.0, out=10, token_times=None, model="Qwen-7B"):
    trace = TraceRequest(
        request_id=request_id,
        model=model,
        arrival=arrival,
        input_tokens=100,
        output_tokens=out,
    )
    request = Request(trace=trace, spec=get_model("Qwen-7B"))
    if token_times:
        request.record_tokens(token_times)
    return request


def make_result(requests, end_time=100.0):
    return ServingResult(
        requests=requests, slo=DEFAULT_SLO, horizon=60.0, end_time=end_time
    )


class TestTheorem31:
    def test_paper_numbers(self):
        # M=100, lambda=0.037, T=16.79 -> the paper reports E[m]=46.55;
        # exact arithmetic gives 46.27 (their lambda is rounded).
        value = expected_active_models(100, 0.037, 16.79)
        assert value == pytest.approx(46.55, abs=0.5)

    def test_pooling_bound_below_three(self):
        # 100 / 46.55 < 3 models per GPU (§3.1).
        bound = models_per_gpu_bound(100, 0.037, 16.79)
        assert 2.0 < bound < 3.0

    def test_zero_rate_means_zero_active(self):
        assert expected_active_models(100, 0.0, 16.79) == 0.0

    def test_simulation_matches_theorem(self):
        rng = np.random.default_rng(0)
        _, counts = simulate_active_models(
            100, 0.037, 16.79, horizon=4000.0, rng=rng
        )
        # Skip warm-up (the first T seconds under-count).
        steady = counts[50:]
        assert steady.mean() == pytest.approx(
            expected_active_models(100, 0.037, 16.79), rel=0.05
        )

    @settings(max_examples=20, deadline=None)
    @given(
        model_count=st.integers(min_value=1, max_value=50),
        rate=st.floats(min_value=0.001, max_value=0.5),
        service=st.floats(min_value=0.5, max_value=30.0),
    )
    def test_expectation_bounds(self, model_count, rate, service):
        value = expected_active_models(model_count, rate, service)
        assert 0 <= value <= model_count

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            expected_active_models(-1, 0.1, 1.0)


class TestAttainment:
    def test_perfect_run(self):
        request = make_request(out=3, token_times=[1.0, 1.1, 1.2])
        assert make_result([request]).slo_attainment() == 1.0

    def test_missing_tokens_count_as_missed(self):
        # 10 expected, only 2 generated (on time): attainment 0.2.
        request = make_request(out=10, token_times=[1.0, 1.05])
        assert make_result([request]).slo_attainment() == pytest.approx(0.2)

    def test_late_tokens_counted(self):
        request = make_request(out=2, token_times=[50.0, 50.1])  # deadline 10.0
        assert make_result([request]).slo_attainment() == 0.0

    def test_empty_result(self):
        assert make_result([]).slo_attainment() == 1.0

    def test_per_request_attainment_shape(self):
        requests = [
            make_request(0, out=2, token_times=[1.0, 1.1]),
            make_request(1, out=2, token_times=[50.0, 50.1]),
        ]
        values = make_result(requests).per_request_attainment()
        assert values.tolist() == [1.0, 0.0]


class TestTtft:
    def test_values(self):
        request = make_request(arrival=5.0, out=2, token_times=[7.5, 7.6])
        assert make_result([request]).ttfts()[0] == pytest.approx(2.5)

    def test_unserved_is_inf(self):
        request = make_request(out=2)
        assert np.isinf(make_result([request]).ttfts()[0])


class TestGoodputFrontier:
    def test_finds_largest_qualifying(self):
        points = [(10, 0.99), (20, 0.95), (30, 0.91), (40, 0.70)]
        assert goodput_frontier(points) == 30

    def test_none_when_all_below(self):
        assert goodput_frontier([(10, 0.5)]) is None

    def test_custom_threshold(self):
        points = [(10, 0.8), (20, 0.6)]
        assert goodput_frontier(points, threshold=0.75) == 10


class TestReporting:
    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 0.123]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_cdf_has_percentiles(self):
        text = format_cdf(np.arange(100.0), "lat")
        assert "P50=" in text and "P100=" in text

    def test_format_series(self):
        text = format_series([1, 2], [0.5, 0.9], "x", "y")
        assert "x" in text and "0.9" in text

    def test_percentiles(self):
        values = np.arange(101.0)
        result = percentiles(values)
        assert result["p50"] == pytest.approx(50.0)
        assert result["p99"] == pytest.approx(99.0)

    def test_percentiles_empty(self):
        result = percentiles([])
        assert np.isnan(result["p50"])
