"""Conformance suite for the policy layer (``repro.policy``).

Every registered bundle must drive its serving topology end to end and
preserve the accounting identity ``finished + failed + rejected ==
submitted``; the registry must resolve names, defaults and tunables
overrides; and the stock :class:`~repro.policy.WeightedRoundPolicy` must
obey the Eq. 2-3 invariants over the shared quota parameter space.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_SLO,
    AegaeonConfig,
    SessionCoordinator,
    SystemSpec,
    build_system,
)
from repro.policy import (
    AdmissionPolicy,
    CostConstrainedRouter,
    DecodeTurnPolicy,
    PlacementPolicy,
    PolicyBundle,
    ScalingPolicy,
    Tunables,
    WeightedRoundPolicy,
    available_bundles,
    compute_quotas,
    estimate_round_attainment,
    get_bundle,
    resolve_bundle,
)
from repro.sim import Environment

from .strategies import step_times, switch_costs
from .test_serving_api import small_config, small_trace
from .test_workload_agentic import small_stream

EXPECTED_BUNDLES = {
    "aegaeon",
    "serverless-llm",
    "serverless-llm+",
    "muxserve",
    "unified-prefill-first",
    "unified-decode-first",
    "aegaeon-slo-admission",
    "muxserve-cost-placement",
    "aegaeon-cost-router",
}


class TestRegistry:
    def test_expected_bundles_registered(self):
        assert EXPECTED_BUNDLES <= set(available_bundles())

    def test_unknown_bundle_raises(self):
        with pytest.raises(ValueError, match="unknown policy bundle"):
            get_bundle("nope")

    def test_lookup_normalizes_case(self):
        assert get_bundle(" Aegaeon ") is get_bundle("aegaeon")

    def test_resolve_default_and_passthrough(self):
        default = resolve_bundle(None, "aegaeon")
        assert default is get_bundle("aegaeon")
        assert resolve_bundle(default, "muxserve") is default
        assert resolve_bundle("muxserve", "aegaeon") is get_bundle("muxserve")

    def test_resolve_tunables_override_reaches_decode_turn(self):
        tuned = Tunables(qmax=2.5)
        bundle = resolve_bundle(None, "aegaeon", tunables=tuned)
        assert bundle.tunables.qmax == 2.5
        # The stock turn policy is rebuilt so quota math sees the new cap.
        assert bundle.decode_turn.qmax == 2.5
        # The registered bundle itself is untouched.
        assert get_bundle("aegaeon").decode_turn.qmax == 4.0

    def test_with_tunables_preserves_custom_turn_policy(self):
        class CustomTurns(WeightedRoundPolicy):
            pass

        custom = CustomTurns()
        bundle = dataclasses.replace(get_bundle("aegaeon"), decode_turn=custom)
        swapped = bundle.with_tunables(Tunables(qmax=1.5))
        assert swapped.decode_turn is custom


class TestBundleShape:
    @pytest.mark.parametrize("name", available_bundles())
    def test_every_decision_point_filled(self, name):
        bundle = get_bundle(name)
        assert isinstance(bundle, PolicyBundle)
        assert bundle.name == name
        assert bundle.description
        assert isinstance(bundle.admission, AdmissionPolicy)
        # Dispatch policies implement only the entry points their system
        # uses: disaggregated pools route per phase, single pools route
        # whole requests.
        if bundle.system == "aegaeon":
            assert callable(bundle.dispatch.place_prefill)
            assert callable(bundle.dispatch.place_decode)
        else:
            assert callable(bundle.dispatch.place)
        assert isinstance(bundle.decode_turn, DecodeTurnPolicy)
        assert isinstance(bundle.scaling, ScalingPolicy)
        assert isinstance(bundle.placement, PlacementPolicy)

    @pytest.mark.parametrize("name", available_bundles())
    def test_system_is_buildable(self, name):
        bundle = get_bundle(name)
        system = build_system(
            SystemSpec(
                system=bundle.system,
                config=small_config(bundle.system),
                policies=name,
            ),
            Environment(),
        )
        assert system.policies is get_bundle(name)


class TestBundleConformance:
    """Every bundle serves a trace and accounts for every request."""

    @pytest.mark.parametrize("name", available_bundles())
    def test_accounting_identity(self, name):
        bundle = get_bundle(name)
        env = Environment()
        system = build_system(
            SystemSpec(
                system=bundle.system,
                config=small_config(bundle.system),
                policies=name,
            ),
            env,
        )
        trace = small_trace()
        result = system.serve(trace)

        registry = system.registry
        assert registry.submitted == len(trace)
        assert (
            registry.finished + registry.failed + registry.rejected
            == registry.submitted
        )
        assert system.accounted == len(trace.requests)
        assert len(result.requests) == len(trace)
        # A bundle may shed (slo-admission) or refuse unplaced models
        # (muxserve), but it must still serve the bulk of a light trace.
        assert registry.finished > 0


class TestCostRouter:
    """The ECCOS-style cost-constrained router bundle.

    Beyond the generic conformance above (which it passes by no-op'ing
    on variant-less market traffic), the router's own contract is pinned
    here: on agentic traffic it actually downgrades easy stages, and the
    realized per-session spend never exceeds the configured budget — for
    the default budget and for any budget hypothesis draws.
    """

    @staticmethod
    def routed_replay(bundle, seed=17):
        """One coordinated agentic replay under ``bundle`` (name or object)."""
        stream = small_stream(seed=seed, rate=1.5, horizon=12.0)
        system = SystemSpec(
            config=AegaeonConfig(
                prefill_instances=1, decode_instances=3, cluster="h800-quad"
            ),
            policies=bundle,
        ).build()
        coordinator = SessionCoordinator(system.env, stream.spec_of)
        system.attach_sessions(coordinator)
        system.serve_stream(coordinator.wrap_stream(stream))
        return system, coordinator

    def test_router_downgrades_on_agentic_traffic(self):
        system, coordinator = self.routed_replay("aegaeon-cost-router")
        counts = CostConstrainedRouter.counts_of(system)
        assert counts["downgraded"] > 0, "no easy stage rode the small variant"
        spend = CostConstrainedRouter.spend_of(system)
        budget = system.policies.tunables.router_session_budget_usd
        assert spend and max(spend.values()) <= budget + 1e-12

    def test_router_is_inert_on_plain_traffic(self):
        """Variant-less requests pass through untouched (spend ledger empty)."""
        bundle = get_bundle("aegaeon-cost-router")
        env = Environment()
        system = build_system(
            SystemSpec(
                system=bundle.system,
                config=small_config(bundle.system),
                policies=bundle.name,
            ),
            env,
        )
        system.serve(small_trace())
        assert system.registry.finished > 0
        assert not CostConstrainedRouter.spend_of(system)

    @settings(max_examples=8, deadline=None)
    @given(budget=st.floats(min_value=2e-5, max_value=2e-3))
    def test_spend_never_exceeds_any_budget(self, budget):
        bundle = get_bundle("aegaeon-cost-router").with_tunables(
            Tunables(router_session_budget_usd=budget)
        )
        system, coordinator = self.routed_replay(bundle)
        spend = CostConstrainedRouter.spend_of(system)
        assert all(value <= budget + 1e-12 for value in spend.values())
        # Budget shedding is a terminal rejection, never lost accounting.
        s = coordinator.stats
        assert s.stages_submitted == (
            s.stages_finished + s.stages_failed + s.stages_rejected
        )
        counts = CostConstrainedRouter.counts_of(system)
        assert counts["shed"] == s.stages_rejected


class TestWeightedRoundProperties:
    """Eq. 2-3 invariants, via the policy seam rather than the functions."""

    @settings(max_examples=100, deadline=None)
    @given(times=step_times, cost=switch_costs)
    def test_quotas_bounded_by_qmax(self, times, cost):
        policy = WeightedRoundPolicy()
        quotas = policy.quotas(list(range(len(times))), times, cost, DEFAULT_SLO)
        assert len(quotas) == len(times)
        assert all(0.0 <= quota <= policy.qmax for quota in quotas)

    @settings(max_examples=100, deadline=None)
    @given(times=step_times, cost=switch_costs)
    def test_attainment_is_a_probability(self, times, cost):
        attainment = WeightedRoundPolicy().attainment(times, cost, DEFAULT_SLO)
        assert 0.0 < attainment <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(times=step_times)
    def test_zero_switch_cost_costs_nothing(self, times):
        policy = WeightedRoundPolicy()
        assert policy.attainment(times, 0.0, DEFAULT_SLO) == 1.0
        quotas = policy.quotas(list(range(len(times))), times, 0.0, DEFAULT_SLO)
        assert quotas == [policy.qmax] * len(times)

    @settings(max_examples=100, deadline=None)
    @given(times=step_times, cost=switch_costs)
    def test_policy_matches_reference_functions(self, times, cost):
        """The seam adds no math: stock policy == module functions."""
        tuned = Tunables(qmax=2.5)
        policy = WeightedRoundPolicy(tuned)
        batches = list(range(len(times)))
        assert policy.quotas(batches, times, cost, DEFAULT_SLO) == compute_quotas(
            batches, times, cost, DEFAULT_SLO,
            qmax=tuned.qmax, alpha_floor=tuned.alpha_floor,
        )
        assert policy.attainment(times, cost, DEFAULT_SLO) == (
            estimate_round_attainment(
                times, cost, DEFAULT_SLO,
                qmax=tuned.qmax, alpha_floor=tuned.alpha_floor,
            )
        )

    @settings(max_examples=100, deadline=None)
    @given(times=step_times, cost=switch_costs)
    def test_tighter_qmax_never_grants_more_time(self, times, cost):
        """Shrinking the quota cap shrinks (or keeps) every turn."""
        batches = list(range(len(times)))
        loose = WeightedRoundPolicy(Tunables(qmax=4.0))
        tight = WeightedRoundPolicy(Tunables(qmax=2.0))
        for small, large in zip(
            tight.quotas(batches, times, cost, DEFAULT_SLO),
            loose.quotas(batches, times, cost, DEFAULT_SLO),
        ):
            assert small <= large + 1e-9
