"""Tests for simulation resources: Resource, Container, Store."""

import pytest

from repro.sim import (
    Container,
    Environment,
    Interrupt,
    PriorityResource,
    Resource,
    SimulationError,
    Store,
)


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_grant_within_capacity(self, env):
        resource = Resource(env, capacity=2)
        grants = []

        def user(tag):
            with resource.request() as claim:
                yield claim
                grants.append((tag, env.now))
                yield env.timeout(1.0)

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert grants == [("a", 0.0), ("b", 0.0)]

    def test_queueing_is_fifo(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def user(tag, hold):
            with resource.request() as claim:
                yield claim
                order.append((tag, env.now))
                yield env.timeout(hold)

        env.process(user("a", 2.0))
        env.process(user("b", 1.0))
        env.process(user("c", 1.0))
        env.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_count_tracks_users(self, env):
        resource = Resource(env, capacity=3)

        def user():
            with resource.request() as claim:
                yield claim
                yield env.timeout(1.0)

        env.process(user())
        env.process(user())
        env.run(until=0.5)
        assert resource.count == 2
        env.run()
        assert resource.count == 0

    def test_zero_capacity_rejected(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_interrupted_waiter_withdraws_claim(self, env):
        resource = Resource(env, capacity=1)

        def holder():
            with resource.request() as claim:
                yield claim
                yield env.timeout(10.0)

        def waiter():
            with resource.request() as claim:
                try:
                    yield claim
                except Interrupt:
                    return "interrupted"

        env.process(holder())
        waiter_proc = env.process(waiter())

        def attacker():
            yield env.timeout(1.0)
            waiter_proc.interrupt()

        env.process(attacker())
        assert env.run(until=waiter_proc) == "interrupted"
        assert len(resource.queue) == 0


class TestPriorityResource:
    def test_lower_priority_value_wins(self, env):
        resource = PriorityResource(env, capacity=1)
        order = []

        def user(tag, priority):
            with resource.request(priority=priority) as claim:
                yield claim
                order.append(tag)
                yield env.timeout(1.0)

        def spawn():
            # First user takes the resource; others queue.
            env.process(user("first", 0))
            yield env.timeout(0.1)
            env.process(user("low", 5))
            env.process(user("high", 1))

        env.process(spawn())
        env.run()
        assert order == ["first", "high", "low"]

    def test_fifo_tie_break(self, env):
        resource = PriorityResource(env, capacity=1)
        order = []

        def user(tag):
            with resource.request(priority=1) as claim:
                yield claim
                order.append(tag)
                yield env.timeout(1.0)

        def spawn():
            env.process(user("a"))
            yield env.timeout(0.1)
            env.process(user("b"))
            env.process(user("c"))

        env.process(spawn())
        env.run()
        assert order == ["a", "b", "c"]


class TestContainer:
    def test_get_blocks_until_put(self, env):
        container = Container(env, capacity=100.0)
        log = []

        def consumer():
            amount = yield container.get(10.0)
            log.append((env.now, amount))

        def producer():
            yield env.timeout(3.0)
            yield container.put(10.0)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [(3.0, 10.0)]

    def test_put_blocks_at_capacity(self, env):
        container = Container(env, capacity=10.0, init=10.0)
        log = []

        def producer():
            yield container.put(5.0)
            log.append(env.now)

        def consumer():
            yield env.timeout(2.0)
            yield container.get(5.0)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [2.0]

    def test_level_tracks(self, env):
        container = Container(env, capacity=10.0, init=4.0)

        def proc():
            yield container.get(1.0)
            yield container.put(3.0)

        env.process(proc())
        env.run()
        assert container.level == 6.0

    def test_invalid_init_rejected(self, env):
        with pytest.raises(SimulationError):
            Container(env, capacity=5.0, init=6.0)


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)
        got = []

        def producer():
            for item in ["x", "y", "z"]:
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["x", "y", "z"]

    def test_get_blocks_when_empty(self, env):
        store = Store(env)
        log = []

        def consumer():
            item = yield store.get()
            log.append((env.now, item))

        def producer():
            yield env.timeout(4.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [(4.0, "late")]

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            yield store.put(2)
            log.append(env.now)

        def consumer():
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [5.0]

    def test_filtered_get(self, env):
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get(lambda x: x % 2 == 0)
            got.append(item)

        def producer():
            yield store.put(1)
            yield store.put(3)
            yield store.put(4)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [4]
        assert store.items == [1, 3]

    def test_filtered_get_does_not_block_later_getters(self, env):
        store = Store(env)
        got = []

        def picky():
            item = yield store.get(lambda x: x == "never")
            got.append(("picky", item))

        def easy():
            item = yield store.get()
            got.append(("easy", item))

        env.process(picky())
        env.process(easy())

        def producer():
            yield store.put("anything")

        env.process(producer())
        env.run()
        assert got == [("easy", "anything")]

    def test_len(self, env):
        store = Store(env)

        def producer():
            yield store.put("a")
            yield store.put("b")

        env.process(producer())
        env.run()
        assert len(store) == 2
