"""Tests for the proxy layer, status registry, and request lifecycle."""

import pytest

from repro.core import ProxyLayer, StatusRegistry
from repro.engine import Phase, Request
from repro.models import get_model, market_mix
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace
from repro.workload.trace import TraceRequest


class TestProxyReplay:
    def test_dispatches_at_arrival_times(self):
        env = Environment()
        seen = []
        proxy = ProxyLayer(env, lambda request: seen.append((env.now, request)))
        models = market_mix(2)
        trace = materialize_trace(models, [0.5, 0.5], sharegpt(), horizon=30.0, seed=3)
        env.process(proxy.replay(trace))
        env.run()
        assert len(seen) == len(trace)
        for (time, request), trace_request in zip(seen, trace.requests):
            assert time == pytest.approx(trace_request.arrival)
            assert request.request_id == trace_request.request_id

    def test_all_submitted_event(self):
        env = Environment()
        proxy = ProxyLayer(env, lambda request: None)
        models = market_mix(1)
        trace = materialize_trace(models, [0.2], sharegpt(), horizon=20.0, seed=4)
        env.process(proxy.replay(trace))
        env.run()
        assert proxy.all_submitted.triggered
        assert len(proxy.requests) == len(trace)


class TestStatusRegistry:
    def make_request(self, request_id=0):
        trace = TraceRequest(
            request_id=request_id,
            model="Qwen-7B",
            arrival=0.0,
            input_tokens=10,
            output_tokens=2,
        )
        return Request(trace=trace, spec=get_model("Qwen-7B"))

    def test_counts(self):
        registry = StatusRegistry()
        request = self.make_request()
        registry.update(request)
        assert registry.submitted == 1
        assert registry.in_flight == 1
        request.record_tokens([1.0, 1.1])
        request.complete(1.1)
        registry.update(request)
        assert registry.finished == 1
        assert registry.in_flight == 0

    def test_duplicate_finish_not_double_counted(self):
        registry = StatusRegistry()
        request = self.make_request()
        registry.update(request)
        request.record_tokens([1.0, 1.1])
        request.complete(1.1)
        registry.update(request)
        registry.update(request)
        assert registry.finished == 1


class TestRequestLifecycle:
    def make_request(self, out=3):
        trace = TraceRequest(
            request_id=1, model="Qwen-7B", arrival=2.0, input_tokens=8, output_tokens=out
        )
        return Request(trace=trace, spec=get_model("Qwen-7B"))

    def test_progress_properties(self):
        request = self.make_request(out=3)
        assert request.remaining_tokens == 3
        assert request.context_tokens == 8
        request.record_tokens([3.0])
        assert request.generated_tokens == 1
        assert request.context_tokens == 9
        assert request.first_token_time == 3.0

    def test_overgeneration_rejected(self):
        request = self.make_request(out=2)
        with pytest.raises(ValueError):
            request.record_tokens([1.0, 1.1, 1.2])

    def test_complete_requires_all_tokens(self):
        request = self.make_request(out=2)
        request.record_tokens([1.0])
        with pytest.raises(ValueError):
            request.complete(1.0)
        request.record_tokens([1.1])
        request.complete(1.1)
        assert request.phase is Phase.FINISHED
        assert request.finish_time == 1.1

    def test_invalid_trace_request_rejected(self):
        with pytest.raises(ValueError):
            TraceRequest(
                request_id=0, model="m", arrival=0.0, input_tokens=0, output_tokens=5
            )
        with pytest.raises(ValueError):
            TraceRequest(
                request_id=0, model="m", arrival=-1.0, input_tokens=5, output_tokens=5
            )
