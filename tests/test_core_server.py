"""Integration tests: the full Aegaeon server on small workloads."""

import numpy as np
import pytest

from repro.core import AegaeonConfig, AegaeonServer, SloSpec
from repro.engine import EngineConfig
from repro.hardware import Cluster, H800
from repro.models import market_mix, get_model
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

GiB = 1024**3


def small_server(env, prefill=1, decode=2, **engine_overrides):
    cluster = Cluster.homogeneous(env, H800, 1, prefill + decode)
    config = AegaeonConfig(
        prefill_instances=prefill,
        decode_instances=decode,
        engine=EngineConfig(**engine_overrides),
    )
    return AegaeonServer(env, cluster, config)


def small_trace(n_models, rps=0.1, horizon=60.0, seed=1):
    models = market_mix(n_models)
    return materialize_trace(models, [rps] * n_models, sharegpt(), horizon=horizon, seed=seed)


class TestEndToEnd:
    def test_all_requests_complete(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(4)
        result = server.serve(trace)
        assert result.finished_requests == len(trace)
        assert result.completion_rate == 1.0

    def test_token_counts_exact(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(3, seed=2)
        result = server.serve(trace)
        expected = sum(r.output_tokens for r in trace.requests)
        assert result.tokens_generated() == expected

    def test_light_load_meets_slo(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(4, rps=0.05, horizon=80.0)
        result = server.serve(trace)
        assert result.slo_attainment() > 0.9

    def test_token_times_monotone_per_request(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(4, seed=3)
        result = server.serve(trace)
        for request in result.requests:
            times = np.array(request.token_times)
            assert np.all(np.diff(times) >= -1e-9)
            assert times[0] >= request.arrival

    def test_more_models_than_gpus(self):
        # The headline capability: more models than the whole GPU pool.
        env = Environment()
        server = small_server(env, prefill=1, decode=2)
        trace = small_trace(8, rps=0.05, horizon=60.0)
        result = server.serve(trace)
        assert result.finished_requests == len(trace)
        models_used = {r.model for r in trace.requests}
        assert len(models_used) > 3  # genuinely multi-model

    def test_registry_tracks_completion(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(3)
        server.serve(trace)
        assert server.registry.finished == len(trace)
        assert server.registry.in_flight == 0

    def test_scaling_occurred(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(6)
        result = server.serve(trace)
        assert len(result.scaling_latencies()) > 0

    def test_optimized_scaling_subsecond_median(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(6, horizon=90.0)
        result = server.serve(trace)
        latencies = result.scaling_latencies()
        assert np.median(latencies) < 1.0  # §7.3 headline


class TestKvConsistency:
    def test_no_leaked_kv_after_run(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(4)
        server.serve(trace)
        # Let in-flight transfers and daemons settle.
        env.run(until=env.now + 5.0)
        for instance in server.decode_instances:
            assert instance.engine.gpu_kv_cache.held_bytes == 0
        # CPU cache may only hold move-list remnants, which the daemon
        # should have reclaimed by now.
        assert server.move_list.pending_blocks == 0
        assert server.cpu_kv_cache.held_bytes == 0

    def test_weight_buffers_hold_single_model(self):
        env = Environment()
        server = small_server(env)
        trace = small_trace(4)
        server.serve(trace)
        for instance in [*server.prefill_instances, *server.decode_instances]:
            engine = instance.engine
            live = engine.weights.live_allocations
            # At most the running model plus one prefetched model.
            assert len(live) <= 2


class TestConfig:
    def test_too_few_gpus_rejected(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, H800, 1, 2)
        with pytest.raises(ValueError):
            AegaeonServer(env, cluster, AegaeonConfig(prefill_instances=2, decode_instances=2))

    def test_paper_testbed_shape(self):
        env = Environment()
        server = AegaeonServer.paper_testbed(env)
        assert len(server.prefill_instances) == 6
        assert len(server.decode_instances) == 10
        assert server.config.gpus_needed == 16

    def test_a10_testbed_disables_prefetch(self):
        env = Environment()
        server = AegaeonServer.a10_testbed(env)
        assert not server.config.engine.prefetch
        assert len(server.prefill_instances) == 2
        assert len(server.decode_instances) == 2

    def test_tp4_testbed(self):
        env = Environment()
        server = AegaeonServer.tp4_testbed(env)
        assert server.config.engine.tp == 4
        assert server.config.gpus_needed == 8


class TestStricterSlo:
    def test_stricter_slo_lowers_attainment(self):
        results = {}
        for factor in [1.0, 0.2]:
            env = Environment()
            cluster = Cluster.homogeneous(env, H800, 1, 3)
            config = AegaeonConfig(
                prefill_instances=1,
                decode_instances=2,
                slo=SloSpec().scale(factor),
            )
            server = AegaeonServer(env, cluster, config)
            trace = small_trace(8, rps=0.1, horizon=60.0, seed=4)
            results[factor] = server.serve(trace).slo_attainment()
        assert results[0.2] < results[1.0]


class TestTp4Serving:
    def test_72b_models_serve(self):
        env = Environment()
        server = AegaeonServer.tp4_testbed(env)
        spec = get_model("Qwen-72B")
        from dataclasses import replace

        models = [replace(spec, name=f"Qwen-72B#{i}") for i in range(3)]
        trace = materialize_trace(models, [0.05] * 3, sharegpt(), horizon=60.0, seed=5)
        result = server.serve(trace)
        assert result.finished_requests == len(trace)
