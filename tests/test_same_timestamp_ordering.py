"""Same-timestamp event ordering is part of the determinism contract.

The batched dispatch loop (`repro.sim.core`) drains every heap entry
sharing the front timestamp into one FIFO tick batch and appends
in-tick schedules directly to that batch.  The ordering guarantee —
events at one instant fire in scheduling order, byte-identically to a
pure-heap kernel — is what keeps the chaos and fleet goldens stable.

This test deliberately piles *every* event source the serving stack has
onto a single instant: plain process timeouts, the 1 s watchdog tick,
the KV-reclaim daemon's 5 ms grid, and four chaos faults (spike, stall,
throttle, instance kill) all collide at t = 12.0 s inside a live serve.
The full observable surface is hashed and pinned by the golden fixture
``tests/golden/same_timestamp_ordering.json``; any change to
intra-timestamp ordering shifts which request wins a contended slab
block or link slot and moves the digest.

Regenerate after an *intentional* serving-stack change with
``python -m tests.test_same_timestamp_ordering``.
"""

import hashlib
import json
from pathlib import Path

from repro.chaos import (
    FaultPlan,
    InstanceFailure,
    LatencySpike,
    LinkThrottle,
    TransferStall,
)
from repro.core import AegaeonConfig, SystemSpec, build_system
from repro.models import market_mix
from repro.obs import ObsConfig
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

from .test_determinism import _canonical

GOLDEN = Path(__file__).parent / "golden" / "same_timestamp_ordering.json"

#: The shared collision instant: on the watchdog's 1 s grid and the
#: reclaim daemon's 5 ms grid, so their wakeups land exactly here too.
COLLIDE_AT = 12.0
HORIZON = 30.0
TRACE_SEED = 11


def collision_run():
    """One serve with every event source colliding at ``COLLIDE_AT``."""
    env = Environment()
    plan = FaultPlan.of(
        LatencySpike(at=COLLIDE_AT, factor=2.0, duration=1.0),
        TransferStall(at=COLLIDE_AT, direction="in", duration=0.4),
        LinkThrottle(at=COLLIDE_AT, factor=3.0, duration=1.0),
        InstanceFailure(at=COLLIDE_AT, instance="decode1"),
    )
    system = build_system(
        SystemSpec(
            config=AegaeonConfig(
                prefill_instances=1,
                decode_instances=2,
                cluster="h800-quad",
                obs=ObsConfig.metrics_only(),
            ),
            faults=plan,
            invariants=True,
        ),
        env,
    )
    trace = materialize_trace(
        market_mix(4), [0.2] * 4, sharegpt(), horizon=HORIZON, seed=TRACE_SEED
    )

    # Plain timeouts at the collision instant, scheduled before the
    # serve starts — they sit in the same tick batch as the watchdog,
    # reclaim, and fault events.
    def sleeper(env):
        yield env.timeout(COLLIDE_AT)

    for _ in range(4):
        env.process(sleeper(env))

    result = system.serve(trace, warm=False)
    return env, system, result


def run_digest():
    """sha256 over the canonical full observable surface of one run."""
    env, system, result = collision_run()
    snapshot = {
        "metrics": _canonical(result.metrics),
        "end_time": result.end_time,
        "sim_now": env.now,
        "steps": env.steps_executed,
        "requests": [
            [r.request_id, r.prefill_start, r.finish_time, list(r.token_times)]
            for r in result.requests
        ],
        "violations": len(system.invariant_checker.violations),
    }
    payload = json.dumps(snapshot, sort_keys=True)
    digest = hashlib.sha256(payload.encode()).hexdigest()
    return digest, snapshot


class TestSameTimestampOrdering:
    def test_digest_matches_golden(self):
        fixture = json.loads(GOLDEN.read_text())
        digest, snapshot = run_digest()
        assert snapshot["steps"] == fixture["steps"]
        assert round(snapshot["end_time"], 6) == fixture["end_time"]
        assert digest == fixture["digest"], (
            "same-timestamp event ordering diverged from the golden "
            "fixture; if the serving stack changed intentionally, "
            "regenerate with `python -m tests.test_same_timestamp_ordering`"
        )

    def test_run_is_bitwise_repeatable(self):
        assert run_digest() == run_digest()

    def test_collision_sources_actually_fire(self):
        # The scenario is only a collision test while all four faults
        # deliver; guard against the setup silently drifting.
        env, system, result = collision_run()
        injector = system.fault_injector
        assert len(injector.delivered) == 4
        assert all(f.at == COLLIDE_AT for f in injector.plan)
        assert env.now > COLLIDE_AT


def regenerate_golden():
    """Rewrite the golden fixture from the current serving stack."""
    digest, snapshot = run_digest()
    fixture = {
        "description": (
            "Digest of a serve in which plain timeouts, the watchdog "
            "tick, the KV-reclaim grid, and four chaos faults all fire "
            "at t=12.0 s (market_mix(4), rate 0.2, horizon 30 s, trace "
            "seed 11, 1 prefill + 2 decode on h800-quad).  Pins the "
            "kernel's intra-timestamp ordering; the simulation is "
            "deterministic, so these exact values must reproduce on "
            "any machine.  Regenerate with "
            "`python -m tests.test_same_timestamp_ordering` after an "
            "intentional serving-stack change."
        ),
        "digest": digest,
        "steps": snapshot["steps"],
        "end_time": round(snapshot["end_time"], 6),
    }
    GOLDEN.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")


if __name__ == "__main__":
    regenerate_golden()
    print(f"rewrote {GOLDEN}")
