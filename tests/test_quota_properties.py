"""Property-based tests for the decode quota equations (Eqs. 2-3)."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    DecodeBatch,
    QMAX,
    SloSpec,
    compute_quotas,
    estimate_round_attainment,
)
from repro.models import get_model

from .strategies import step_times, switch_costs


def batches(count):
    return [DecodeBatch(spec=get_model("Qwen-7B")) for _ in range(count)]


class TestQuotaProperties:
    @settings(max_examples=100, deadline=None)
    @given(times=step_times, cost=switch_costs)
    def test_quotas_positive_and_capped(self, times, cost):
        quotas = compute_quotas(
            batches(len(times)), times, cost, SloSpec(ttft=10.0, tbt=0.1)
        )
        assert all(0 < q <= QMAX for q in quotas)

    @settings(max_examples=100, deadline=None)
    @given(times=step_times, cost=switch_costs)
    def test_slower_batches_never_get_less_time(self, times, cost):
        slo = SloSpec(ttft=10.0, tbt=0.1)
        quotas = compute_quotas(batches(len(times)), times, cost, slo)
        paired = sorted(zip(times, quotas))
        for (t1, q1), (t2, q2) in zip(paired, paired[1:]):
            if t2 > t1:
                assert q2 >= q1 - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(times=step_times, cost=switch_costs)
    def test_attainment_estimate_is_probability(self, times, cost):
        value = estimate_round_attainment(times, cost, SloSpec(ttft=10.0, tbt=0.1))
        assert 0.0 < value <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(times=step_times)
    def test_higher_cost_never_raises_attainment(self, times):
        slo = SloSpec(ttft=10.0, tbt=0.1)
        cheap = estimate_round_attainment(times, 0.5, slo)
        expensive = estimate_round_attainment(times, 5.0, slo)
        assert expensive <= cheap + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(times=step_times, cost=switch_costs, scale=st.floats(min_value=1.1, max_value=5.0))
    def test_looser_tbt_never_lowers_attainment(self, times, cost, scale):
        base = estimate_round_attainment(times, cost, SloSpec(ttft=10.0, tbt=0.05))
        loose = estimate_round_attainment(
            times, cost, SloSpec(ttft=10.0, tbt=0.05 * scale)
        )
        assert loose >= base - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(times=step_times, cost=switch_costs)
    def test_round_budget_respects_slack_when_feasible(self, times, cost):
        # When the scheduler predicts full attainment (1/alpha >= 1),
        # the buffered-output inequality must hold for the round: each
        # batch's earned slack covers the rest of the round.
        slo = SloSpec(ttft=10.0, tbt=0.1)
        attainment = estimate_round_attainment(times, cost, slo, qmax=1e9)
        if attainment < 1.0:
            return
        quotas = compute_quotas(batches(len(times)), times, cost, slo, qmax=1e9)
        round_time = sum(quotas) + cost
        for quota, step in zip(quotas, times):
            tokens = quota / step
            playback = tokens * slo.tbt
            assert playback >= round_time - quota - 1e-6 or playback >= round_time * 0.5
