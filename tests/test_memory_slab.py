"""Tests for the slab-allocated unified KV cache (§5.2, Figure 16)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import SlabAllocator
from repro.models import get_model, kv_shape

from .strategies import MiB, slab_operations


@pytest.fixture
def allocator():
    # 64 slabs of 16 MiB = 1 GiB region.
    return SlabAllocator(region_bytes=1024 * MiB, slab_bytes=16 * MiB)


class TestSlabBasics:
    def test_alloc_returns_distinct_blocks(self, allocator):
        blocks = allocator.alloc("shape-a", block_bytes=1 * MiB, count=20)
        assert len({b.address for b in blocks}) == 20
        assert all(b.shape == "shape-a" for b in blocks)

    def test_blocks_fill_slab_before_acquiring_new(self, allocator):
        blocks = allocator.alloc("a", block_bytes=1 * MiB, count=16)
        assert len({b.slab_index for b in blocks}) == 1
        more = allocator.alloc("a", block_bytes=1 * MiB, count=1)
        assert more[0].slab_index != blocks[0].slab_index

    def test_free_returns_slab_to_pool(self, allocator):
        initial_free = allocator.free_slab_count
        blocks = allocator.alloc("a", block_bytes=1 * MiB, count=16)
        assert allocator.free_slab_count == initial_free - 1
        allocator.free(blocks)
        assert allocator.free_slab_count == initial_free

    def test_freed_slab_reusable_by_other_shape(self, allocator):
        blocks = allocator.alloc("a", block_bytes=16 * MiB, count=64)
        with pytest.raises(MemoryError):
            allocator.alloc("b", block_bytes=1 * MiB, count=1)
        allocator.free(blocks)
        allocator.alloc("b", block_bytes=1 * MiB, count=64 * 16)

    def test_double_free_detected(self, allocator):
        blocks = allocator.alloc("a", block_bytes=1 * MiB, count=1)
        allocator.free(blocks)
        with pytest.raises(ValueError):
            allocator.free(blocks)

    def test_conflicting_block_bytes_rejected(self, allocator):
        allocator.alloc("a", block_bytes=1 * MiB, count=1)
        with pytest.raises(ValueError):
            allocator.alloc("a", block_bytes=2 * MiB, count=1)

    def test_all_or_nothing_on_exhaustion(self, allocator):
        held = allocator.alloc("a", block_bytes=16 * MiB, count=63)
        with pytest.raises(MemoryError):
            allocator.alloc("b", block_bytes=16 * MiB, count=2)
        # The failed alloc must not leak partial blocks.
        assert allocator.free_slab_count == 1
        allocator.free(held)

    def test_region_truncated_to_slab_multiple(self):
        allocator = SlabAllocator(region_bytes=100 * MiB, slab_bytes=16 * MiB)
        assert allocator.slab_count == 6
        assert allocator.region_bytes == 96 * MiB


class TestRealKvShapes:
    """Exercise the allocator with the paper's actual KV shapes."""

    def test_mixed_models_coexist(self, allocator):
        shapes = {
            name: kv_shape(get_model(name))
            for name in ["Qwen-7B", "InternLM2.5-7B", "Llama-13B"]
        }
        held = {}
        for name, shape in shapes.items():
            held[name] = allocator.alloc(shape, shape.block_bytes(16), count=3)
        stats = {str(s.shape): s for s in allocator.shape_stats()}
        assert len(stats) == 3
        for name, blocks in held.items():
            allocator.free(blocks)
        assert allocator.held_bytes == 0

    def test_fragmentation_below_paper_bound(self, allocator):
        # Figure 16: overall fragmentation stays below ~20% in steady
        # state for realistic block sizes.
        shape = kv_shape(get_model("Qwen-7B"))
        block = shape.block_bytes(16)  # 8 MiB
        allocator.alloc(shape, block, count=100)
        assert allocator.overall_fragmentation() < 0.2


class TestSlabProperties:
    @settings(max_examples=60, deadline=None)
    @given(operations=slab_operations(shapes=4, max_blocks=12, max_size=60))
    def test_accounting_invariants(self, operations):
        allocator = SlabAllocator(region_bytes=64 * MiB, slab_bytes=4 * MiB)
        block_bytes = {0: 256 * 1024, 1: 512 * 1024, 2: 1 * MiB, 3: 4 * MiB}
        live: dict[int, list] = {0: [], 1: [], 2: [], 3: []}
        for action, shape_id, count in operations:
            if action == "alloc":
                try:
                    blocks = allocator.alloc(shape_id, block_bytes[shape_id], count)
                except MemoryError:
                    continue
                live[shape_id].extend(blocks)
            elif live[shape_id]:
                taken = live[shape_id][:count]
                del live[shape_id][:count]
                allocator.free(taken)
            # Invariants after every step:
            addresses = [b.address for group in live.values() for b in group]
            assert len(addresses) == len(set(addresses)), "double allocation"
            live_bytes = sum(
                b.nbytes for group in live.values() for b in group
            )
            assert live_bytes <= allocator.held_bytes <= allocator.region_bytes
            for stats in allocator.shape_stats():
                assert stats.used_blocks == len(live[stats.shape])
                assert 0.0 <= stats.fragmentation <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(count=st.integers(min_value=1, max_value=256))
    def test_alloc_free_roundtrip_restores_state(self, count):
        allocator = SlabAllocator(region_bytes=64 * MiB, slab_bytes=4 * MiB)
        try:
            blocks = allocator.alloc("x", 256 * 1024, count)
        except MemoryError:
            return
        allocator.free(blocks)
        assert allocator.free_slab_count == allocator.slab_count
        assert allocator.overall_fragmentation() == 0.0
