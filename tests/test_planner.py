"""Tests for the capacity planner."""

import pytest

from repro.analysis import PoolPlan, plan_pool
from repro.hardware import H800
from repro.models import market_mix
from repro.workload import sharegpt, materialize_trace


def small_trace(n_models=6, rps=0.08, horizon=60.0, seed=13):
    models = market_mix(n_models)
    return materialize_trace(models, [rps] * n_models, sharegpt(), horizon, seed=seed)


class TestPlanPool:
    def test_finds_small_pool_for_light_load(self):
        trace = small_trace()
        plan = plan_pool(trace, H800, candidates=[(1, 1), (1, 2), (2, 3)])
        assert plan is not None
        assert plan.gpus <= 5
        assert plan.attainment >= 0.90

    def test_returns_none_when_infeasible(self):
        trace = small_trace(n_models=20, rps=0.5, horizon=60.0)
        plan = plan_pool(trace, H800, candidates=[(1, 1)])
        assert plan is None

    def test_candidates_tried_smallest_first(self):
        trace = small_trace()
        plan = plan_pool(trace, H800, candidates=[(2, 6), (1, 2), (1, 1)])
        assert plan is not None
        # A light workload should settle on the smallest feasible pool,
        # not the first-listed big one.
        assert plan.gpus <= 3

    def test_saving_vs_dedicated(self):
        plan = PoolPlan(
            prefill_instances=1,
            decode_instances=2,
            tp=1,
            attainment=0.95,
            result=None,
        )
        assert plan.saving_versus_dedicated(24) == pytest.approx(1 - 3 / 24)
        assert "1P+2D" in str(plan)
