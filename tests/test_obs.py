"""Unit tests for the observability layer (tracer, metrics, exporters)."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    ObsConfig,
    Observability,
    Tracer,
    chrome_trace,
    format_switch_breakdown,
    metrics_to_csv,
    switch_breakdown,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- tracer -------------------------------------------------------------------
class TestTracer:
    def test_span_records_interval(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        clock.now = 1.0
        with tracer.span("work", cat="exec", track="gpu0", model="m"):
            clock.now = 3.5
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.start == 1.0 and span.end == 3.5
        assert span.duration == pytest.approx(2.5)
        assert span.args == {"model": "m"}

    def test_nested_spans_record_parent(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("outer", track="gpu0"):
            clock.now = 1.0
            with tracer.span("inner", track="gpu0"):
                clock.now = 2.0
            clock.now = 4.0
        inner, outer = tracer.spans  # completion order: inner first
        assert inner.parent == "outer"
        assert outer.parent is None
        assert tracer.children_of(outer) == [inner]

    def test_nesting_is_per_track(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("a", track="gpu0"):
            with tracer.span("b", track="gpu1"):
                pass
        assert tracer.spans_named("b")[0].parent is None

    def test_span_set_attaches_args(self):
        tracer = Tracer(FakeClock())
        with tracer.span("switch", track="gpu0") as span:
            span.set(prefetch_hit=True)
        assert tracer.spans[0].args["prefetch_hit"] is True

    def test_complete_and_instant_and_counter(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        tracer.complete("copy", cat="stream", track="kv_in", start=0.5, end=0.9)
        clock.now = 2.0
        tracer.instant("swap_out", cat="kv", track="kv_out", request_id=7)
        tracer.counter("queue", track="sched", value=3.0)
        assert tracer.spans[0].duration == pytest.approx(0.4)
        assert tracer.instants[0].ts == 2.0
        assert tracer.instants[0].args == {"request_id": 7}
        assert tracer.counters[0].value == 3.0
        assert len(tracer) == 3

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(FakeClock(), enabled=False)
        with tracer.span("work", track="gpu0") as span:
            span.set(ignored=True)
        tracer.instant("event", track="gpu0")
        tracer.counter("queue", track="gpu0", value=1.0)
        tracer.complete("copy", cat="c", track="t", start=0.0, end=1.0)
        assert len(tracer) == 0

    def test_clear_drops_records(self):
        tracer = Tracer(FakeClock())
        tracer.instant("event", track="t")
        tracer.clear()
        assert len(tracer) == 0


# -- metrics ------------------------------------------------------------------
class TestMetrics:
    def test_counter_increments_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", scope="cache")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_set_and_set_fn(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(4.0)
        assert gauge.value == 4.0
        backing = [7.0]
        gauge.set_fn(lambda: backing[0])
        backing[0] = 9.0
        assert gauge.value == 9.0

    def test_histogram_percentiles_match_numpy(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        rng = np.random.default_rng(7)
        samples = rng.exponential(1.0, size=200)
        for sample in samples:
            hist.observe(float(sample))
        for p in (50, 90, 99):
            assert hist.percentile(p) == pytest.approx(
                float(np.percentile(samples, p))
            )
        assert hist.mean == pytest.approx(float(samples.mean()))
        assert hist.count == 200

    def test_histogram_empty_and_bad_percentile(self):
        hist = MetricsRegistry().histogram("empty")
        assert np.isnan(hist.percentile(50))
        assert np.isnan(hist.mean)
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("n", scope="s") is registry.counter("n", scope="s")
        assert registry.counter("n", scope="a") is not registry.counter("n", scope="b")

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", scope="s")
        with pytest.raises(TypeError):
            registry.gauge("x", scope="s")

    def test_scoped_view(self):
        registry = MetricsRegistry()
        scope = registry.scoped("decode0")
        scope.counter("rounds").inc(3)
        assert registry.counter("rounds", scope="decode0").value == 3

    def test_snapshot_flattens(self):
        registry = MetricsRegistry()
        registry.counter("hits", scope="cache").inc(2)
        registry.histogram("wait", scope="kv").observe(1.0)
        snap = registry.snapshot()
        assert snap["cache/hits"] == 2
        assert snap["kv/wait"]["count"] == 1.0
        assert snap["kv/wait"]["p50"] == 1.0

    def test_disabled_registry_returns_nulls(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("hits")
        counter.inc(100)
        assert counter.value == 0.0
        registry.gauge("g").set(5.0)
        registry.histogram("h").observe(1.0)
        assert len(registry) == 0
        assert registry.snapshot() == {}


# -- facade -------------------------------------------------------------------
class TestObservability:
    def test_levels(self):
        off = Observability(ObsConfig.off())
        assert not off.enabled
        assert not off.tracer.enabled
        assert not off.metrics.enabled
        metrics_only = Observability(ObsConfig.metrics_only())
        assert metrics_only.metrics.enabled and not metrics_only.tracer.enabled
        full = Observability(ObsConfig.full())
        assert full.metrics.enabled and full.tracer.enabled

    def test_null_obs_is_disabled(self):
        assert not NULL_OBS.enabled
        NULL_OBS.scoped("x").counter("y").inc()
        assert len(NULL_OBS.metrics) == 0

    def test_obs_config_from_env(self):
        assert ObsConfig.from_env({}) == ObsConfig.off()
        assert ObsConfig.from_env({"REPRO_OBS": "metrics"}) == ObsConfig.metrics_only()
        assert ObsConfig.from_env({"REPRO_OBS": "full"}) == ObsConfig.full()
        with pytest.raises(ValueError):
            ObsConfig.from_env({"REPRO_OBS": "loud"})


# -- exporters ----------------------------------------------------------------
class TestExporters:
    def _tracer(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("model_switch", cat="switch", track="decode0") as span:
            clock.now = 0.2
            with tracer.span("model_load", cat="switch.stage", track="decode0"):
                clock.now = 1.0
            span.set(prefetch_hit=False)
        tracer.instant("swap_in", cat="kv", track="decode0.kv")
        tracer.counter("queue", track="sched", value=2.0)
        return tracer

    def test_chrome_trace_round_trips_through_json(self):
        document = chrome_trace(self._tracer())
        parsed = json.loads(json.dumps(document))
        events = parsed["traceEvents"]
        phases = {event["ph"] for event in events}
        assert {"M", "X", "i", "C"} <= phases
        switch = next(e for e in events if e["name"] == "model_switch")
        assert switch["ts"] == 0.0
        assert switch["dur"] == pytest.approx(1.0 * 1e6)
        # Every track got a thread_name metadata record.
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert names == {"decode0", "decode0.kv", "sched"}

    def test_write_chrome_trace_to_file_object(self):
        buffer = io.StringIO()
        write_chrome_trace(self._tracer(), buffer)
        assert json.loads(buffer.getvalue())["traceEvents"]

    def test_switch_breakdown_aggregates_stages(self):
        tracer = self._tracer()
        stages = switch_breakdown(tracer)
        assert stages == {"model_load": pytest.approx(0.8)}
        assert switch_breakdown(tracer, track="other") == {}
        text = format_switch_breakdown(tracer)
        assert "model switches: 1" in text
        assert "model_load" in text
        assert format_switch_breakdown(Tracer(FakeClock())) == (
            "no model switches recorded"
        )

    def test_metrics_to_csv(self):
        registry = MetricsRegistry()
        registry.counter("hits", scope="cache").inc(2)
        registry.histogram("wait", scope="kv").observe(0.5)
        csv = metrics_to_csv(registry)
        lines = csv.strip().splitlines()
        assert lines[0] == "metric,value"
        assert "cache/hits,2" in lines
        assert any(line.startswith("kv/wait.p99,") for line in lines)


class TestDisabledPathAllocationFree:
    """The disabled observability path must be allocation-free: every
    span/instant on a disabled tracer resolves to shared no-op
    singletons and records nothing."""

    def test_disabled_span_is_shared_singleton(self):
        tracer = NULL_OBS.tracer
        assert not tracer.enabled
        a = tracer.span("x", cat="c", track="t")
        b = tracer.span("y")
        assert a is b
        with a:
            pass
        assert len(tracer) == 0

    def test_disabled_instant_and_counter_record_nothing(self):
        tracer = NULL_OBS.tracer
        tracer.instant("evt", cat="c", track="t", detail=1)
        assert len(tracer) == 0
        counter = NULL_OBS.scoped("scope").counter("n")
        other = NULL_OBS.scoped("other").counter("m")
        counter.inc()
        other.inc(5)
        assert len(NULL_OBS.metrics) == 0

    def test_null_gauge_and_histogram_are_inert(self):
        gauge = NULL_OBS.scoped("s").gauge("g")
        gauge.set_fn(lambda: 1.0)
        histogram = NULL_OBS.scoped("s").histogram("h")
        histogram.observe(0.5)
        assert len(NULL_OBS.metrics) == 0
