"""Tests for the streaming workload API (RequestStream and friends)."""

import warnings

import numpy as np
import pytest

from repro.models import market_mix
from repro.workload import (
    RequestStream,
    deployment_stream,
    market_stream,
    materialize_trace,
    sharegpt,
    stream_of_trace,
    stream_trace,
)


class TestStreamTrace:
    def test_replayable_and_deterministic(self):
        models = market_mix(4)
        stream = stream_trace(models, [0.5] * 4, horizon=120.0, seed=11)
        first = list(stream)
        second = list(stream)  # same stream object re-iterates from scratch
        again = list(stream_trace(models, [0.5] * 4, horizon=120.0, seed=11))
        assert first == second == again
        assert first  # non-trivial workload

    def test_chronological_with_contiguous_ids(self):
        stream = stream_trace(market_mix(3), [0.4] * 3, horizon=100.0, seed=5)
        requests = list(stream)
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 100.0 for a in arrivals)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_expected_requests_close_to_actual(self):
        stream = stream_trace(market_mix(2), [1.0, 1.0], horizon=500.0, seed=3)
        assert stream.expected_requests == pytest.approx(1000.0)
        assert len(list(stream)) == pytest.approx(1000, rel=0.15)

    def test_spec_lookup(self):
        models = market_mix(2)
        stream = stream_trace(models, [0.2, 0.2], horizon=50.0, seed=1)
        assert stream.spec_of(models[0].name) == models[0]
        with pytest.raises(KeyError):
            stream.spec_of("missing")

    def test_zero_rate_model_never_appears(self):
        models = market_mix(3)
        stream = stream_trace(models, [0.5, 0.0, 0.5], horizon=200.0, seed=4)
        seen = {r.model for r in stream}
        assert models[1].name not in seen

    def test_rate_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stream_trace(market_mix(3), [0.1] * 2, horizon=10.0, seed=0)

    def test_materialize_matches_iteration(self):
        stream = stream_trace(market_mix(3), [0.3] * 3, horizon=80.0, seed=8)
        trace = stream.materialize()
        assert list(trace.requests) == list(stream)
        assert trace.models == stream.models
        assert trace.horizon == stream.horizon

    def test_stream_of_trace_round_trip(self):
        trace = materialize_trace(
            market_mix(2), [0.4, 0.4], sharegpt(), horizon=60.0, seed=6
        )
        stream = stream_of_trace(trace)
        assert isinstance(stream, RequestStream)
        assert list(stream) == list(trace.requests)
        assert stream.materialize().requests == trace.requests


class TestMarketStreams:
    def test_market_stream_deterministic(self):
        a = list(market_stream(16, 60.0, seed=2, total_rate=4.0))
        b = list(market_stream(16, 60.0, seed=2, total_rate=4.0))
        assert a == b
        assert a

    def test_market_stream_zipf_head_dominates(self):
        stream = market_stream(32, 300.0, seed=9, total_rate=8.0)
        counts = {}
        for request in stream:
            counts[request.model] = counts.get(request.model, 0) + 1
        head = stream.models[0].name
        assert counts[head] == max(counts.values())

    def test_deployment_stream_runs(self):
        stream = deployment_stream(12, 120.0, seed=13)
        requests = list(stream)
        assert requests == list(stream)
        assert all(r.arrival < 120.0 for r in requests)


class TestDeprecations:
    # synthesize_trace() and Dataset.sample() finished the deprecation
    # lifecycle (warn in PR 6, RuntimeError stub after) and are gone
    # entirely: importing them fails, which needs no test.  What remains
    # deprecated is the loose build_system(name, env, ...) keyword form.
    def test_synthesize_trace_is_gone(self):
        import repro.workload

        assert not hasattr(repro.workload, "synthesize_trace")

    def test_dataset_sample_is_gone(self):
        assert not hasattr(sharegpt(), "sample")

    def test_materialize_trace_is_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            materialize_trace(market_mix(2), [0.2, 0.2], sharegpt(), horizon=20.0)

    def test_shims_warn_once_per_call_site(self):
        # The warn-once-per-site machinery now lives in repro._compat
        # (the legacy build_system keyword form is its current tenant):
        # even with an "always" filter, repeated calls from one source
        # line warn exactly once; a fresh call site warns again.
        from repro import _compat
        from repro.core import AegaeonConfig, build_system
        from repro.sim import Environment

        config = AegaeonConfig(
            prefill_instances=1, decode_instances=1, cluster="h800-quad"
        )
        _compat._warned_sites.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                build_system("aegaeon", Environment(), config)  # one site
        assert len(caught) == 1
        # The warning is attributed to this test (the caller), not the
        # shim body inside repro.core.
        assert caught[0].filename == __file__
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            build_system("aegaeon", Environment(), config)  # a distinct site
            build_system("aegaeon", Environment(), config)  # and a second one
        assert len(caught) == 2

    def test_in_repo_paths_emit_no_deprecation_warnings(self):
        # Nothing inside repro calls the deprecated shims: synthesis,
        # streaming, and an end-to-end serve all run clean under
        # warnings-as-errors.
        from repro.core import AegaeonConfig, SystemSpec, build_system
        from repro.sim import Environment

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            trace = materialize_trace(
                market_mix(2), [0.2, 0.2], sharegpt(), horizon=15.0, seed=5
            )
            list(market_stream(4, 30.0, seed=3, total_rate=2.0))
            env = Environment()
            system = build_system(
                SystemSpec(
                    config=AegaeonConfig(
                        prefill_instances=1, decode_instances=1, cluster="h800-quad"
                    )
                ),
                env,
            )
            system.serve(trace, warm=False)
        assert system.registry.submitted == len(trace.requests)

    def test_stream_draws_match_dataset_distribution(self):
        # Scalar draw() must stay within the dataset's configured bounds.
        dataset = sharegpt()
        rng = np.random.default_rng(0)
        for _ in range(500):
            sample = dataset.draw(rng)
            assert 4 <= sample.input_tokens <= 8192
            assert 4 <= sample.output_tokens <= 2048
