"""Test package (needed so modules can share `tests.strategies`)."""
