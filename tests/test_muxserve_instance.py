"""Tests for the shared-GPU (MuxServe/dedicated) instance."""

import pytest

from repro.baselines import SharedGpuInstance
from repro.engine import Phase, Request
from repro.hardware import H800
from repro.models import get_model
from repro.sim import Environment
from repro.workload.trace import TraceRequest

GiB = 1024**3


def make_request(request_id=0, model="Qwen-7B", arrival=0.0, inp=256, out=32):
    trace = TraceRequest(
        request_id=request_id,
        model=model,
        arrival=arrival,
        input_tokens=inp,
        output_tokens=out,
    )
    return Request(trace=trace, spec=get_model(model))


class TestSharedGpuInstance:
    def test_single_model_serves_to_completion(self):
        env = Environment()
        finished = []
        instance = SharedGpuInstance(
            env, H800, [get_model("Qwen-7B")], finished.append
        )
        request = make_request(0)
        instance.enqueue(request)
        env.run(until=20.0)
        assert finished == [request]
        assert request.phase is Phase.FINISHED
        assert request.generated_tokens == request.output_tokens

    def test_two_models_interleave_without_switch_cost(self):
        env = Environment()
        finished = []
        instance = SharedGpuInstance(
            env,
            H800,
            [get_model("Qwen-7B"), get_model("Yi-6B")],
            finished.append,
        )
        a = make_request(0, "Qwen-7B", out=64)
        b = make_request(1, "Yi-6B", out=64)
        instance.enqueue(a)
        instance.enqueue(b)
        env.run(until=20.0)
        assert len(finished) == 2
        # Multiplexing: both streams progressed concurrently — their
        # token windows overlap rather than running back to back.
        assert a.token_times[0] < b.token_times[-1]
        assert b.token_times[0] < a.token_times[-1]

    def test_colocation_memory_cap_enforced(self):
        env = Environment()
        big = get_model("Qwen-72B")  # 145 GB on an 80 GB GPU
        with pytest.raises(MemoryError):
            SharedGpuInstance(env, H800, [big], lambda r: None)

    def test_load_counts_waiting_and_running(self):
        env = Environment()
        instance = SharedGpuInstance(env, H800, [get_model("Qwen-7B")], lambda r: None)
        instance.enqueue(make_request(0, out=2000))
        instance.enqueue(make_request(1, out=2000))
        env.run(until=1.0)
        assert instance.load() == 2

    def test_busy_time_accrues(self):
        env = Environment()
        instance = SharedGpuInstance(env, H800, [get_model("Qwen-7B")], lambda r: None)
        instance.enqueue(make_request(0, out=500))
        env.run(until=5.0)
        assert instance.busy_time > 0
        assert 0 < instance.utilization(elapsed=5.0) <= 1.0

    def test_hosts(self):
        env = Environment()
        instance = SharedGpuInstance(env, H800, [get_model("Qwen-7B")], lambda r: None)
        assert instance.hosts("Qwen-7B")
        assert not instance.hosts("Yi-6B")
