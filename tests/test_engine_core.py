"""Tests for the scaling-efficient engine (§5, Figures 7/8/10)."""

import pytest

from repro.engine import (
    AegaeonEngine,
    DEFAULT_INIT_COSTS,
    EngineConfig,
)
from repro.hardware import H800, Node
from repro.memory import HostModelCache, SlabAllocator
from repro.models import get_model
from repro.sim import Environment

GiB = 1024**3
MiB = 1024**2


def make_engine(env, config=EngineConfig(), warm_models=(), gpu_count=1):
    node = Node(env, H800, gpu_count=max(gpu_count, config.tp))
    cache = HostModelCache(capacity_bytes=640 * GiB)
    for name in warm_models:
        cache.insert(name, get_model(name.split("#")[0]).weight_bytes // config.tp)
    cpu_kv = SlabAllocator(region_bytes=320 * GiB, slab_bytes=256 * MiB)
    return AegaeonEngine(
        env,
        node,
        node.gpus[: config.tp],
        cache,
        cpu_kv,
        config=config,
    )


def run_scale(env, engine, model_name):
    spec = get_model(model_name)

    def proc():
        record = yield from engine.scale_to(spec)
        return record

    return env.run(until=env.process(proc()))


class TestInitCosts:
    def test_figure7_headline_26_9s(self):
        # Fresh initialization of a 13B model at TP=2 totals 26.9 s.
        model = get_model("Llama-13B")
        total = DEFAULT_INIT_COSTS.fresh_total(model, tp=2)
        assert total == pytest.approx(26.9, abs=0.5)

    def test_stage_composition(self):
        stages = DEFAULT_INIT_COSTS.fresh_stages(get_model("Llama-13B"), tp=2)
        assert set(stages) == {
            "dist_executor_init",
            "profiling",
            "model_load",
            "kv_init",
            "misc",
        }
        assert stages["model_load"] == pytest.approx(4.6, abs=0.2)


class TestScaleTo:
    def test_first_boot_pays_fresh_init(self):
        env = Environment()
        engine = make_engine(env, warm_models=["Qwen-7B"])
        record = run_scale(env, engine, "Qwen-7B")
        assert "dist_executor_init" in record.stages
        assert engine.current_model.name == "Qwen-7B"

    def test_reused_switch_is_subsecond(self):
        # After boot, optimized switches take under a second (§7.3).
        env = Environment()
        engine = make_engine(
            env,
            config=EngineConfig(prefetch=False),
            warm_models=["Qwen-7B", "Yi-6B"],
        )
        run_scale(env, engine, "Qwen-7B")
        record = run_scale(env, engine, "Yi-6B")
        assert record.total < 1.0
        assert "gc" not in record.stages
        assert record.stages["reinit"] == pytest.approx(0.15)

    def test_unoptimized_switch_takes_tens_of_seconds(self):
        # §3.2: scaling down and up a 13B vLLM instance unoptimized
        # "takes tens of seconds".
        env = Environment()
        engine = make_engine(
            env, config=EngineConfig.unoptimized(), warm_models=["Llama-13B", "Qwen-14B"]
        )
        run_scale(env, engine, "Llama-13B")
        record = run_scale(env, engine, "Qwen-14B")
        assert record.total > 20.0
        assert "gc" in record.stages
        assert "dist_executor_init" in record.stages

    def test_optimizations_remove_97_percent(self):
        # The headline: T3 is ~97% below T0 for a same-size switch.
        def switch_cost(config):
            env = Environment()
            engine = make_engine(
                env, config=config, warm_models=["Llama-13B", "Qwen-14B"]
            )
            run_scale(env, engine, "Llama-13B")
            return run_scale(env, engine, "Qwen-14B").total

        t0 = switch_cost(EngineConfig.unoptimized())
        t3 = switch_cost(EngineConfig(prefetch=False))
        assert 1 - t3 / t0 > 0.95

    def test_noop_switch(self):
        env = Environment()
        engine = make_engine(env, warm_models=["Qwen-7B"])
        run_scale(env, engine, "Qwen-7B")
        record = run_scale(env, engine, "Qwen-7B")
        assert record.total == 0.0
        assert record.stages == {}

    def test_scale_history_recorded(self):
        env = Environment()
        engine = make_engine(env, warm_models=["Qwen-7B", "Yi-6B"])
        run_scale(env, engine, "Qwen-7B")
        run_scale(env, engine, "Yi-6B")
        assert len(engine.scale_history) == 2
        assert engine.scale_history[1].model_from == "Qwen-7B"


class TestPrefetch:
    def test_prefetch_hit_is_near_instant(self):
        env = Environment()
        engine = make_engine(env, warm_models=["Qwen-7B", "Yi-6B"])
        run_scale(env, engine, "Qwen-7B")
        assert engine.prefetch(get_model("Yi-6B"))
        env.run(until=env.now + 5.0)  # let the prefetch stream drain
        record = run_scale(env, engine, "Yi-6B")
        assert record.prefetch_hit
        assert record.total < 0.2

    def test_prefetch_requires_cached_checkpoint(self):
        env = Environment()
        engine = make_engine(env, warm_models=["Qwen-7B"])
        run_scale(env, engine, "Qwen-7B")
        assert not engine.prefetch(get_model("Yi-6B"))  # not in host cache

    def test_prefetch_needs_buffer_space(self):
        env = Environment()
        config = EngineConfig(weight_buffer_bytes=18 * GiB)  # one 7B shard only
        engine = make_engine(env, config=config, warm_models=["Qwen-7B", "Yi-6B"])
        run_scale(env, engine, "Qwen-7B")
        assert not engine.prefetch(get_model("Yi-6B"))

    def test_wrong_prefetch_abandoned(self):
        env = Environment()
        engine = make_engine(
            env, warm_models=["Qwen-7B", "Yi-6B", "InternLM2.5-7B"]
        )
        run_scale(env, engine, "Qwen-7B")
        engine.prefetch(get_model("Yi-6B"))
        env.run(until=env.now + 5.0)
        record = run_scale(env, engine, "InternLM2.5-7B")
        assert not record.prefetch_hit
        assert engine.current_model.name == "InternLM2.5-7B"
        # Buffer did not leak the abandoned prefetch.
        assert engine.weights.live_bytes == engine.shard_bytes(
            get_model("InternLM2.5-7B")
        )


class TestExecution:
    def test_prefill_requires_active_model(self):
        env = Environment()
        engine = make_engine(env, warm_models=["Qwen-7B"])
        with pytest.raises(RuntimeError):
            env.process(engine.prefill(get_model("Qwen-7B"), [128]))
            env.run()

    def test_prefill_advances_clock(self):
        env = Environment()
        engine = make_engine(env, warm_models=["Qwen-7B"])
        spec = get_model("Qwen-7B")
        run_scale(env, engine, "Qwen-7B")

        def proc():
            duration = yield from engine.prefill(spec, [1024])
            return duration

        duration = env.run(until=env.process(proc()))
        assert duration == pytest.approx(
            engine.latency_model(spec).prefill_time([1024])
        )
        assert engine.busy_time == pytest.approx(duration)

    def test_tp_engine_uses_shards(self):
        env = Environment()
        config = EngineConfig(tp=4, weight_buffer_bytes=60 * GiB)
        engine = make_engine(env, config=config, warm_models=["Qwen-72B"])
        spec = get_model("Qwen-72B")
        assert engine.shard_bytes(spec) == spec.weight_bytes // 4
        record = run_scale(env, engine, "Qwen-72B")
        assert engine.current_model.name == "Qwen-72B"
        assert record.total > 0

    def test_estimate_switch_matches_loader(self):
        env = Environment()
        engine = make_engine(env, warm_models=["Qwen-7B", "Yi-6B"])
        run_scale(env, engine, "Qwen-7B")
        spec = get_model("Yi-6B")
        estimate = engine.estimate_switch_time(spec)
        assert estimate == pytest.approx(
            engine.quick_loader.load_time(spec.weight_bytes), rel=0.01
        )
        assert engine.estimate_switch_time(get_model("Qwen-7B")) == 0.0
