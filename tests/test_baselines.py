"""Tests for the baseline serving systems."""

import pytest

from repro.baselines import (
    DedicatedServing,
    MuxServe,
    ServerlessLLM,
    ServerlessLLMPlus,
    plan_placement,
)
from repro.hardware import Cluster, H800
from repro.models import get_model, market_mix
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

GiB = 1024**3


def small_trace(n_models, rps=0.1, horizon=60.0, seed=1):
    models = market_mix(n_models)
    return materialize_trace(models, [rps] * n_models, sharegpt(), horizon=horizon, seed=seed)


class TestPlacement:
    def test_two_large_models_per_gpu(self):
        models = [get_model("Llama-13B"), get_model("Qwen-14B"), get_model("Llama-13B")]
        placements, unplaced = plan_placement(models, gpu_count=1, gpu_spec=H800)
        # 26 + 28 GB weights + 2x16 GB reservations = 86 GB > 72 GB
        # budget: only one 13B-class model fits with another small one.
        assert len(placements[0]) == 1
        assert len(unplaced) == 2

    def test_cap_roughly_two_per_gpu(self):
        models = market_mix(48)
        placements, unplaced = plan_placement(models, gpu_count=16, gpu_spec=H800)
        placed = sum(len(p) for p in placements)
        assert placed <= 34  # the paper's "at most 32" with slack
        assert placed + len(unplaced) == 48

    def test_everything_fits_when_few_models(self):
        models = market_mix(8)
        placements, unplaced = plan_placement(models, gpu_count=16, gpu_spec=H800)
        assert not unplaced


class TestMuxServe:
    def test_serves_placed_models(self):
        env = Environment()
        server = MuxServe(env, Cluster.homogeneous(env, H800, 1, 4))
        trace = small_trace(4)
        result = server.serve(trace)
        assert result.finished_requests == len(trace)
        assert result.slo_attainment() > 0.9

    def test_rejects_unplaced_models(self):
        env = Environment()
        server = MuxServe(env, Cluster.homogeneous(env, H800, 1, 2))
        trace = small_trace(10, rps=0.1)
        result = server.serve(trace)
        assert server.placed_model_count <= 4
        assert len(server.rejected) > 0
        # Rejected requests pull attainment down.
        assert result.slo_attainment() < 1.0

    def test_no_switch_cost(self):
        env = Environment()
        server = MuxServe(env, Cluster.homogeneous(env, H800, 1, 2))
        trace = small_trace(4)
        result = server.serve(trace)
        assert result.scaling_latencies().size == 0


class TestDedicated:
    def test_one_gpu_per_model(self):
        env = Environment()
        server = DedicatedServing(env, H800)
        trace = small_trace(5)
        result = server.serve(trace)
        assert server.gpu_count == 5
        assert result.finished_requests == len(trace)

    def test_near_perfect_slo_at_low_load(self):
        env = Environment()
        server = DedicatedServing(env, H800)
        trace = small_trace(3, rps=0.1)
        result = server.serve(trace)
        assert result.slo_attainment() > 0.99

    def test_utilization_is_low_for_sporadic_load(self):
        # The §1 motivation: dedicated GPUs for sporadic models idle.
        env = Environment()
        server = DedicatedServing(env, H800)
        trace = small_trace(3, rps=0.05, horizon=120.0)
        server.serve(trace)
        for instance in server.instances.values():
            assert instance.utilization(elapsed=120.0) < 0.5


class TestServerlessLLM:
    def test_completes_requests(self):
        env = Environment()
        server = ServerlessLLM(env, Cluster.homogeneous(env, H800, 1, 3))
        trace = small_trace(5)
        result = server.serve(trace)
        assert result.completion_rate > 0.95

    def test_request_level_switches_recorded(self):
        env = Environment()
        server = ServerlessLLM(env, Cluster.homogeneous(env, H800, 1, 2))
        trace = small_trace(6)
        result = server.serve(trace)
        assert len(result.scale_records) > 0

    def test_hol_blocking_under_pressure(self):
        # §3.1: with more active models than instances, waiting requests
        # blow their TTFT; Aegaeon's differentiation point.
        env = Environment()
        server = ServerlessLLM(env, Cluster.homogeneous(env, H800, 1, 2))
        trace = small_trace(10, rps=0.2, horizon=90.0, seed=6)
        result = server.serve(trace)
        ttfts = result.ttfts()
        assert (ttfts > 10.0).mean() > 0.05

    def test_affinity_dispatch(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, H800, 1, 2)
        server = ServerlessLLM(env, cluster)
        trace = small_trace(2, rps=0.3, horizon=30.0, seed=2)
        result = server.serve(trace)
        # Two models on two instances: switches should be rare after the
        # initial scale-ups.
        switches = [r for r in result.scale_records if r.model_from is not None]
        assert len(switches) <= 4


class TestServerlessLLMPlus:
    def test_sjf_orders_by_service_time(self):
        env = Environment()
        server = ServerlessLLMPlus(env, Cluster.homogeneous(env, H800, 1, 2))
        trace = small_trace(4)
        result = server.serve(trace)
        assert result.completion_rate > 0.95
        assert server.label == "ServerlessLLM+"

    def test_plus_differs_from_base_under_load(self):
        attainments = {}
        for cls in [ServerlessLLM, ServerlessLLMPlus]:
            env = Environment()
            server = cls(env, Cluster.homogeneous(env, H800, 1, 2))
            trace = small_trace(8, rps=0.15, horizon=90.0, seed=9)
            attainments[cls.__name__] = server.serve(trace).slo_attainment()
        assert attainments["ServerlessLLM"] != attainments["ServerlessLLMPlus"]
