"""Tests for the host model cache (§5.2)."""

import pytest

from repro.memory import HostModelCache

GiB = 1024**3


class TestModelCache:
    def test_hit_and_miss_counting(self):
        cache = HostModelCache(capacity_bytes=100 * GiB)
        assert not cache.lookup("m1")
        cache.insert("m1", 10 * GiB)
        assert cache.lookup("m1")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = HostModelCache(capacity_bytes=30 * GiB)
        cache.insert("a", 10 * GiB)
        cache.insert("b", 10 * GiB)
        cache.insert("c", 10 * GiB)
        cache.lookup("a")  # touch a; b is now LRU
        evicted = cache.insert("d", 10 * GiB)
        assert evicted == ["b"]
        assert cache.contains("a") and cache.contains("c") and cache.contains("d")

    def test_pinned_entries_survive(self):
        cache = HostModelCache(capacity_bytes=20 * GiB)
        cache.insert("a", 10 * GiB)
        cache.insert("b", 10 * GiB)
        cache.pin("a")
        evicted = cache.insert("c", 10 * GiB)
        assert evicted == ["b"]
        cache.unpin("a")

    def test_all_pinned_raises(self):
        cache = HostModelCache(capacity_bytes=20 * GiB)
        cache.insert("a", 10 * GiB)
        cache.insert("b", 10 * GiB)
        cache.pin("a")
        cache.pin("b")
        with pytest.raises(MemoryError):
            cache.insert("c", 10 * GiB)

    def test_oversized_checkpoint_rejected(self):
        cache = HostModelCache(capacity_bytes=10 * GiB)
        with pytest.raises(MemoryError):
            cache.insert("huge", 20 * GiB)

    def test_reinsert_is_noop(self):
        cache = HostModelCache(capacity_bytes=30 * GiB)
        cache.insert("a", 10 * GiB)
        assert cache.insert("a", 10 * GiB) == []
        assert cache.used_bytes == 10 * GiB

    def test_unpin_without_pin_raises(self):
        cache = HostModelCache(capacity_bytes=10 * GiB)
        cache.insert("a", 1 * GiB)
        with pytest.raises(ValueError):
            cache.unpin("a")

    def test_eviction_counter(self):
        cache = HostModelCache(capacity_bytes=10 * GiB)
        cache.insert("a", 10 * GiB)
        cache.insert("b", 10 * GiB)
        assert cache.evictions == 1
