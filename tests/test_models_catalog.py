"""Tests for the model catalog and KV-cache geometry (paper Table 1)."""

import pytest

from repro.models import (
    MODEL_CATALOG,
    ModelSpec,
    get_model,
    kv_block_bytes,
    kv_bytes_per_token,
    kv_shape,
    market_mix,
    models_in_range,
)


class TestCatalog:
    def test_table1_models_present(self):
        for name in ["Qwen-7B", "InternLM2.5-7B", "Llama-13B", "Qwen-72B"]:
            assert name in MODEL_CATALOG

    def test_get_model_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("GPT-5")

    def test_weight_bytes_fp16(self):
        spec = get_model("Llama-13B")
        assert spec.weight_bytes == spec.params * 2
        # ~26 GB, the figure the paper uses for its PCIe arithmetic.
        assert 25e9 < spec.weight_bytes < 27e9

    def test_models_in_range(self):
        mains = models_in_range(6.0, 14.5)
        assert all(6.0 <= spec.params_b <= 14.5 for spec in mains)
        assert len(mains) >= 6

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="bad",
                family="x",
                params=1000,
                n_layers=2,
                hidden_size=64,
                n_heads=6,
                n_kv_heads=4,  # 6 % 4 != 0
                head_dim=16,
                ffn_intermediate=128,
            )


class TestTensorParallelism:
    def test_shard_divides_params(self):
        spec = get_model("Qwen-72B")
        shard = spec.shard(4)
        assert shard.params == spec.params // 4
        assert shard.n_heads == 16

    def test_gqa_kv_heads_floor_at_one(self):
        spec = get_model("Yi-6B")  # 4 KV heads
        shard = spec.shard(8)
        assert shard.n_kv_heads == 1

    def test_invalid_tp_rejected(self):
        with pytest.raises(ValueError):
            get_model("Qwen-7B").shard(5)


class TestTable1KvShapes:
    """The exact rows of the paper's Table 1."""

    @pytest.mark.parametrize(
        "name, dims, size_kb",
        [
            ("Qwen-7B", (32, 2, 32, 128), 512),
            ("InternLM2.5-7B", (32, 2, 8, 128), 128),
            ("Llama-13B", (40, 2, 40, 128), 800),
            ("Qwen-72B", (80, 2, 64, 128), 2560),
        ],
    )
    def test_row(self, name, dims, size_kb):
        shape = kv_shape(get_model(name))
        assert shape.dims == dims
        assert shape.bytes_per_token == size_kb * 1024

    def test_tp_divides_kv(self):
        per_gpu = kv_bytes_per_token(get_model("Qwen-72B"), tp=4)
        assert per_gpu == 2560 * 1024 // 4

    def test_block_bytes(self):
        spec = get_model("Qwen-7B")
        assert kv_block_bytes(spec, block_tokens=16) == 512 * 1024 * 16


class TestMarketMix:
    def test_unique_names(self):
        mix = market_mix(40)
        names = [spec.name for spec in mix]
        assert len(set(names)) == 40

    def test_sizes_in_band(self):
        for spec in market_mix(20):
            assert 6.0 <= spec.params_b <= 14.5

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            market_mix(5, min_b=100.0, max_b=200.0)
