"""The live fleet controller: determinism, accounting, spill bounds, chaos.

Four contracts pin the control loop down:

* **Byte-reproducibility** — a controller-enabled replay is a pure
  function of ``(workload seed, fleet config)``: same seed, same bytes
  (and the digest matches the committed golden, so *any* behavioral
  drift in the controller is a reviewed change).
* **Conservation** — spillover moves rejections between shards but
  never invents or loses a request: per shard
  ``finished + failed + rejected + spilled == submissions``, fleet-wide
  ``rollup.requests == pump submissions + spills``.
* **Bounded hops** — no request is ever re-submitted more than
  ``max_spill_hops`` times (hypothesis-checked on the ledger, then
  end-to-end).
* **Chaos** — killing a shard's only prefill instance mid-run turns
  that shard into a pure rejector; with a forecast controller the fleet
  routes around it and every invariant stays green.
"""

import hashlib
import json
import os
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan, InstanceFailure
from repro.core import AegaeonConfig, SystemSpec
from repro.fleet import (
    ControllerConfig,
    FleetConfig,
    FleetController,
    ModelForecast,
    SpillLedger,
    build_fleet,
)
from repro.policy import (
    ForecastFleetControl,
    StaticFleetControl,
    available_fleet_policies,
    get_fleet_policy,
    register_fleet_policy,
)
from repro.workload import market_stream

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "fleet_controller_digest.json")


def small_spec(**overrides):
    defaults = dict(prefill_instances=1, decode_instances=3, cluster="h800-quad")
    defaults.update(overrides)
    return SystemSpec(
        config=AegaeonConfig(**defaults), policies="aegaeon-slo-admission"
    )


def controller_fleet(
    policy="forecast",
    *,
    shards=3,
    skew=True,
    seed=2025,
    kill_prefill0=False,
    **ctrl,
):
    """A controller-enabled fleet over a load-skewed market stream.

    ``kill_prefill0=True`` arms an :class:`InstanceFailure` against
    shard 0's only prefill instance at t=10: from then on that shard can
    only reject, so every later arrival routed to it must spill.
    """
    config = FleetConfig(
        shards=shards,
        spec=small_spec(),
        controller=ControllerConfig(policy=policy, **ctrl),
    )
    fleet = build_fleet(config)
    stream = market_stream(24, 120.0, seed=seed, total_rate=10.0)
    if skew:
        # Hot-spot the whole catalog onto shard 0: the worst case the
        # controller exists to fix.
        for model in stream.models:
            fleet.partitioner.pin(model.name, 0)
    if kill_prefill0:
        fleet.shards[0].system.attach_faults(
            FaultPlan.of(InstanceFailure(at=10.0, instance="prefill0"))
        )
    return fleet, stream


def digest(result) -> str:
    payload = json.dumps(
        [stats.as_dict() for stats in result.shard_stats], sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        digests = []
        for _ in range(2):
            fleet, stream = controller_fleet()
            digests.append(digest(fleet.run(stream)))
        assert digests[0] == digests[1]

    def test_digest_matches_golden(self):
        # The pinned scenario includes a mid-run prefill kill so the
        # golden exercises migration AND spillover on one digest.
        with open(GOLDEN) as handle:
            golden = json.load(handle)
        fleet, stream = controller_fleet(kill_prefill0=True)
        result = fleet.run(stream)
        assert digest(result) == golden["digest"], (
            "controller-enabled replay drifted from the committed golden; "
            "if the change is intentional, regenerate "
            "tests/golden/fleet_controller_digest.json"
        )
        assert result.controller["spills"] == golden["spills"]
        assert result.controller["migrations"] == golden["migrations"]

    def test_different_seeds_differ(self):
        fleet_a, stream_a = controller_fleet(seed=2025)
        fleet_b, stream_b = controller_fleet(seed=2026)
        assert digest(fleet_a.run(stream_a)) != digest(fleet_b.run(stream_b))

    def test_static_controller_leaves_data_path_untouched(self):
        """An observe-only controller must not perturb a single byte of
        the rollup relative to running without one."""
        baseline = FleetConfig(shards=3, spec=small_spec())
        fleet_none = build_fleet(baseline)
        fleet_static = build_fleet(
            FleetConfig(
                shards=3,
                spec=small_spec(),
                controller=ControllerConfig(policy="static"),
            )
        )
        results = []
        for fleet in (fleet_none, fleet_static):
            stream = market_stream(24, 120.0, seed=2025, total_rate=10.0)
            results.append(fleet.run(stream))
        assert digest(results[0]) == digest(results[1])


class TestConservation:
    @pytest.fixture(autouse=True)
    def _invariants(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "1")

    def test_accounting_conserved_under_spillover(self):
        fleet, stream = controller_fleet(kill_prefill0=True)
        result = fleet.run(stream)
        total = result.rollup.total
        assert result.controller["spills"] > 0, "scenario produced no spills"
        # Per shard: every submission this shard saw (pump + respills)
        # got exactly one disposition fold.
        for shard in fleet.shards:
            stats = shard.stats
            assert (
                stats.finished + stats.failed + stats.rejected + stats.spilled
                == shard.system.proxy.submitted
            )
        # Fleet-wide: folds == pump submissions + spill re-submissions.
        assert total.requests == result.submitted + total.spilled
        # And nothing was silently left in flight.
        assert sum(s.system.registry.in_flight for s in fleet.shards) == 0

    def test_migration_conserves_accounting(self):
        fleet, stream = controller_fleet(
            policy=ForecastFleetControl(max_moves_per_tick=4)
        )
        result = fleet.run(stream)
        assert result.controller["migrations"] > 0, "scenario never migrated"
        total = result.rollup.total
        assert total.migrations_out == total.migrations_in
        assert total.requests == result.submitted + total.spilled


class TestSpillBounds:
    @given(
        max_hops=st.integers(min_value=0, max_value=4),
        events=st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), st.booleans()),
            max_size=200,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_ledger_never_exceeds_hop_bound(self, max_hops, events):
        """Drive the ledger with an arbitrary interleaving of spill
        attempts and terminal settlements: the per-request hop count can
        never pass ``max_hops``, and ``can_spill`` goes False exactly at
        the bound."""
        ledger = SpillLedger(max_hops)
        hops = {}
        for request_id, settle in events:
            if settle:
                ledger.settle(request_id)
                hops.pop(request_id, None)
            elif ledger.can_spill(request_id):
                ledger.record_hop(request_id)
                hops[request_id] = hops.get(request_id, 0) + 1
            else:
                assert hops.get(request_id, 0) == max_hops
            assert hops.get(request_id, 0) <= max_hops

    def test_zero_hops_disables_spillover(self):
        fleet, stream = controller_fleet(kill_prefill0=True, max_spill_hops=0)
        result = fleet.run(stream)
        assert result.controller["spills"] == 0
        assert result.rollup.total.spilled == 0

    def test_end_to_end_hop_accounting(self):
        fleet, stream = controller_fleet(kill_prefill0=True, max_spill_hops=1)
        result = fleet.run(stream)
        # Whatever spilled did so within the bound, and the ledger holds
        # no leaked entries once everything drained.
        assert len(fleet.controller.ledger) == 0
        assert result.rollup.total.spilled == result.controller["spills"]


class TestChaos:
    @pytest.fixture(autouse=True)
    def _invariants(self, monkeypatch):
        monkeypatch.setenv("REPRO_INVARIANTS", "1")

    def test_dead_shard_spills_to_healthy_ones(self):
        """Kill shard 0's only prefill instance mid-run: its admission
        pressure goes infinite, every later arrival is rejected, and the
        forecast controller re-routes them — invariants stay green on
        every shard."""
        fleet, stream = controller_fleet(kill_prefill0=True)
        result = fleet.run(stream)
        dead = fleet.shards[0].stats
        assert dead.spilled > 0, "dead shard never spilled"
        assert dead.finished + dead.failed + dead.rejected + dead.spilled == (
            fleet.shards[0].system.proxy.submitted
        )
        # The spilled work really landed somewhere healthy.
        assert sum(s.stats.finished for s in fleet.shards[1:]) > 0
        assert result.rollup.total.requests == result.submitted + result.rollup.total.spilled

    def test_chaos_run_is_repeatable(self):
        digests = []
        for _ in range(2):
            fleet, stream = controller_fleet(kill_prefill0=True)
            digests.append(digest(fleet.run(stream)))
        assert digests[0] == digests[1]


class TestScalingHints:
    def test_hints_reach_the_scaling_policy_seam(self):
        hints = []

        class RecordingScaling:
            """Stock token-level scaling plus the optional fleet hook."""

            def should_switch(self, engine, spec):
                return engine.current_model != spec.name

            def round_switch_cost(self, engine, batches):
                return 0.0

            def order_queue(self, waiting, engine):
                return None

            def observe_fleet_hint(self, system, hint):
                hints.append((system, hint))

        import dataclasses

        fleet, stream = controller_fleet()
        recorder = RecordingScaling()
        for shard in fleet.shards:
            shard.system.policies = dataclasses.replace(
                shard.system.policies, scaling=recorder
            )
        fleet.run(stream)
        assert hints, "no scaling hints were delivered"
        hinted_systems = {id(system) for system, _ in hints}
        assert len(hinted_systems) == len(fleet.shards)
        for shard in fleet.shards:
            assert isinstance(shard.system.scaling_hint, float)

    def test_hint_stored_on_system_not_policy(self):
        fleet, stream = controller_fleet()
        fleet.run(stream)
        hints = [shard.system.scaling_hint for shard in fleet.shards]
        assert all(isinstance(h, float) for h in hints)
        # The skewed scenario must produce asymmetric hints.
        assert max(hints) != min(hints)


class TestPolicyRegistry:
    def test_builtin_policies_registered(self):
        assert {"static", "forecast"} <= set(available_fleet_policies())
        assert isinstance(get_fleet_policy("static"), StaticFleetControl)
        assert isinstance(get_fleet_policy("forecast"), ForecastFleetControl)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown fleet control policy"):
            get_fleet_policy("nope")

    def test_custom_policy_round_trips(self):
        register_fleet_policy("test-noop", StaticFleetControl)
        try:
            config = ControllerConfig(policy="test-noop")
            assert isinstance(config.resolve_policy(), StaticFleetControl)
        finally:
            from repro.policy import fleet_control

            fleet_control._FLEET_POLICIES.pop("test-noop", None)

    def test_policy_object_passes_through(self):
        policy = ForecastFleetControl(tolerance=0.5)
        assert ControllerConfig(policy=policy).resolve_policy() is policy


class TestForecasts:
    def test_ewma_converges_to_constant_rate(self):
        forecast = ModelForecast()
        for _ in range(50):
            forecast.update(4.0, alpha=0.3, tick=5.0)
        assert forecast.rate == pytest.approx(4.0, rel=1e-6)
        assert forecast.predicted == pytest.approx(4.0, rel=1e-4)

    def test_prediction_clamped_at_zero(self):
        forecast = ModelForecast()
        forecast.update(10.0, alpha=1.0, tick=5.0)
        forecast.update(0.0, alpha=1.0, tick=5.0)
        assert forecast.predicted == 0.0

    def test_controller_tracks_arrivals(self):
        fleet, stream = controller_fleet()
        fleet.run(stream)
        controller = fleet.controller
        assert controller.ticks > 0
        assert controller.forecasts, "no models were forecast"
        assert set(controller.forecasts) <= {m.name for m in stream.models}


class TestFleetConfigFromEnv:
    def test_defaults_have_no_controller(self):
        config = FleetConfig.from_env({})
        assert config.controller is None
        assert config.shards == 4

    def test_fleet_keys_resolve(self):
        config = FleetConfig.from_env(
            {
                "REPRO_FLEET_SHARDS": "6",
                "REPRO_FLEET_VIRTUAL_NODES": "32",
                "REPRO_FLEET_CONTROLLER": "forecast",
                "REPRO_FLEET_TICK": "2.5",
                "REPRO_FLEET_SPILL_HOPS": "3",
            }
        )
        assert config.shards == 6
        assert config.virtual_nodes == 32
        assert config.controller is not None
        assert config.controller.policy == "forecast"
        assert config.controller.tick == 2.5
        assert config.controller.max_spill_hops == 3

    def test_controller_off_values(self):
        for value in ("", "off", "OFF"):
            assert FleetConfig.from_env({"REPRO_FLEET_CONTROLLER": value}).controller is None

    def test_overrides_beat_environment(self):
        config = FleetConfig.from_env({"REPRO_FLEET_SHARDS": "6"}, shards=2)
        assert config.shards == 2

    def test_typoed_fleet_key_suggests_fix(self):
        with pytest.warns(RuntimeWarning, match="did you mean 'REPRO_FLEET_SHARDS'"):
            FleetConfig.from_env({"REPRO_FLEET_SHARD": "6"})

    def test_known_keys_are_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            FleetConfig.from_env(
                {"REPRO_FLEET_CONTROLLER": "static", "REPRO_OBS": "metrics"}
            )


class TestControllerConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ControllerConfig(tick=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(max_spill_hops=-1)
        with pytest.raises(ValueError):
            ControllerConfig(spill_delay=-0.1)
