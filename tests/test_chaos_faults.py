"""Chaos suite: seeded fault plans against full serving runs.

Every test here drives a real end-to-end serve with the runtime
:class:`~repro.chaos.InvariantChecker` attached — ``serve`` raises if
any mid-run check ever failed, so a green test certifies the system
*provably preserved* KV conservation, token monotonicity, dead-instance
exclusion, and SLO accounting under the injected faults, not merely
that it didn't crash.
"""

import pytest
from hypothesis import given, settings

from repro.chaos import (
    FaultPlan,
    FetchFailure,
    InstanceFailure,
    LatencySpike,
    LinkThrottle,
    TransferStall,
)
from repro.core import AegaeonConfig, SystemSpec, build_system
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

from .strategies import fault_plans


def run_chaos(
    plan,
    *,
    seed=7,
    models=4,
    rate=0.15,
    horizon=40.0,
    prefill=1,
    decode=3,
):
    """One faulted Aegaeon serve with invariants on; returns the system
    and its :class:`~repro.analysis.metrics.ServingResult`."""
    env = Environment()
    system = build_system(
        SystemSpec(
            config=AegaeonConfig(
                prefill_instances=prefill,
                decode_instances=decode,
                cluster="h800-quad",
            ),
            faults=plan,
            invariants=True,
        ),
        env,
    )
    trace = materialize_trace(
        market_mix(models), [rate] * models, sharegpt(), horizon=horizon, seed=seed
    )
    # warm=False so checkpoint fetches actually hit the (disruptable)
    # remote registry path.
    result = system.serve(trace, warm=False)
    return system, result


def assert_accounted(system, result):
    """Every submitted request ends in exactly one terminal ledger."""
    registry = system.registry
    submitted = registry.submitted
    assert submitted == len(result.requests)
    assert registry.finished + registry.failed + registry.rejected == submitted
    assert (
        len(system.finished) + len(system.failed) + len(system.rejected)
        == submitted
    )


class TestAcceptanceScenario:
    """The issue's benchmark: GPU loss + 2 transfer stalls + 1 failed
    fetch over a 4-model market-mix trace."""

    PLAN = FaultPlan.of(
        FetchFailure(at=2.0, count=1, wasted=0.2),
        TransferStall(at=8.0, direction="in", duration=0.6),
        InstanceFailure(at=12.0, instance="decode1"),
        TransferStall(at=18.0, direction="out", duration=0.6),
    )

    def test_completes_with_zero_violations(self):
        system, result = run_chaos(self.PLAN)
        # serve() would have raised on any violation; double-check the
        # checker actually ran and the ledger closed.
        checker = system.invariant_checker
        assert checker.checks_run > 10
        assert checker.violations == []
        assert_accounted(system, result)

    def test_all_faults_delivered(self):
        system, _ = run_chaos(self.PLAN)
        injector = system.fault_injector
        assert len(injector.delivered) == len(self.PLAN)
        assert injector.skipped == []
        assert system.instance_failures == 1

    def test_fetch_failure_retried_not_fatal(self):
        system, _ = run_chaos(self.PLAN)
        failures = sum(e.quick_loader.fetch_failures for e in system.engines())
        retries = sum(e.quick_loader.fetch_retries for e in system.engines())
        assert failures >= 1
        assert retries >= 1  # the retry path absorbed it
        assert system.registry.failed == 0


class TestSeededPlans:
    """Property: ANY seeded fault plan leaves the invariants intact and
    the request ledger balanced."""

    @settings(max_examples=8, deadline=None)
    @given(plan=fault_plans(horizon=20.0, instances=("decode1", "decode2")))
    def test_invariants_and_accounting_hold(self, plan):
        system, result = run_chaos(plan, horizon=20.0)
        assert system.invariant_checker.violations == []
        assert_accounted(system, result)
        # Everything the injector attempted is accounted for too.
        injector = system.fault_injector
        assert len(injector.delivered) + len(injector.skipped) == len(plan)

    def test_seeded_plan_is_reproducible(self):
        a = FaultPlan.seeded(42, horizon=30.0, count=6, instances=("decode1",))
        b = FaultPlan.seeded(42, horizon=30.0, count=6, instances=("decode1",))
        assert a == b
        assert len(a) == 6
        assert all(f.at <= g.at for f, g in zip(a, list(a)[1:]))

    def test_different_seeds_draw_different_plans(self):
        plans = {
            FaultPlan.seeded(s, horizon=30.0, count=4).faults for s in range(8)
        }
        assert len(plans) == 8


class TestInstanceLoss:
    def test_prefill_kill_requeues_orphans(self):
        # Heavy arrivals back the prefill queue up, so the kill strands
        # real work; timeout-and-requeue must land it on the survivor.
        plan = FaultPlan.of(InstanceFailure(at=4.0, instance="prefill0"))
        system, result = run_chaos(
            plan, seed=11, rate=1.0, horizon=20.0, prefill=2, decode=2
        )
        assert system.instance_failures == 1
        assert system.orphans_requeued > 0
        assert system.registry.finished == system.registry.submitted
        assert_accounted(system, result)

    def test_losing_whole_prefill_pool_sheds_load(self):
        # With the only prefill instance gone, later arrivals cannot be
        # served — they must be rejected at admission, not dropped.
        plan = FaultPlan.of(InstanceFailure(at=5.0, instance="prefill0"))
        system, result = run_chaos(plan, rate=0.5, horizon=20.0, prefill=1)
        assert system.registry.rejected > 0
        assert_accounted(system, result)

    def test_unknown_instance_is_skipped_not_fatal(self):
        plan = FaultPlan.of(InstanceFailure(at=5.0, instance="decode99"))
        system, result = run_chaos(plan, horizon=10.0)
        injector = system.fault_injector
        assert injector.delivered == []
        assert len(injector.skipped) == 1
        assert_accounted(system, result)


class TestDegradation:
    def test_throttle_and_spike_slow_but_complete(self):
        plan = FaultPlan.of(
            LinkThrottle(at=3.0, factor=6.0, duration=2.0),
            LatencySpike(at=6.0, factor=2.5, duration=2.0),
        )
        system, result = run_chaos(plan, horizon=20.0)
        assert system.registry.finished == system.registry.submitted
        # Spikes must fully unwind: every engine back at nominal speed.
        assert all(e.perf_factor == 1.0 for e in system.engines())

    def test_fetch_exhaustion_fails_requests_cleanly(self):
        # More failures than the retry budget: some requests must fail,
        # but failure stays requested-scoped — ledger balanced, zero
        # invariant violations.
        plan = FaultPlan.of(FetchFailure(at=0.0, count=50, wasted=0.3))
        system, result = run_chaos(plan, rate=0.3, horizon=15.0)
        assert system.registry.failed > 0
        assert_accounted(system, result)


class TestPlanValidation:
    def test_invalid_records_rejected(self):
        with pytest.raises(ValueError):
            FetchFailure(at=-1.0)
        with pytest.raises(ValueError):
            TransferStall(at=1.0, direction="sideways")
        with pytest.raises(ValueError):
            LinkThrottle(at=1.0, factor=0.5)
        with pytest.raises(ValueError):
            InstanceFailure(at=1.0, instance="")
        with pytest.raises(ValueError):
            LatencySpike(at=1.0, factor=1.0)

    def test_of_sorts_by_time(self):
        plan = FaultPlan.of(
            LatencySpike(at=9.0), FetchFailure(at=1.0), TransferStall(at=4.0)
        )
        assert [f.at for f in plan] == [1.0, 4.0, 9.0]

    def test_kind_counts(self):
        plan = FaultPlan.of(FetchFailure(at=1.0), FetchFailure(at=2.0), LatencySpike(at=3.0))
        assert plan.kind_counts() == {"FetchFailure": 2, "LatencySpike": 1}
