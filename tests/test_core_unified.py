"""Tests for the unified (non-disaggregated) scheduling foils (§4.1)."""

from dataclasses import replace

import pytest

from repro.core import DECODE_FIRST, PREFILL_FIRST, SloSpec, UnifiedServer
from repro.hardware import Cluster, H800
from repro.models import get_model
from repro.sim import Environment
from repro.workload import Trace, TraceRequest


def make_trace(pattern, inp=1024, out=128):
    """pattern: list of (model_tag, arrival)."""
    base = get_model("Qwen-7B")
    tags = sorted({tag for tag, _ in pattern})
    models = tuple(replace(base, name=f"model-{tag}") for tag in tags)
    requests = tuple(
        TraceRequest(
            request_id=index,
            model=f"model-{tag}",
            arrival=arrival,
            input_tokens=inp,
            output_tokens=out,
        )
        for index, (tag, arrival) in enumerate(pattern)
    )
    horizon = max(arrival for _, arrival in pattern) + 1.0
    return Trace(requests=requests, models=models, horizon=horizon)


def run_policy(policy, trace, gpus=1, slo=SloSpec(ttft=2.0, tbt=0.1)):
    env = Environment()
    server = UnifiedServer(env, Cluster.homogeneous(env, H800, 1, gpus), policy, slo=slo)
    return server.serve(trace)


class TestUnifiedPolicies:
    def test_invalid_policy_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            UnifiedServer(env, Cluster.homogeneous(env, H800, 1, 1), "both_first")

    def test_completes_all_requests(self):
        trace = make_trace([("A", 0.0), ("B", 0.5), ("A", 1.0)])
        for policy in (PREFILL_FIRST, DECODE_FIRST):
            result = run_policy(policy, trace)
            assert result.finished_requests == 3, policy

    def test_prefill_first_prioritizes_new_arrivals(self):
        # A long decode is running; a new prompt arrives.  Prefill-first
        # serves the prompt's first token quickly.
        trace = make_trace([("A", 0.0), ("B", 1.0)], out=400)
        result = run_policy(PREFILL_FIRST, trace)
        ttft_b = result.ttfts()[1]
        assert ttft_b < 3.0

    def test_decode_first_delays_new_arrivals(self):
        # Same scenario under decode-first: B waits for A's whole output.
        trace = make_trace([("A", 0.0), ("B", 1.0)], out=400)
        fast = run_policy(PREFILL_FIRST, trace).ttfts()[1]
        slow = run_policy(DECODE_FIRST, trace).ttfts()[1]
        assert slow > fast + 1.0

    def test_prefill_first_starves_decode_under_burst(self):
        # A stream of arriving prompts keeps preempting A's decoding:
        # its tokens stall compared to decode-first.
        pattern = [("A", 0.0)] + [(tag, 0.5 + i * 0.4) for i, tag in enumerate("BCBCBC")]
        trace = make_trace(pattern, inp=2048, out=200)

        def max_gap(result):
            times = result.requests[0].token_times
            return max(b - a for a, b in zip(times, times[1:]))

        gap_prefill_first = max_gap(run_policy(PREFILL_FIRST, trace))
        gap_decode_first = max_gap(run_policy(DECODE_FIRST, trace))
        assert gap_prefill_first > gap_decode_first

    def test_label_reflects_policy(self):
        env = Environment()
        server = UnifiedServer(env, Cluster.homogeneous(env, H800, 1, 1), PREFILL_FIRST)
        assert "prefill_first" in server.label
