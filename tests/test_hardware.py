"""Tests for the simulated hardware substrate."""

import pytest

from repro.hardware import (
    A10,
    Cluster,
    GPU_PRESETS,
    Gpu,
    H800,
    Link,
    Node,
    pcie_pair,
)
from repro.sim import Environment

GiB = 1024**3


@pytest.fixture
def env():
    return Environment()


class TestGpuSpec:
    def test_presets_exist(self):
        assert {"H800", "H20", "A100", "A10"} <= set(GPU_PRESETS)

    def test_h800_capacity(self):
        assert H800.vram_bytes == 80 * GiB

    def test_a10_capacity(self):
        assert A10.vram_bytes == 24 * GiB

    def test_effective_figures_below_peak(self):
        for spec in GPU_PRESETS.values():
            assert spec.effective_flops < spec.fp16_tflops * 1e12
            assert spec.effective_hbm_bandwidth < spec.hbm_bandwidth

    def test_paper_pcie_arithmetic(self):
        # The paper's example: 26 GB over PCIe 4.0 at 32 GB/s = 0.8125 s
        # lower bound. H800's host link must match that base rate.
        assert H800.pcie_bandwidth == 32e9


class TestGpu:
    def test_reserve_and_free(self):
        gpu = Gpu(spec=H800)
        gpu.reserve(10 * GiB)
        assert gpu.free_bytes == 70 * GiB
        gpu.unreserve(10 * GiB)
        assert gpu.free_bytes == 80 * GiB

    def test_over_reserve_raises(self):
        gpu = Gpu(spec=A10)
        with pytest.raises(MemoryError):
            gpu.reserve(25 * GiB)

    def test_over_unreserve_raises(self):
        gpu = Gpu(spec=H800)
        with pytest.raises(ValueError):
            gpu.unreserve(1)

    def test_key_is_unique_within_cluster(self, env):
        cluster = Cluster.testbed(env)
        keys = [gpu.key for gpu in cluster.gpus]
        assert len(keys) == len(set(keys)) == 16


class TestLink:
    def test_transfer_time_scales_with_bytes(self, env):
        link = Link(env, bandwidth=32e9, latency=0.0)
        assert link.transfer_time(32e9) == pytest.approx(1.0)

    def test_transfers_serialize(self, env):
        link = Link(env, bandwidth=1e9, latency=0.0)
        done = []

        def mover(tag):
            yield env.process(link.transfer(int(1e9)))
            done.append((tag, env.now))

        env.process(mover("a"))
        env.process(mover("b"))
        env.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_duplex_directions_are_independent(self, env):
        duplex = pcie_pair(env, bandwidth=1e9)
        done = []

        def up():
            yield env.process(duplex.h2d.transfer(int(1e9)))
            done.append(("h2d", env.now))

        def down():
            yield env.process(duplex.d2h.transfer(int(1e9)))
            done.append(("d2h", env.now))

        env.process(up())
        env.process(down())
        env.run()
        assert len(done) == 2
        for _, time in done:
            assert time == pytest.approx(1.0 + 5e-6)

    def test_bytes_moved_accounting(self, env):
        link = Link(env, bandwidth=1e9)

        def mover():
            yield env.process(link.transfer(500))

        env.process(mover())
        env.run()
        assert link.bytes_moved == 500

    def test_utilization(self, env):
        link = Link(env, bandwidth=1e9, latency=0.0)

        def mover():
            yield env.process(link.transfer(int(1e9)))

        env.process(mover())
        env.run(until=2.0)
        assert link.utilization() == pytest.approx(0.5)

    def test_negative_bytes_rejected(self, env):
        link = Link(env, bandwidth=1e9)
        with pytest.raises(ValueError):
            env.process(link.transfer(-1))
            env.run()


class TestNode:
    def test_node_has_link_per_gpu(self, env):
        node = Node(env, H800, gpu_count=8)
        assert len(node.links) == 8
        for gpu in node.gpus:
            assert node.link(gpu).bandwidth == H800.pcie_bandwidth

    def test_dram_claims(self, env):
        node = Node(env, H800, gpu_count=1, dram_bytes=100 * GiB)
        node.claim_dram(60 * GiB)
        assert node.dram_free == 40 * GiB
        with pytest.raises(MemoryError):
            node.claim_dram(50 * GiB)
        node.release_dram(60 * GiB)
        assert node.dram_free == 100 * GiB

    def test_zero_gpus_rejected(self, env):
        with pytest.raises(ValueError):
            Node(env, H800, gpu_count=0)


class TestCluster:
    def test_testbed_shape(self, env):
        cluster = Cluster.testbed(env)
        assert len(cluster.nodes) == 2
        assert len(cluster) == 16
        assert all(gpu.spec.name == "H800" for gpu in cluster)

    def test_a10_node_shape(self, env):
        cluster = Cluster.a10_node(env)
        assert len(cluster) == 4
        assert cluster.gpus[0].spec.name == "A10"

    def test_node_of(self, env):
        cluster = Cluster.testbed(env)
        gpu = cluster.gpus[9]
        assert cluster.node_of(gpu).index == gpu.node_index == 1

    def test_empty_cluster_rejected(self, env):
        with pytest.raises(ValueError):
            Cluster(env, [])
