"""Tests for the paged block manager and continuous batcher."""

import pytest

from repro.engine import BatchingPolicy, BlockManager, ContinuousBatcher, Phase, Request
from repro.models import get_model, kv_block_bytes
from repro.workload.trace import TraceRequest

GiB = 1024**3


def make_request(request_id=0, model="Qwen-7B", inp=128, out=64, arrival=0.0):
    trace = TraceRequest(
        request_id=request_id,
        model=model,
        arrival=arrival,
        input_tokens=inp,
        output_tokens=out,
    )
    return Request(trace=trace, spec=get_model(model))


class TestBlockManager:
    def test_pool_sizing(self):
        spec = get_model("Qwen-7B")
        manager = BlockManager(pool_bytes=8 * GiB, model=spec)
        assert manager.total_blocks == 8 * GiB // kv_block_bytes(spec)

    def test_allocate_and_release(self):
        manager = BlockManager(8 * GiB, get_model("Qwen-7B"))
        manager.allocate(request_id=1, tokens=100)
        assert manager.holds(1)
        held = manager.total_blocks - manager.free_blocks
        assert held == manager.blocks_needed(100)
        manager.release(1)
        assert manager.free_blocks == manager.total_blocks

    def test_append_tokens_grows_at_block_boundary(self):
        manager = BlockManager(8 * GiB, get_model("Qwen-7B"), block_tokens=16)
        manager.allocate(1, tokens=16)
        before = manager.free_blocks
        manager.append_tokens(1, old_tokens=16, new_tokens=1)
        assert manager.free_blocks == before - 1
        manager.append_tokens(1, old_tokens=17, new_tokens=1)
        assert manager.free_blocks == before - 1  # same block

    def test_exhaustion(self):
        spec = get_model("Qwen-7B")
        manager = BlockManager(kv_block_bytes(spec) * 4, spec)
        manager.allocate(1, tokens=16 * 4)
        with pytest.raises(MemoryError):
            manager.allocate(2, tokens=1)

    def test_double_allocate_rejected(self):
        manager = BlockManager(8 * GiB, get_model("Qwen-7B"))
        manager.allocate(1, tokens=10)
        with pytest.raises(ValueError):
            manager.allocate(1, tokens=10)

    def test_unknown_release_rejected(self):
        manager = BlockManager(8 * GiB, get_model("Qwen-7B"))
        with pytest.raises(KeyError):
            manager.release(99)

    def test_tiny_pool_rejected(self):
        with pytest.raises(MemoryError):
            BlockManager(pool_bytes=1, model=get_model("Qwen-7B"))

    def test_utilization(self):
        spec = get_model("Qwen-7B")
        manager = BlockManager(kv_block_bytes(spec) * 10, spec)
        manager.allocate(1, tokens=16 * 5)
        assert manager.utilization == pytest.approx(0.5)


class TestContinuousBatcher:
    def make(self, pool_gib=8, **policy):
        manager = BlockManager(pool_gib * GiB, get_model("Qwen-7B"))
        return ContinuousBatcher(manager, BatchingPolicy(**policy))

    def test_fcfs_admission(self):
        batcher = self.make()
        for request_id in range(3):
            batcher.enqueue(make_request(request_id))
        admitted = batcher.admit_prefills()
        assert [r.request_id for r in admitted] == [0, 1, 2]

    def test_batch_size_cap(self):
        batcher = self.make(max_batch_size=2)
        for request_id in range(4):
            batcher.enqueue(make_request(request_id))
        assert len(batcher.admit_prefills()) == 2

    def test_token_budget_cap(self):
        batcher = self.make(max_prefill_tokens=1000)
        batcher.enqueue(make_request(0, inp=800))
        batcher.enqueue(make_request(1, inp=800))
        admitted = batcher.admit_prefills()
        assert len(admitted) == 1  # second exceeds the budget

    def test_first_request_always_admitted_even_if_large(self):
        batcher = self.make(max_prefill_tokens=100)
        batcher.enqueue(make_request(0, inp=5000))
        assert len(batcher.admit_prefills()) == 1

    def test_kv_pool_blocks_admission(self):
        spec = get_model("Qwen-7B")
        manager = BlockManager(kv_block_bytes(spec) * 8, spec)
        batcher = ContinuousBatcher(manager, BatchingPolicy())
        batcher.enqueue(make_request(0, inp=16 * 7))  # fills the pool (7 blocks + 1 for the next token)
        batcher.enqueue(make_request(1, inp=16))
        admitted = batcher.admit_prefills()
        assert [r.request_id for r in admitted] == [0]
        assert len(batcher.waiting) == 1

    def test_retire_releases_blocks(self):
        batcher = self.make()
        request = make_request(0, out=1)
        batcher.enqueue(request)
        admitted = batcher.admit_prefills()
        batcher.start_decoding(admitted)
        request.record_tokens([1.0])
        batcher.retire(request)
        assert not batcher.has_work
        assert batcher.block_manager.free_blocks == batcher.block_manager.total_blocks

    def test_grow_tables_preempts_newest_on_pressure(self):
        spec = get_model("Qwen-7B")
        manager = BlockManager(kv_block_bytes(spec) * 6, spec, block_tokens=16)
        batcher = ContinuousBatcher(manager, BatchingPolicy())
        old = make_request(0, inp=16, out=32)
        new = make_request(1, inp=16, out=32)
        for request in (old, new):
            batcher.enqueue(request)
        batcher.start_decoding(batcher.admit_prefills())
        # Fill remaining blocks so any growth must preempt.
        manager.allocate(99, tokens=16 * 2)
        old.record_tokens([1.0] * 16)  # next grow crosses a block boundary
        new.record_tokens([1.0] * 16)
        evicted = batcher.grow_tables([old, new])
        assert evicted  # someone was preempted
        assert evicted[0].phase is Phase.QUEUED
        assert batcher.waiting[0] is evicted[0]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)
