"""Tests for workload synthesis: arrivals, datasets, market skew, traces."""

import numpy as np
import pytest

from repro.models import market_mix
from repro.workload import (
    BurstConfig,
    PRODUCTION_SHAPE,
    bursty_arrivals,
    deployment_rates,
    market_rates,
    poisson_arrivals,
    rate_series,
    request_share_cdf,
    sharegpt,
    sharegpt_ix2,
    sharegpt_ox2,
    materialize_trace,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestPoisson:
    def test_mean_count(self, rng):
        arrivals = poisson_arrivals(rate=2.0, horizon=5000.0, rng=rng)
        assert len(arrivals) == pytest.approx(10000, rel=0.05)

    def test_sorted(self, rng):
        arrivals = poisson_arrivals(rate=1.0, horizon=100.0, rng=rng)
        assert np.all(np.diff(arrivals) >= 0)

    def test_within_horizon(self, rng):
        arrivals = poisson_arrivals(rate=1.0, horizon=50.0, rng=rng)
        assert arrivals.min() >= 0 and arrivals.max() < 50.0

    def test_zero_rate(self, rng):
        assert len(poisson_arrivals(0.0, 100.0, rng)) == 0

    def test_negative_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 100.0, rng)

    def test_exponential_gaps(self, rng):
        arrivals = poisson_arrivals(rate=1.0, horizon=20000.0, rng=rng)
        gaps = np.diff(arrivals)
        # Mean gap ~ 1/rate; CV ~ 1 for exponential.
        assert np.mean(gaps) == pytest.approx(1.0, rel=0.05)
        assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, rel=0.1)


class TestBursty:
    def test_rate_above_base(self, rng):
        base = 600.0
        arrivals = bursty_arrivals(base, horizon=600.0, rng=rng)
        achieved = len(arrivals) / 600.0
        assert achieved >= base * 0.95

    def test_bursts_exceed_reservation(self, rng):
        # Figure 1(b): windows during bursts exceed the base rate.
        base = 600.0
        config = BurstConfig(episode_rate=1 / 60.0, episode_duration=30.0, multiplier=1.5)
        arrivals = bursty_arrivals(base, horizon=600.0, rng=rng, burst=config)
        _, rates = rate_series(arrivals, horizon=600.0, window=10.0)
        assert rates.max() > base * 1.15

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            BurstConfig(multiplier=0.5)


class TestShareGpt:
    def test_lengths_positive_and_bounded(self, rng):
        inputs, outputs = sharegpt().sample_arrays(rng, 1000)
        assert ((4 <= inputs) & (inputs <= 8192)).all()
        assert ((4 <= outputs) & (outputs <= 2048)).all()

    def test_ix2_doubles_input(self, rng):
        base_in, base_out = sharegpt().mean_lengths(rng, 20000)
        rng2 = np.random.default_rng(7)
        ix2_in, ix2_out = sharegpt_ix2().mean_lengths(rng2, 20000)
        assert ix2_in == pytest.approx(2 * base_in, rel=0.1)
        assert ix2_out == pytest.approx(base_out, rel=0.1)

    def test_ox2_doubles_output(self, rng):
        base_in, base_out = sharegpt().mean_lengths(rng, 20000)
        rng2 = np.random.default_rng(7)
        ox2_in, ox2_out = sharegpt_ox2().mean_lengths(rng2, 20000)
        assert ox2_out > 1.5 * base_out  # clipping damps the tail
        assert ox2_in == pytest.approx(base_in, rel=0.1)

    def test_heavy_tail(self, rng):
        lengths, _ = sharegpt().sample_arrays(rng, 20000)
        assert np.mean(lengths) > np.median(lengths)  # right-skewed


class TestMarket:
    def test_figure_1a_statistics(self):
        rates = market_rates(PRODUCTION_SHAPE)
        assert len(rates) == 779
        tail_count = round(779 * 0.941)
        tail_share = rates[-tail_count:].sum() / rates.sum()
        assert tail_share == pytest.approx(0.0135, rel=0.01)

    def test_rates_sorted_descending(self):
        rates = market_rates()
        assert np.all(np.diff(rates[: round(779 * 0.059)]) <= 0)

    def test_cdf_monotone(self):
        model_fraction, request_fraction = request_share_cdf(market_rates())
        assert np.all(np.diff(request_fraction) >= 0)
        assert request_fraction[-1] == pytest.approx(1.0)
        assert model_fraction[-1] == pytest.approx(1.0)

    def test_deployment_rates_statistics(self, rng):
        rates = deployment_rates(47, rng)
        assert rates.min() >= 0.01
        assert rates.max() <= 1.13
        assert rates.mean() == pytest.approx(0.037, abs=0.01)


class TestTrace:
    def test_synthesis_counts(self, rng):
        models = market_mix(4)
        trace = materialize_trace(models, [0.5] * 4, sharegpt(), horizon=500.0, seed=1)
        assert trace.total_rate == pytest.approx(2.0, rel=0.15)

    def test_chronological_ids(self):
        models = market_mix(3)
        trace = materialize_trace(models, [0.2] * 3, sharegpt(), horizon=200.0, seed=2)
        arrivals = [r.arrival for r in trace.requests]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in trace.requests] == list(range(len(trace)))

    def test_per_model_counts_cover_all(self):
        models = market_mix(5)
        trace = materialize_trace(models, [0.1] * 5, sharegpt(), horizon=300.0, seed=3)
        counts = trace.per_model_counts()
        assert set(counts) == {spec.name for spec in models}
        assert sum(counts.values()) == len(trace)

    def test_rate_mismatch_rejected(self):
        with pytest.raises(ValueError):
            materialize_trace(market_mix(3), [0.1] * 2, sharegpt(), horizon=10.0)

    def test_spec_lookup(self):
        models = market_mix(2)
        trace = materialize_trace(models, [0.5, 0.5], sharegpt(), horizon=100.0)
        assert trace.spec_of(models[0].name) == models[0]
        with pytest.raises(KeyError):
            trace.spec_of("missing")

    def test_deterministic_given_seed(self):
        models = market_mix(2)
        t1 = materialize_trace(models, [0.3, 0.3], sharegpt(), horizon=100.0, seed=9)
        t2 = materialize_trace(models, [0.3, 0.3], sharegpt(), horizon=100.0, seed=9)
        assert t1.requests == t2.requests
