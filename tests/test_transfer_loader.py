"""Tests for model-weight loaders (§5.2, Figure 7 right)."""

import pytest

from repro.hardware import pcie_pair
from repro.memory import HostModelCache
from repro.models import get_model
from repro.sim import Environment
from repro.transfer import CudaStream, NaiveLoader, QuickLoader

GiB = 1024**3


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def link(env):
    return pcie_pair(env, bandwidth=32e9)


@pytest.fixture
def cache():
    return HostModelCache(capacity_bytes=640 * GiB)


class TestQuickLoader:
    def test_cached_load_hits_beta_bandwidth(self, env, link, cache):
        loader = QuickLoader(env, link, cache)
        model = get_model("Llama-13B")
        shard = model.weight_bytes // 2  # TP=2 shard, ~13 GB
        cache.insert(model.name, shard)

        def run():
            yield from loader.load(model.name, shard)
            return env.now

        elapsed = env.run(until=env.process(run()))
        # ~13 GB at 20 GB/s => ~0.65 s ("under one second", Figure 7).
        assert 0.5 < elapsed < 1.0

    def test_estimate_matches_simulation(self, env, link, cache):
        loader = QuickLoader(env, link, cache)
        nbytes = 14 * GiB
        cache.insert("m", nbytes)

        def run():
            yield from loader.load("m", nbytes)
            return env.now

        elapsed = env.run(until=env.process(run()))
        assert elapsed == pytest.approx(loader.load_time(nbytes), rel=0.05)

    def test_miss_fetches_from_remote(self, env, link, cache):
        loader = QuickLoader(env, link, cache, remote_bandwidth=1.5e9)
        nbytes = 15 * GiB

        def run():
            yield from loader.load("cold-model", nbytes)
            return env.now

        elapsed = env.run(until=env.process(run()))
        assert elapsed > nbytes / 1.5e9  # dominated by the registry fetch
        assert loader.remote_fetches == 1
        assert cache.contains("cold-model")

    def test_async_load_via_stream(self, env, link, cache):
        loader = QuickLoader(env, link, cache)
        nbytes = 10 * GiB
        cache.insert("m", nbytes)
        stream = CudaStream(env)

        def run():
            event = yield from loader.load("m", nbytes, stream=stream)
            return event

        event = env.run(until=env.process(run()))
        assert not event.query()  # copies still queued on the stream
        env.run(until=60.0)
        assert event.query()
        assert event.completed_at == pytest.approx(
            loader.load_time(nbytes), rel=0.1
        )

    def test_pin_released_after_load(self, env, link, cache):
        loader = QuickLoader(env, link, cache)
        cache.insert("m", 1 * GiB)

        def run():
            yield from loader.load("m", 1 * GiB)

        env.process(run())
        env.run(until=10.0)
        cache.pin("m")
        cache.unpin("m")  # would raise if load leaked a pin imbalance

    def test_invalid_beta_rejected(self, env, link, cache):
        with pytest.raises(ValueError):
            QuickLoader(env, link, cache, beta=0.0)


class TestNaiveLoader:
    def test_13b_shard_takes_4_6_seconds(self, env, link):
        # Figure 7 (right): LLaMA-13B at TP=2 via the naive path takes
        # ~4.6 s, i.e. 2.83 GB/s.
        loader = NaiveLoader(env, link)
        model = get_model("Llama-13B")
        shard = model.weight_bytes // 2

        def run():
            yield from loader.load(model.name, shard)
            return env.now

        elapsed = env.run(until=env.process(run()))
        assert 4.2 < elapsed < 5.0

    def test_quick_loader_beats_naive_by_factor(self, env, link, cache):
        quick = QuickLoader(env, link, cache)
        naive = NaiveLoader(env, link)
        nbytes = 13 * GiB
        assert naive.load_time(nbytes) / quick.load_time(nbytes) > 5.0
