"""Determinism under chaos: faults are part of the reproducible state.

Two properties anchor the chaos subsystem's value:

* **Same seed, same plan ⇒ byte-identical runs.**  A faulted serve is
  exactly as deterministic as a clean one — the injector delivers every
  disruption through ordinary simulation events, so the full observable
  surface (metric snapshot, kernel step count, per-request token times)
  reproduces bit-for-bit.
* **Different fault seeds ⇒ bounded, documented divergence.**  Fault
  seeds change *which* disruptions land, and outcomes shift (end time,
  requeues), but the envelope is pinned by the golden fixture
  ``tests/golden/chaos_divergence.json`` — regenerate it with
  ``python -m tests.test_chaos_determinism`` after an intentional
  serving-stack change.
"""

import json
from pathlib import Path

from repro.chaos import FaultPlan
from repro.core import AegaeonConfig, SystemSpec, build_system
from repro.models import market_mix
from repro.obs import ObsConfig
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

from .test_determinism import _canonical

GOLDEN = Path(__file__).parent / "golden" / "chaos_divergence.json"

#: The fixed workload every run in this module replays.
TRACE_SEED = 7
HORIZON = 40.0


def faulted_run(fault_seed=None):
    """One chaos serve; ``fault_seed=None`` runs fault-free."""
    env = Environment()
    plan = (
        FaultPlan.seeded(
            fault_seed, horizon=HORIZON, count=4,
            instances=("decode1", "decode2"),
        )
        if fault_seed is not None
        else None
    )
    system = build_system(
        SystemSpec(
            config=AegaeonConfig(
                prefill_instances=1,
                decode_instances=3,
                cluster="h800-quad",
                obs=ObsConfig.metrics_only(),
            ),
            faults=plan,
            invariants=True,
        ),
        env,
    )
    trace = materialize_trace(
        market_mix(4), [0.15] * 4, sharegpt(), horizon=HORIZON, seed=TRACE_SEED
    )
    result = system.serve(trace, warm=False)
    return env, system, result


def full_snapshot(fault_seed):
    """Everything observable about a run, for bitwise comparison."""
    env, system, result = faulted_run(fault_seed)
    return {
        "metrics": _canonical(result.metrics),
        "end_time": result.end_time,
        "sim_now": env.now,
        "steps": env.steps_executed,
        "requests": [
            (r.request_id, r.prefill_start, r.finish_time, tuple(r.token_times))
            for r in result.requests
        ],
        "violations": len(system.invariant_checker.violations),
    }


def divergence_summary(fault_seed):
    """The coarse outcome row pinned by the golden fixture."""
    env, system, result = faulted_run(fault_seed)
    registry = system.registry
    injector = system.fault_injector
    return {
        "plan_kinds": injector.plan.kind_counts(),
        "submitted": registry.submitted,
        "finished": registry.finished,
        "failed": registry.failed,
        "rejected": registry.rejected,
        "faults_delivered": len(injector.delivered),
        "faults_skipped": len(injector.skipped),
        "orphans_requeued": system.orphans_requeued,
        "end_time": round(result.end_time, 6),
        "invariant_checks": system.invariant_checker.checks_run,
    }


class TestSameSeedIdentical:
    def test_faulted_run_is_bitwise_repeatable(self):
        assert full_snapshot(2) == full_snapshot(2)

    def test_fault_free_attach_changes_nothing(self):
        # An injector with no faults must be a pure no-op on the run.
        clean = full_snapshot(None)
        env = Environment()
        system = build_system(
            SystemSpec(
                config=AegaeonConfig(
                    prefill_instances=1,
                    decode_instances=3,
                    cluster="h800-quad",
                    obs=ObsConfig.metrics_only(),
                ),
                faults=FaultPlan(),
                invariants=True,
            ),
            env,
        )
        trace = materialize_trace(
            market_mix(4), [0.15] * 4, sharegpt(), horizon=HORIZON, seed=TRACE_SEED
        )
        result = system.serve(trace, warm=False)
        # The injector registers its (zero) chaos counters; everything
        # else on the observable surface must be untouched.
        metrics = {
            key: value
            for key, value in _canonical(result.metrics).items()
            if not key.startswith("chaos/")
        }
        assert metrics == clean["metrics"]
        assert result.end_time == clean["end_time"]

    def test_faults_actually_perturb_the_run(self):
        # Fault seed 2 includes an instance kill: the faulted run must
        # diverge from the clean one — otherwise injection is a no-op.
        assert full_snapshot(2)["requests"] != full_snapshot(None)["requests"]


class TestCrossSeedDivergence:
    def test_outcomes_match_golden_fixture(self):
        fixture = json.loads(GOLDEN.read_text())
        for seed, expected in fixture["seeds"].items():
            assert divergence_summary(int(seed)) == expected, (
                f"fault seed {seed} diverged from the golden envelope; "
                "if the serving stack changed intentionally, regenerate "
                "with `python -m tests.test_chaos_determinism`"
            )

    def test_divergence_stays_bounded(self):
        fixture = json.loads(GOLDEN.read_text())
        floor = fixture["bounds"]["min_finished_fraction"]
        for seed in fixture["seeds"]:
            summary = divergence_summary(int(seed))
            assert summary["finished"] / summary["submitted"] >= floor
            assert (
                summary["finished"] + summary["failed"] + summary["rejected"]
                == summary["submitted"]
            )


def regenerate_golden():
    """Rewrite the golden fixture from the current serving stack."""
    fixture = {
        "description": (
            "Cross-fault-seed divergence envelope for the chaos "
            "determinism suite: one fixed market-mix trace (4 models, "
            "rate 0.15, horizon 40 s, trace seed 7) run under "
            "FaultPlan.seeded(seed, horizon=40, count=4, "
            "instances=('decode1','decode2')) for three fault seeds. "
            "The simulation is deterministic, so these exact values "
            "must reproduce on any machine; regenerate with "
            "`python -m tests.test_chaos_determinism` after an "
            "intentional serving-stack change."
        ),
        "bounds": {"min_finished_fraction": 0.9},
        "seeds": {str(seed): divergence_summary(seed) for seed in (1, 2, 3)},
    }
    GOLDEN.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")


if __name__ == "__main__":
    regenerate_golden()
    print(f"rewrote {GOLDEN}")
