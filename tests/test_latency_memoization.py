"""Memoized latency predictions must be bit-identical to uncached ones.

The perf overhaul constant-folds the Eq. 5-6 coefficients and puts a
true LRU (:func:`functools.lru_cache`) in front of ``prefill_time`` and
``decode_step_time``.  A cache hit returns the float computed on the
miss, so cached and uncached predictions agree to full precision — no
approx, exact ``==`` — across every GPU preset and TP degree.
"""

import pytest

from repro.hardware import A10, H20, H800
from repro.models import LatencyModel, get_model

GPUS = [H800, A10, H20]
GPU_IDS = ["H800", "A10", "H20"]
TPS = [1, 2, 4]

PREFILL_BATCHES = [
    [128],
    [512, 256],
    [1024, 32, 777],
    [2048, 2048, 2048, 2048],
    [1, 8192],
]
DECODE_POINTS = [
    (1, 128),
    (4, 4096),
    (16, 32768),
    (32, 1),
    (7, 12345),
]


@pytest.fixture
def spec():
    # 40 attention heads: shards evenly at every TP degree under test.
    return get_model("Llama-13B")


@pytest.mark.parametrize("gpu", GPUS, ids=GPU_IDS)
@pytest.mark.parametrize("tp", TPS)
class TestMemoizationExactness:
    def test_prefill_cached_equals_uncached(self, spec, gpu, tp):
        warm = LatencyModel(spec, gpu, tp=tp)
        first = [warm.prefill_time(batch) for batch in PREFILL_BATCHES]
        repeat = [warm.prefill_time(batch) for batch in PREFILL_BATCHES]
        # A fresh instance's first calls are all cache misses: the
        # uncached reference computation.
        fresh = LatencyModel(spec, gpu, tp=tp)
        uncached = [fresh.prefill_time(batch) for batch in PREFILL_BATCHES]
        assert first == repeat == uncached
        info = warm.cache_info()["prefill"]
        assert info.hits >= len(PREFILL_BATCHES)
        assert info.misses == len(PREFILL_BATCHES)

    def test_decode_cached_equals_uncached(self, spec, gpu, tp):
        warm = LatencyModel(spec, gpu, tp=tp)
        first = [warm.decode_step_time(b, c) for b, c in DECODE_POINTS]
        repeat = [warm.decode_step_time(b, c) for b, c in DECODE_POINTS]
        fresh = LatencyModel(spec, gpu, tp=tp)
        uncached = [fresh.decode_step_time(b, c) for b, c in DECODE_POINTS]
        assert first == repeat == uncached
        info = warm.cache_info()["decode"]
        assert info.hits >= len(DECODE_POINTS)
        assert info.misses == len(DECODE_POINTS)

    def test_prefill_single_matches_batch_of_one(self, spec, gpu, tp):
        model = LatencyModel(spec, gpu, tp=tp)
        for length in (1, 64, 1000, 8192):
            assert model.prefill_time_single(length) == model.prefill_time([length])

    def test_predictions_positive_and_finite(self, spec, gpu, tp):
        model = LatencyModel(spec, gpu, tp=tp)
        for batch in PREFILL_BATCHES:
            assert 0.0 < model.prefill_time(batch) < float("inf")
        for b, c in DECODE_POINTS:
            assert 0.0 < model.decode_step_time(b, c) < float("inf")


class TestMemoizationEdges:
    def test_empty_prefill_is_zero_and_not_cached(self, spec):
        model = LatencyModel(spec, H800)
        assert model.prefill_time([]) == 0.0
        assert model.cache_info()["prefill"].misses == 0

    def test_nonpositive_decode_batch_is_zero(self, spec):
        model = LatencyModel(spec, H800)
        assert model.decode_step_time(0, 100) == 0.0
        assert model.decode_step_time(-3, 100) == 0.0
        assert model.cache_info()["decode"].misses == 0

    def test_caches_are_per_instance(self, spec):
        a = LatencyModel(spec, H800)
        b = LatencyModel(spec, A10)
        a.prefill_time([100])
        assert b.cache_info()["prefill"].misses == 0
        # Different hardware gives a different prediction for the same key.
        assert a.prefill_time([100]) != b.prefill_time([100])

    def test_order_sensitivity_preserved(self, spec):
        """The cache keys the exact batch signature: permuted batches
        are distinct keys but identical predictions (Eq. 5 is a sum)."""
        model = LatencyModel(spec, H800)
        forward = model.prefill_time([100, 200, 300])
        backward = model.prefill_time([300, 200, 100])
        assert forward == backward
        assert model.cache_info()["prefill"].misses == 2
