"""Tests for KV-cache transfer with fine-grained synchronization (§5.3)."""

import pytest

from repro.hardware import pcie_pair
from repro.memory import SlabAllocator
from repro.models import get_model, kv_shape
from repro.sim import Environment
from repro.transfer import KvTransferManager, MoveList, RequestKv

MiB = 1024**2
GiB = 1024**3


@pytest.fixture
def env():
    return Environment()


def make_manager(env, fine_grained=True, bandwidth=32e9):
    link = pcie_pair(env, bandwidth=bandwidth)
    gpu_cache = SlabAllocator(region_bytes=8 * GiB, slab_bytes=64 * MiB)
    cpu_cache = SlabAllocator(region_bytes=32 * GiB, slab_bytes=64 * MiB)
    return KvTransferManager(
        env, link, gpu_cache, cpu_cache, fine_grained=fine_grained
    )


def make_kv(request_id=0, tokens=512, model="Qwen-7B"):
    return RequestKv(
        request_id=request_id,
        shape=kv_shape(get_model(model)),
        tokens=tokens,
    )


class TestAllocation:
    def test_alloc_gpu_sets_blocks(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=100)
        manager.alloc_gpu(kv)
        assert kv.location == "gpu"
        assert len(kv.gpu_blocks) == kv.block_count == 7  # ceil(100/16)
        assert kv.ready_on_gpu()

    def test_double_alloc_rejected(self, env):
        manager = make_manager(env)
        kv = make_kv()
        manager.alloc_gpu(kv)
        with pytest.raises(ValueError):
            manager.alloc_gpu(kv)

    def test_free_gpu_returns_blocks(self, env):
        manager = make_manager(env)
        kv = make_kv()
        held_before = manager.gpu_cache.held_bytes
        manager.alloc_gpu(kv)
        manager.free_gpu(kv)
        assert manager.gpu_cache.held_bytes == held_before
        assert kv.location == "none"

    def test_grow_appends_blocks(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=16)
        manager.alloc_gpu(kv)
        kv.grow(16, manager.gpu_cache)
        assert kv.tokens == 32
        assert len(kv.gpu_blocks) == 2


class TestSwapOut:
    def test_moves_to_cpu_and_frees_gpu_async(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=1024)
        manager.alloc_gpu(kv)
        gpu_held = manager.gpu_cache.held_bytes
        event = manager.swap_out(kv)
        assert kv.location == "cpu"
        assert not event.query()
        # GPU blocks are freed only once the copy completes.
        assert manager.gpu_cache.held_bytes == gpu_held
        env.run(until=5.0)
        assert event.query()
        assert manager.gpu_cache.held_bytes == 0
        assert len(kv.cpu_blocks) == kv.block_count

    def test_swap_out_requires_gpu_residency(self, env):
        manager = make_manager(env)
        with pytest.raises(ValueError):
            manager.swap_out(make_kv())

    def test_transfer_duration_matches_bytes(self, env):
        manager = make_manager(env, bandwidth=1e9)
        kv = make_kv(tokens=1024)  # 1024 * 512KB = 512 MiB
        manager.alloc_gpu(kv)
        event = manager.swap_out(kv)
        env.run(until=60.0)
        expected = kv.nbytes / 1e9
        assert event.completed_at == pytest.approx(expected, rel=0.01)


class TestSwapIn:
    def test_round_trip(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=256)
        manager.alloc_gpu(kv)
        manager.swap_out(kv)
        env.run(until=2.0)
        manager.swap_in(kv)
        assert kv.location == "gpu"
        assert not kv.ready_on_gpu()  # transfer still in flight
        env.run(until=4.0)
        assert kv.ready_on_gpu()

    def test_rule2_swap_in_waits_for_swap_out(self, env):
        # Swap out and immediately swap in: the h2d copy must not begin
        # before the d2h copy has finished (rule ❷).
        manager = make_manager(env, bandwidth=1e9)
        kv = make_kv(tokens=1024)  # 512 MiB => ~0.54s each way
        manager.alloc_gpu(kv)
        out_event = manager.swap_out(kv)
        in_event = manager.swap_in(kv)
        env.run(until=30.0)
        assert in_event.completed_at >= out_event.completed_at + kv.nbytes / 1e9 * 0.99

    def test_rule3_cpu_blocks_deferred_until_copy_done(self, env):
        manager = make_manager(env, bandwidth=1e9)
        kv = make_kv(tokens=1024)
        manager.alloc_gpu(kv)
        manager.swap_out(kv)
        env.run(until=2.0)
        cpu_held = manager.cpu_cache.held_bytes
        manager.swap_in(kv)
        # CPU blocks are on the move list, not yet freed.
        assert manager.cpu_cache.held_bytes == cpu_held
        assert manager.move_list.pending_blocks == kv.block_count
        env.run(until=10.0)
        # Daemon reclaimed them after the copy completed.
        assert manager.move_list.pending_blocks == 0
        assert manager.cpu_cache.held_bytes == 0

    def test_wait_ready_charges_data_overhead(self, env):
        manager = make_manager(env, bandwidth=1e9)
        kv = make_kv(tokens=1024)
        manager.alloc_gpu(kv)
        manager.swap_out(kv)
        env.run(until=2.0)
        manager.swap_in(kv)

        def consumer():
            yield from manager.wait_ready(kv)
            return env.now

        finished = env.run(until=env.process(consumer()))
        assert finished > 2.0
        assert manager.stats.data_wait > 0
        assert kv.request_id in manager.stats.per_request_sync


class TestMoveList:
    def test_reclaim_only_completed(self, env):
        manager = make_manager(env)
        cache = manager.cpu_cache
        move_list = MoveList()
        blocks = cache.alloc("s", 1 * MiB, 4)
        from repro.transfer import CudaEvent

        pending = CudaEvent(env)
        pending.recorded = True  # in flight, not complete
        move_list.add(blocks, pending)
        assert move_list.reclaim(cache) == 0
        pending._complete()
        assert move_list.reclaim(cache) == 4


class TestStatsAccounting:
    def test_counters(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=64)
        manager.alloc_gpu(kv)
        manager.swap_out(kv)
        env.run(until=1.0)
        manager.swap_in(kv)
        env.run(until=2.0)
        assert manager.stats.swap_out_count == 1
        assert manager.stats.swap_in_count == 1
        assert manager.stats.bytes_out == manager.stats.bytes_in == kv.nbytes
        assert manager.stats.control_overhead > 0


class TestMidFlightAbort:
    """Regression: aborting a request while its transfer is still in
    flight must leave the slab allocators' held/peak accounting exact —
    no leak, no double free, inflight sources fully drained."""

    def test_abort_during_swap_out(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=1024)
        manager.alloc_gpu(kv)
        gpu_peak = manager.gpu_cache.held_bytes
        manager.swap_out(kv)
        assert manager.inflight_sources  # copy still in flight
        manager.abort_request(kv)
        assert kv.location == "none" and not kv.gpu_blocks and not kv.cpu_blocks
        env.run(until=10.0)
        assert manager.gpu_cache.held_bytes == 0
        assert manager.cpu_cache.held_bytes == 0
        assert manager.gpu_cache.blocks_allocated == manager.gpu_cache.blocks_freed
        assert manager.cpu_cache.blocks_allocated == manager.cpu_cache.blocks_freed
        assert not manager.inflight_sources
        assert manager.move_list.pending_blocks == 0
        assert manager.gpu_cache.peak_held_bytes == gpu_peak

    def test_abort_during_swap_in(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=1024)
        manager.alloc_gpu(kv)
        manager.swap_out(kv)
        env.run(until=5.0)  # let the swap-out finish
        manager.swap_in(kv)
        manager.abort_request(kv)
        env.run(until=10.0)
        assert manager.gpu_cache.held_bytes == 0
        assert manager.cpu_cache.held_bytes == 0
        assert manager.gpu_cache.blocks_allocated == manager.gpu_cache.blocks_freed
        assert manager.cpu_cache.blocks_allocated == manager.cpu_cache.blocks_freed
        assert manager.move_list.pending_blocks == 0

    def test_abort_after_settled_swap_out_frees_inline(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=256)
        manager.alloc_gpu(kv)
        manager.swap_out(kv)
        env.run(until=5.0)
        held = manager.cpu_cache.held_bytes
        assert held > 0
        manager.abort_request(kv)
        # Transfer already completed: blocks free immediately, no
        # move-list detour needed.
        assert manager.cpu_cache.held_bytes == 0
        assert manager.move_list.pending_blocks == 0

    def test_abort_is_not_double_freeable(self, env):
        manager = make_manager(env)
        kv = make_kv(tokens=256)
        manager.alloc_gpu(kv)
        manager.abort_request(kv)
        # A second abort of the same (now empty) KV is a no-op.
        manager.abort_request(kv)
        assert manager.gpu_cache.held_bytes == 0
