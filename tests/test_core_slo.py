"""Tests for SLO definitions and per-token deadline accounting (§2.1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import DEFAULT_SLO, SloSpec, token_deadlines, tokens_met

from .strategies import arrivals, emission_rates, token_counts


class TestSloSpec:
    def test_paper_defaults(self):
        assert DEFAULT_SLO.ttft == 10.0
        assert DEFAULT_SLO.tbt == 0.100

    def test_scale_uniform(self):
        strict = DEFAULT_SLO.scale(0.2)
        assert strict.ttft == pytest.approx(2.0)
        assert strict.tbt == pytest.approx(0.020)

    def test_scale_tbt_only(self):
        loose = DEFAULT_SLO.scale_tbt(2.0)
        assert loose.ttft == 10.0
        assert loose.tbt == pytest.approx(0.2)

    def test_scale_ttft_only(self):
        strict = DEFAULT_SLO.scale_ttft(0.5)
        assert strict.ttft == 5.0
        assert strict.tbt == 0.1

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            SloSpec(ttft=0.0)
        with pytest.raises(ValueError):
            SloSpec(tbt=-1.0)


class TestDeadlines:
    def test_first_token_gets_ttft(self):
        deadlines = token_deadlines(arrival=5.0, token_count=3, slo=DEFAULT_SLO)
        assert deadlines[0] == pytest.approx(15.0)

    def test_subsequent_spacing_is_tbt(self):
        deadlines = token_deadlines(0.0, 10, DEFAULT_SLO)
        assert np.allclose(np.diff(deadlines), 0.1)

    def test_zero_tokens(self):
        assert token_deadlines(0.0, 0, DEFAULT_SLO).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            token_deadlines(0.0, -1, DEFAULT_SLO)


class TestTokensMet:
    def test_all_on_time(self):
        times = [5.0, 5.05, 5.1]
        met, total = tokens_met(0.0, times, DEFAULT_SLO)
        assert (met, total) == (3, 3)

    def test_buffered_burst_then_stall(self):
        # Figure 3's point: tokens generated early buy slack for a stall.
        slo = SloSpec(ttft=1.0, tbt=0.1)
        # 10 tokens at t=1.0 (all early), then a 0.9 s stall before 11th.
        times = [1.0] * 10 + [1.9]
        met, total = tokens_met(0.0, times, slo)
        assert met == 11  # deadline of token 11 is 1.0 + 10*0.1 = 2.0

    def test_late_first_token(self):
        slo = SloSpec(ttft=1.0, tbt=0.1)
        met, _ = tokens_met(0.0, [1.5, 1.55], slo)
        assert met == 0  # token 2 deadline 1.1 also missed

    def test_empty(self):
        assert tokens_met(0.0, [], DEFAULT_SLO) == (0, 0)

    @given(arrival=arrivals, count=token_counts, rate=emission_rates)
    def test_generation_faster_than_tbt_always_meets(self, arrival, count, rate):
        # Tokens emitted faster than the TBT, starting within TTFT,
        # can never miss a deadline.
        slo = SloSpec(ttft=1.0, tbt=0.1)
        times = [arrival + 0.5 + i * rate for i in range(count)]
        met, total = tokens_met(arrival, times, slo)
        assert met == total == count

    @given(count=st.integers(min_value=1, max_value=100))
    def test_met_never_exceeds_total(self, count):
        rng = np.random.default_rng(count)
        times = np.cumsum(rng.uniform(0, 0.5, size=count))
        met, total = tokens_met(0.0, times, DEFAULT_SLO)
        assert 0 <= met <= total == count
