"""API-surface sanity: exports resolve and public items are documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.hardware",
    "repro.models",
    "repro.memory",
    "repro.transfer",
    "repro.engine",
    "repro.core",
    "repro.baselines",
    "repro.workload",
    "repro.analysis",
    "repro.obs",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"


@pytest.mark.parametrize("package", PACKAGES[1:])
def test_public_items_documented(package):
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not inspect.getdoc(item):
                undocumented.append(f"{package}.{name}")
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not inspect.getdoc(method):
                    undocumented.append(f"{package}.{name}.{method_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_no_export_name_collisions_across_core_packages():
    # A symbol exported by two packages must be the same object
    # (re-export), never two different things under one name.
    seen: dict[str, tuple[str, object]] = {}
    for package in PACKAGES[1:]:
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if name in seen and seen[name][1] is not item:
                other_package = seen[name][0]
                raise AssertionError(
                    f"{name} exported differently by {package} and {other_package}"
                )
            seen[name] = (package, item)
