"""Kernel freelist, lazy-cancellation, and failure-path semantics.

The performance overhaul recycles :class:`Event`/:class:`Timeout`/
:class:`Process` objects through per-environment freelists and drops
cancelled timeouts lazily at heap pop.  These tests pin down the safety
contract: recycling must never corrupt an object something still holds,
an unobserved failure must survive to ``env.run()`` with its exception
intact, and none of it may perturb simulation results.
"""

import pytest

from repro.sim import Environment, Event, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestUnobservedFailure:
    def test_unobserved_failure_surfaces_at_run(self, env):
        """An event failed with no observer must raise from env.run(),
        not be silently recycled into the freelist."""

        def proc(env):
            event = env.event()
            event.fail(RuntimeError("boom"))
            # Nobody yields on `event`; drop the reference entirely so
            # the run loop is the sole holder when it dispatches it.
            del event
            yield env.timeout(1.0)

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_observed_failure_is_defused_and_raises_in_process(self, env):
        caught = []

        def proc(env):
            event = env.event()
            event.fail(ValueError("expected"))
            try:
                yield event
            except ValueError as exc:
                caught.append(exc)
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert len(caught) == 1
        assert str(caught[0]) == "expected"

    def test_recycled_failed_event_does_not_pin_exception(self, env):
        """A defused failure's event may be recycled, but a fresh event
        from the pool must come back clean (no stale exception/value)."""

        def proc(env):
            event = env.event()
            event.fail(ValueError("transient"))
            try:
                yield event
            except ValueError:
                pass
            del event
            yield env.timeout(0.1)  # give the loop a chance to recycle
            fresh = env.event()
            assert fresh.callbacks == []
            assert not fresh.triggered
            assert not fresh.processed
            fresh.succeed("clean")
            value = yield fresh
            assert value == "clean"

        env.process(proc(env))
        env.run()


class TestFreelistSafety:
    def test_externally_held_events_keep_their_values(self, env):
        """Events a process keeps a handle on are never reused out from
        under it: their values survive long after processing."""
        held = []

        def proc(env):
            for i in range(50):
                event = env.event()
                event.succeed(i)
                held.append(event)
                yield env.timeout(0.1)

        env.process(proc(env))
        env.run()
        assert [event.value for event in held] == list(range(50))

    def test_recycling_happens_and_pool_is_bounded(self, env):
        def proc(env):
            for _ in range(500):
                yield env.timeout(0.01)

        env.process(proc(env))
        env.run()
        assert env.events_recycled > 0
        assert len(env._timeout_pool) <= 4096

    def test_ping_pong_deterministic_with_recycling(self):
        """Heavy freelist churn must not change event ordering."""

        def run():
            env = Environment()
            log = []

            def ping(env):
                for i in range(200):
                    yield env.timeout(0.5)
                    log.append(("ping", i, env.now))

            def pong(env):
                for i in range(200):
                    yield env.timeout(0.7)
                    log.append(("pong", i, env.now))

            env.process(ping(env))
            env.process(pong(env))
            env.run()
            return log, env.events_recycled

        first_log, first_recycled = run()
        second_log, second_recycled = run()
        assert first_log == second_log
        assert first_recycled == second_recycled
        assert first_recycled > 0


class TestLazyCancellation:
    def test_cancelled_timeout_never_fires(self, env):
        fired = []

        def proc(env):
            doomed = env.timeout(5.0, value="doomed")
            doomed.callbacks.append(lambda ev: fired.append(ev))
            assert doomed.cancel()
            yield env.timeout(10.0)

        env.process(proc(env))
        env.run()
        assert fired == []
        assert env.now == 10.0
        assert env.events_cancelled == 1

    def test_cancelled_timeout_does_not_count_as_step(self, env):
        def proc(env):
            for _ in range(10):
                doomed = env.timeout(100.0)
                doomed.cancel()
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        assert env.events_cancelled == 10
        # Only real dispatches count: the process init + 10 sleeps.
        assert env.steps_executed < 10 + 10 + 5

    def test_interrupt_cancels_orphaned_timeout(self, env):
        """Interrupting a process sleeping on a timeout must lazily
        cancel that timeout instead of leaving it to fire into nothing."""

        def sleeper(env):
            try:
                yield env.timeout(1000.0)
            except Interrupt:
                yield env.timeout(1.0)

        def waker(env, victim):
            yield env.timeout(2.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(waker(env, victim))
        steps_before = None

        env.run(until=3.5)
        # The interrupted sleep resumed immediately and finished at t=3.
        assert env.now == pytest.approx(3.5)
        steps_before = env.steps_executed
        env.run()
        # Draining the queue pops the 1000 s orphan: the clock advances
        # (parity with the pre-freelist kernel, where the orphan fired
        # into an empty callback list) but no step is dispatched for it.
        assert env.events_cancelled >= 1
        assert env.steps_executed == steps_before


class TestPooledEventReuse:
    def test_pool_roundtrip_resets_state(self, env):
        """Force a pool round trip and verify every reinitialized field."""

        def proc(env):
            first = env.event()
            first.succeed("payload")
            yield first
            del first
            yield env.timeout(0.1)
            second = env.event()
            assert not second.triggered
            assert second.callbacks == []
            assert not second.processed
            yield env.timeout(0.1)

        env.process(proc(env))
        env.run()

    def test_direct_event_construction_still_works(self, env):
        """Event(env) bypasses the pool and must behave identically."""
        event = Event(env)
        event.succeed(42)
        result = []

        def proc(env):
            result.append((yield event))

        env.process(proc(env))
        env.run()
        assert result == [42]
