"""Stress tests: long switch sequences, buffer stability, KV churn."""

import numpy as np
import pytest

from repro.engine import AegaeonEngine, EngineConfig
from repro.hardware import H800, Node
from repro.memory import HostModelCache, SlabAllocator
from repro.models import get_model, kv_shape, models_in_range
from repro.sim import Environment
from repro.transfer import RequestKv

GiB = 1024**3
MiB = 1024**2

POOL = [spec.name for spec in models_in_range(6.0, 14.5)]


def make_engine(env, config=EngineConfig()):
    node = Node(env, H800, gpu_count=1)
    cache = HostModelCache(640 * GiB)
    for name in POOL:
        cache.insert(name, get_model(name).weight_bytes)
    cpu_kv = SlabAllocator(320 * GiB, 256 * MiB)
    return AegaeonEngine(
        env, node, node.gpus, cache, cpu_kv, config=config, pre_initialized=True
    )


class TestSwitchMarathon:
    def test_hundred_switches_no_buffer_creep(self):
        # The bump buffer must return to a one-model footprint after
        # every switch, forever — no pointer creep, no leaked extents.
        env = Environment()
        engine = make_engine(env, EngineConfig(prefetch=False))

        def marathon():
            for index in range(100):
                spec = get_model(POOL[index % len(POOL)])
                yield from engine.scale_to(spec)

        env.run(until=env.process(marathon()))
        assert len(engine.weights.live_allocations) == 1
        current = engine.current_model
        assert engine.weights.live_bytes == engine.shard_bytes(current)
        assert len(engine.scale_history) == 100

    def test_prefetch_chain_stays_consistent(self):
        # Alternate A/B with prefetch: every switch should be able to
        # use (or wait for) the prefetched weights; the buffer holds at
        # most two extents at any time.
        env = Environment()
        engine = make_engine(env)
        a, b = get_model("Qwen-7B"), get_model("Yi-6B")

        def chain():
            yield from engine.scale_to(a)
            for index in range(30):
                target = b if index % 2 == 0 else a
                engine.prefetch(target)
                yield from engine.decode_for(
                    engine.current_model, 2.0
                )
                yield from engine.scale_to(target)
                assert len(engine.weights.live_allocations) <= 2

        env.run(until=env.process(chain()))
        switches = [r for r in engine.scale_history if r.model_from is not None]
        hits = [r for r in switches if r.prefetch_hit]
        # With 2 s of decode per turn, nearly every switch is
        # prefetch-backed.
        assert len(hits) >= 0.8 * len(switches)
        latencies = np.array([r.total for r in switches])
        assert np.median(latencies) < 0.3

    def test_switch_history_timeline_is_consistent(self):
        env = Environment()
        engine = make_engine(env, EngineConfig(prefetch=False))

        def run():
            for index in range(20):
                yield from engine.scale_to(get_model(POOL[index % 3]))

        env.run(until=env.process(run()))
        previous_end = 0.0
        for record in engine.scale_history:
            assert record.started >= previous_end - 1e-9
            assert record.ended >= record.started
            assert record.total == pytest.approx(
                sum(record.stages.values()), abs=0.02
            ) or record.prefetch_hit
            previous_end = record.ended


class TestKvChurn:
    def test_thousand_swap_cycles_no_leak(self):
        env = Environment()
        engine = make_engine(env, EngineConfig(prefetch=False))
        spec = get_model("Qwen-7B")
        shape = kv_shape(spec)

        def churn():
            yield from engine.scale_to(spec)
            for cycle in range(200):
                kvs = []
                for offset in range(5):
                    kv = RequestKv(
                        request_id=cycle * 10 + offset, shape=shape, tokens=128
                    )
                    engine.kv.alloc_gpu(kv)
                    kvs.append(kv)
                for kv in kvs:
                    engine.kv.swap_out(kv)
                for kv in kvs:
                    # Wait for the offload, then bring it back.
                    yield kv.last_transfer.wait()
                    engine.kv.swap_in(kv)
                for kv in kvs:
                    yield kv.last_transfer.wait()
                    engine.kv.free_gpu(kv)
            # Let the reclaim daemon mop up move-list remnants.
            yield env.timeout(1.0)

        env.run(until=env.process(churn()))
        assert engine.gpu_kv_cache.held_bytes == 0
        assert engine.kv.cpu_cache.held_bytes == 0
        assert engine.kv.move_list.pending_blocks == 0
        assert engine.kv.stats.swap_out_count == 1000
        assert engine.kv.stats.swap_in_count == 1000

    def test_interleaved_shapes_share_cpu_cache(self):
        env = Environment()
        engine_a = make_engine(env, EngineConfig(prefetch=False))
        shapes = [kv_shape(get_model(name)) for name in POOL[:4]]

        def churn():
            spec = get_model(POOL[0])
            yield from engine_a.scale_to(spec)
            live = []
            for index in range(120):
                shape = shapes[index % len(shapes)]
                kv = RequestKv(request_id=index, shape=shape, tokens=64)
                kv.cpu_blocks = engine_a.kv.cpu_cache.alloc(
                    shape, kv.block_bytes, kv.block_count
                )
                kv.location = "cpu"
                live.append(kv)
                if len(live) > 30:
                    victim = live.pop(0)
                    engine_a.kv.cpu_cache.free(victim.cpu_blocks)
            for kv in live:
                engine_a.kv.cpu_cache.free(kv.cpu_blocks)

        env.run(until=env.process(churn()))
        assert engine_a.kv.cpu_cache.held_bytes == 0
        assert engine_a.kv.cpu_cache.overall_fragmentation() == 0.0
