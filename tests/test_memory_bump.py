"""Tests for the self-managed VRAM bump allocator (§5.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import BumpAllocator

from .strategies import alloc_sizes

KiB = 1024


class TestBumpBasics:
    def test_alloc_advances_pointer(self):
        allocator = BumpAllocator(capacity=1024, alignment=1)
        a = allocator.alloc(100, tag="weights")
        b = allocator.alloc(50)
        assert a.offset == 0
        assert b.offset == 100
        assert allocator.used == 150

    def test_alignment(self):
        allocator = BumpAllocator(capacity=4096, alignment=256)
        allocator.alloc(100)
        b = allocator.alloc(10)
        assert b.offset == 256

    def test_exhaustion_raises(self):
        allocator = BumpAllocator(capacity=128, alignment=1)
        allocator.alloc(100)
        with pytest.raises(MemoryError):
            allocator.alloc(100)

    def test_zero_alloc_rejected(self):
        allocator = BumpAllocator(capacity=128)
        with pytest.raises(ValueError):
            allocator.alloc(0)

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            BumpAllocator(capacity=128, alignment=3)


class TestReset:
    def test_reset_to_zero_frees_everything(self):
        allocator = BumpAllocator(capacity=1024, alignment=1)
        a = allocator.alloc(100)
        b = allocator.alloc(100)
        dropped = allocator.reset()
        assert {d.offset for d in dropped} == {a.offset, b.offset}
        assert allocator.used == 0
        assert a.freed and b.freed

    def test_reset_to_mark_keeps_below(self):
        allocator = BumpAllocator(capacity=1024, alignment=1)
        keep = allocator.alloc(100, tag="keep")
        mark = allocator.mark()
        allocator.alloc(100, tag="drop")
        dropped = allocator.reset(mark)
        assert [d.tag for d in dropped] == ["drop"]
        assert not keep.freed
        assert allocator.used == mark

    def test_alloc_after_reset_reuses_space(self):
        allocator = BumpAllocator(capacity=256, alignment=1)
        allocator.alloc(200)
        allocator.reset()
        again = allocator.alloc(200)
        assert again.offset == 0

    def test_out_of_range_mark_rejected(self):
        allocator = BumpAllocator(capacity=256)
        with pytest.raises(ValueError):
            allocator.reset(mark=512)


class TestCompact:
    def test_prefetch_promotion(self):
        # Figure 9, step 3.b: running model at the front, prefetched model
        # behind it; after dropping the front model, compact the prefetch.
        allocator = BumpAllocator(capacity=64 * KiB, alignment=1)
        running = allocator.alloc(10 * KiB, tag="running")
        mark = allocator.mark()
        prefetched = allocator.alloc(20 * KiB, tag="prefetched")
        # Scale-down: drop the running model only.
        allocator._live.remove(running)
        allocator.compact_to_front(prefetched)
        assert prefetched.offset == 0
        assert allocator.used == 20 * KiB
        assert mark == 10 * KiB  # old mark is now stale, as expected

    def test_compact_with_other_live_allocations_rejected(self):
        allocator = BumpAllocator(capacity=1024, alignment=1)
        allocator.alloc(100)
        b = allocator.alloc(100)
        with pytest.raises(ValueError):
            allocator.compact_to_front(b)

    def test_compact_freed_allocation_rejected(self):
        allocator = BumpAllocator(capacity=1024, alignment=1)
        a = allocator.alloc(100)
        allocator.reset()
        with pytest.raises(ValueError):
            allocator.compact_to_front(a)


class TestBumpProperties:
    @given(sizes=st.lists(alloc_sizes, max_size=30))
    def test_no_overlap_and_in_bounds(self, sizes):
        allocator = BumpAllocator(capacity=100_000, alignment=64)
        allocations = []
        for size in sizes:
            try:
                allocations.append(allocator.alloc(size))
            except MemoryError:
                break
        intervals = sorted((a.offset, a.end) for a in allocations)
        for (start1, end1), (start2, _) in zip(intervals, intervals[1:]):
            assert end1 <= start2
        for start, end in intervals:
            assert 0 <= start and end <= allocator.capacity
            assert start % 64 == 0

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=20),
        reset_at=st.integers(min_value=0, max_value=19),
    )
    def test_live_bytes_consistent_after_reset(self, sizes, reset_at):
        allocator = BumpAllocator(capacity=1_000_000, alignment=1)
        marks = []
        for size in sizes:
            marks.append(allocator.mark())
            allocator.alloc(size)
        index = min(reset_at, len(marks) - 1)
        allocator.reset(marks[index])
        assert allocator.live_bytes == sum(sizes[:index])
        assert allocator.used == sum(sizes[:index])
