"""Unit tests for the token-level schedulers (Algorithms 1 and 2)."""

from collections import deque

import pytest

from repro.core import (
    DEFAULT_SLO,
    DecodeBatch,
    BatchedDecodeScheduler,
    GroupedPrefillScheduler,
    MAX_GPSIZE,
    PrefillGroup,
    QMAX,
    SloSpec,
    compute_quotas,
    estimate_round_attainment,
    reorder_work_list,
)
from repro.core.decode_sched import DecodeInstanceLike
from repro.engine.request import Request
from repro.models import get_model
from repro.workload.trace import TraceRequest


def make_request(request_id=0, model="Qwen-7B", arrival=0.0, inp=128, out=64):
    spec = get_model(model.split("#")[0])
    trace = TraceRequest(
        request_id=request_id,
        model=model,
        arrival=arrival,
        input_tokens=inp,
        output_tokens=out,
    )
    return Request(trace=trace, spec=spec)


class FakePrefillInstance:
    """Deterministic stand-in for PrefillInstanceLike."""

    def __init__(self, load=0.0, current=None):
        self.groups = []
        self._load = load
        self._current = current
        self.kicks = 0

    def estimate_group_time(self, group, previous):
        # 1 second per queued request plus 1 second per model switch.
        switch = 0.0 if previous is not None and previous.name == group.spec.name else 1.0
        return len(group.requests) * 1.0 + switch + self._load

    def current_model(self):
        return self._current

    def kick(self):
        self.kicks += 1


class TestGroupedPrefillScheduler:
    def test_joins_existing_group(self):
        instances = [FakePrefillInstance(), FakePrefillInstance()]
        scheduler = GroupedPrefillScheduler(instances)
        first = scheduler.dispatch(make_request(0, "Qwen-7B"))
        second = scheduler.dispatch(make_request(1, "Qwen-7B"))
        assert first is second
        assert len(first.groups) == 1
        assert first.groups[0].accumulated == 2

    def test_new_model_opens_group_on_least_loaded(self):
        light = FakePrefillInstance(load=0.0)
        heavy = FakePrefillInstance(load=10.0)
        heavy.groups.append(_group("Qwen-7B", 3))
        scheduler = GroupedPrefillScheduler([heavy, light])
        chosen = scheduler.dispatch(make_request(0, "Yi-6B"))
        assert chosen is light

    def test_group_size_cap_spills_to_new_group(self):
        instance = FakePrefillInstance()
        scheduler = GroupedPrefillScheduler([instance], max_group_size=2)
        for request_id in range(3):
            scheduler.dispatch(make_request(request_id, "Qwen-7B"))
        assert len(instance.groups) == 2
        assert instance.groups[0].accumulated == 2
        assert instance.groups[1].accumulated == 1

    def test_accumulated_counts_do_not_decrease(self):
        # The Algorithm 1 line-6 check uses accumulative size, so a
        # group that executed requests still counts them.
        instance = FakePrefillInstance()
        scheduler = GroupedPrefillScheduler([instance], max_group_size=2)
        scheduler.dispatch(make_request(0, "Qwen-7B"))
        scheduler.dispatch(make_request(1, "Qwen-7B"))
        instance.groups[0].requests.popleft()  # simulated execution
        scheduler.dispatch(make_request(2, "Qwen-7B"))
        assert len(instance.groups) == 2  # did not rejoin the old group

    def test_kick_called_on_dispatch(self):
        instance = FakePrefillInstance()
        scheduler = GroupedPrefillScheduler([instance])
        scheduler.dispatch(make_request(0))
        assert instance.kicks == 1

    def test_default_max_group_size_is_paper_value(self):
        assert MAX_GPSIZE == 8

    def test_load_includes_switches(self):
        instance = FakePrefillInstance(current=get_model("Qwen-7B"))
        instance.groups = [_group("Qwen-7B", 1), _group("Yi-6B", 1)]
        scheduler = GroupedPrefillScheduler([instance])
        # Group 1 same model (no switch) + group 2 (switch): 1 + 1 + 1.
        assert scheduler.estimate_load(instance) == pytest.approx(3.0)

    def test_no_instances_rejected(self):
        with pytest.raises(ValueError):
            GroupedPrefillScheduler([])


def _group(model, count):
    group = PrefillGroup(spec=get_model(model))
    for index in range(count):
        group.add(make_request(1000 + index, model))
    return group


class FakeDecodeInstance:
    def __init__(self, capacity=8):
        self.work_list = []
        self._capacity = capacity
        self.kicks = 0

    def batch_capacity(self, spec):
        return self._capacity

    def kick(self):
        self.kicks += 1


class TestBatchedDecodeScheduler:
    def test_joins_same_model_batch(self):
        instance = FakeDecodeInstance()
        scheduler = BatchedDecodeScheduler([instance])
        scheduler.dispatch(make_request(0, "Qwen-7B"))
        scheduler.dispatch(make_request(1, "Qwen-7B"))
        assert len(instance.work_list) == 1
        assert instance.work_list[0].size == 2

    def test_full_batch_spills(self):
        instance = FakeDecodeInstance(capacity=1)
        scheduler = BatchedDecodeScheduler([instance])
        scheduler.dispatch(make_request(0, "Qwen-7B"))
        scheduler.dispatch(make_request(1, "Qwen-7B"))
        assert len(instance.work_list) == 2

    def test_least_loaded_by_work_list_size(self):
        busy = FakeDecodeInstance()
        busy.work_list = [DecodeBatch(spec=get_model("Yi-6B"))] * 3
        idle = FakeDecodeInstance()
        scheduler = BatchedDecodeScheduler([busy, idle])
        scheduler.dispatch(make_request(0, "Qwen-7B"))
        assert len(idle.work_list) == 1

    def test_no_instances_rejected(self):
        with pytest.raises(ValueError):
            BatchedDecodeScheduler([])


class TestReorderWorkList:
    def test_groups_same_model_adjacent(self):
        a1 = DecodeBatch(spec=get_model("Qwen-7B"))
        b = DecodeBatch(spec=get_model("Yi-6B"))
        a2 = DecodeBatch(spec=get_model("Qwen-7B"))
        ordered = reorder_work_list([a1, b, a2])
        assert ordered == [a1, a2, b]

    def test_preserves_first_seen_order(self):
        batches = [
            DecodeBatch(spec=get_model(name))
            for name in ["Yi-6B", "Qwen-7B", "Yi-6B", "Llama-13B"]
        ]
        ordered = reorder_work_list(batches)
        assert [b.spec.name for b in ordered] == [
            "Yi-6B",
            "Yi-6B",
            "Qwen-7B",
            "Llama-13B",
        ]

    def test_empty(self):
        assert reorder_work_list([]) == []


class TestQuotaEquations:
    def _batches(self, count):
        return [DecodeBatch(spec=get_model("Qwen-7B")) for _ in range(count)]

    def test_paper_worked_example(self):
        # §4.3: three batches, d=0.1, t=0.025, c=3, QMAX=3 -> q_i = 3.
        slo = SloSpec(ttft=10.0, tbt=0.1)
        quotas = compute_quotas(
            self._batches(3), [0.025] * 3, total_switch_cost=3.0, slo=slo, qmax=3.0
        )
        assert quotas == pytest.approx([3.0, 3.0, 3.0])

    def test_paper_example_attainment_is_one(self):
        slo = SloSpec(ttft=10.0, tbt=0.1)
        attainment = estimate_round_attainment([0.025] * 3, 3.0, slo, qmax=3.0)
        assert attainment == pytest.approx(1.0)

    def test_zero_switch_cost_uses_qmax(self):
        quotas = compute_quotas(
            self._batches(2), [0.02, 0.02], total_switch_cost=0.0, slo=DEFAULT_SLO
        )
        assert quotas == [QMAX, QMAX]

    def test_single_batch_uses_qmax(self):
        quotas = compute_quotas(
            self._batches(1), [0.02], total_switch_cost=5.0, slo=DEFAULT_SLO
        )
        assert quotas == [QMAX]

    def test_quotas_positive_and_capped(self):
        for batch_count in [2, 4, 8]:
            quotas = compute_quotas(
                self._batches(batch_count),
                [0.03] * batch_count,
                total_switch_cost=batch_count * 0.8,
                slo=DEFAULT_SLO,
            )
            assert all(0 < q <= QMAX for q in quotas)

    def test_slower_batches_get_larger_quota(self):
        # n_i = d/t_i: slower steps (smaller n) earn more time per turn.
        quotas = compute_quotas(
            self._batches(2), [0.05, 0.01], total_switch_cost=2.0, slo=DEFAULT_SLO
        )
        assert quotas[0] > quotas[1]

    def test_alpha_floor_bounds_attainment_estimate(self):
        # With tiny switch cost the estimate caps at 1.0 (alpha >= 0.5).
        attainment = estimate_round_attainment([0.01] * 2, 0.01, DEFAULT_SLO)
        assert attainment == 1.0

    def test_overloaded_round_estimate_below_one(self):
        # Many slow batches with heavy switching: attainment < 1.
        slo = SloSpec(ttft=10.0, tbt=0.05)
        attainment = estimate_round_attainment([0.03] * 8, 8 * 1.5, slo)
        assert attainment < 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compute_quotas(self._batches(2), [0.1], 1.0, DEFAULT_SLO)


class TestDecodeBatch:
    def test_context_tokens_sums_members(self):
        batch = DecodeBatch(spec=get_model("Qwen-7B"))
        batch.requests = [make_request(0, inp=100, out=50), make_request(1, inp=200, out=50)]
        batch.requests[0].record_tokens([1.0])  # one generated token
        assert batch.context_tokens == 101 + 200

    def test_has_room(self):
        batch = DecodeBatch(spec=get_model("Qwen-7B"), max_size=1)
        assert batch.has_room
        batch.requests.append(make_request(0))
        assert not batch.has_room
