"""Shared hypothesis strategies for the repro test suite.

One place for the domain vocabulary the property tests keep re-deriving:
model/GPU names from the paper's catalog, realistic prompt lengths and
batch shapes, the decode-quota parameter space (Eqs. 2-3), allocator
op-sequences, and seeded chaos fault plans.  Test modules import from
here instead of redefining ad-hoc `st.*` bounds, so "what counts as a
realistic workload" is defined exactly once.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.chaos import FaultPlan
from repro.hardware import GPU_PRESETS
from repro.models import MODEL_CATALOG
from repro.workload.agentic import (
    AgenticConfig,
    agent_variant_groups,
    draw_session_plan,
)
from repro.workload.sharegpt import sharegpt

__all__ = [
    "MiB",
    "MODEL_NAMES",
    "GPU_NAMES",
    "model_names",
    "gpu_names",
    "prompt_lengths",
    "batch_sizes",
    "context_tokens",
    "arrivals",
    "token_counts",
    "emission_rates",
    "step_times",
    "switch_costs",
    "alloc_sizes",
    "slab_operations",
    "fault_seeds",
    "fault_plans",
    "session_seeds",
    "session_plans",
    "agentic_configs",
]

MiB = 1024**2

MODEL_NAMES = sorted(MODEL_CATALOG)
GPU_NAMES = sorted(GPU_PRESETS)

# -- catalog sampling ---------------------------------------------------------
model_names = st.sampled_from(MODEL_NAMES)
gpu_names = st.sampled_from(GPU_NAMES)

# -- request shapes -----------------------------------------------------------
#: Prompt lengths spanning chat one-liners to long documents.
prompt_lengths = st.integers(min_value=1, max_value=8192)
#: Decode batch sizes up to the server's configured maximum.
batch_sizes = st.integers(min_value=1, max_value=64)
#: Total KV context a decode step attends over.
context_tokens = st.integers(min_value=1, max_value=65536)

# -- SLO / token-timing space -------------------------------------------------
arrivals = st.floats(min_value=0, max_value=100)
token_counts = st.integers(min_value=1, max_value=200)
#: Per-token emission intervals strictly faster than the 100 ms TBT.
emission_rates = st.floats(min_value=0.001, max_value=0.099)

# -- decode quota equations (Eqs. 2-3) ----------------------------------------
#: Per-batch step-time estimates: from tiny models to near-TBT.
step_times = st.lists(
    st.floats(min_value=0.002, max_value=0.09), min_size=2, max_size=10
)
#: Summed auto-scaling cost of a round's model switches.
switch_costs = st.floats(min_value=0.01, max_value=20.0)

# -- allocators ---------------------------------------------------------------
#: Byte sizes for bump-allocator sequences.
alloc_sizes = st.integers(min_value=1, max_value=2000)


def slab_operations(
    shapes: int = 4, max_blocks: int = 12, max_size: int = 60
) -> st.SearchStrategy:
    """Sequences of ``(action, shape_id, block_count)`` slab-allocator ops.

    ``action`` is ``"alloc"`` or ``"free"``; ``shape_id`` indexes one of
    ``shapes`` distinct KV shapes; ``block_count`` is how many blocks
    the op touches.  Drives interleaved multi-shape churn against a
    :class:`~repro.memory.SlabAllocator`.
    """
    return st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free"]),
            st.integers(min_value=0, max_value=shapes - 1),
            st.integers(min_value=1, max_value=max_blocks),
        ),
        max_size=max_size,
    )


# -- chaos --------------------------------------------------------------------
fault_seeds = st.integers(min_value=0, max_value=2**32 - 1)


# -- agentic DAGs -------------------------------------------------------------
session_seeds = st.integers(min_value=0, max_value=2**32 - 1)

#: Shared fixtures for plan drawing: the groups/dataset are pure lookup
#: tables, so sharing them across examples changes nothing.
_PLAN_GROUPS = agent_variant_groups(3)
_PLAN_DATASET = sharegpt()


def _draw_plan(seed: int, stages: int, fanout: int, join: float):
    config = AgenticConfig(
        seed=seed,
        min_stages=1,
        max_stages=stages,
        max_fanout=fanout,
        join_probability=join,
    )
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return draw_session_plan(
        rng,
        session=0,
        base_id=0,
        arrival=0.0,
        config=config,
        groups=_PLAN_GROUPS,
        dataset=_PLAN_DATASET,
    )


def session_plans(max_stages: int = 8, max_fanout: int = 3) -> st.SearchStrategy:
    """Seeded :class:`~repro.workload.agentic.SessionPlan` DAGs.

    Like :func:`fault_plans`, the strategy draws only the scalar inputs
    ``(seed, stage cap, fan-out cap, join probability)`` and delegates to
    :func:`~repro.workload.agentic.draw_session_plan`, so "a generated
    DAG" in the property tests means exactly what the workload generator
    produces: acyclic by construction, connected, fan-out bounded, token
    budgets positive.  Shrinking reduces to smaller seeds and caps.
    """
    return st.builds(
        _draw_plan,
        seed=session_seeds,
        stages=st.integers(min_value=1, max_value=max_stages),
        fanout=st.integers(min_value=1, max_value=max_fanout),
        join=st.floats(min_value=0.0, max_value=1.0),
    )


def agentic_configs(max_rate: float = 4.0, max_horizon: float = 60.0) -> st.SearchStrategy:
    """Valid :class:`~repro.workload.agentic.AgenticConfig` draws for
    whole-stream properties (re-iteration identity, id-block layout)."""
    return st.builds(
        AgenticConfig,
        session_rate=st.floats(min_value=0.1, max_value=max_rate),
        horizon=st.floats(min_value=1.0, max_value=max_horizon),
        seed=session_seeds,
        agents=st.integers(min_value=1, max_value=4),
        max_fanout=st.integers(min_value=1, max_value=3),
        join_probability=st.floats(min_value=0.0, max_value=1.0),
    )


def fault_plans(
    horizon: float,
    instances: tuple[str, ...] = (),
    max_faults: int = 6,
    max_kills: int = 1,
) -> st.SearchStrategy:
    """Seeded :class:`~repro.chaos.FaultPlan` drawn over ``[0, horizon)``.

    The strategy only draws the ``(seed, count)`` pair and delegates to
    :meth:`FaultPlan.seeded`, so every generated plan is reproducible
    from its ``plan.seed`` — shrinking reduces to smaller seeds and
    fewer faults, and a failing example can be replayed by hand.
    """
    return st.builds(
        FaultPlan.seeded,
        seed=fault_seeds,
        horizon=st.just(horizon),
        count=st.integers(min_value=1, max_value=max_faults),
        instances=st.just(tuple(instances)),
        max_kills=st.just(max_kills),
    )
