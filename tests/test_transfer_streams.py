"""Tests for simulated CUDA streams and events (§5.3, Table 2)."""

import pytest

from repro.hardware import Link, pcie_pair
from repro.sim import Environment
from repro.transfer import CudaEvent, CudaStream, synchronize_all


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def link(env):
    return Link(env, bandwidth=1e9, latency=0.0)


class TestStreamOrdering:
    def test_ops_execute_in_order(self, env, link):
        stream = CudaStream(env)
        finish_times = []
        stream.copy(link, int(1e9), on_done=lambda: finish_times.append(env.now))
        stream.compute(2.0, on_done=lambda: finish_times.append(env.now))
        env.run(until=10.0)
        assert finish_times == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_separate_streams_overlap_compute(self, env):
        s1, s2 = CudaStream(env), CudaStream(env)
        done = []
        s1.compute(2.0, on_done=lambda: done.append(("s1", env.now)))
        s2.compute(2.0, on_done=lambda: done.append(("s2", env.now)))
        env.run(until=5.0)
        assert [t for _, t in done] == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_same_link_copies_serialize_across_streams(self, env, link):
        s1, s2 = CudaStream(env), CudaStream(env)
        done = []
        s1.copy(link, int(1e9), on_done=lambda: done.append(env.now))
        s2.copy(link, int(1e9), on_done=lambda: done.append(env.now))
        env.run(until=5.0)
        assert sorted(done) == [pytest.approx(1.0), pytest.approx(2.0)]


class TestEvents:
    def test_record_and_query(self, env, link):
        stream = CudaStream(env)
        event = CudaEvent(env, name="marker")
        stream.copy(link, int(1e9))
        stream.record(event)
        env.run(until=0.5)
        assert not event.query()
        env.run(until=2.0)
        assert event.query()
        assert event.completed_at == pytest.approx(1.0)

    def test_unrecorded_event_reports_complete(self, env):
        assert CudaEvent(env).query()

    def test_stream_wait_event(self, env, link):
        producer = CudaStream(env)
        consumer = CudaStream(env)
        event = CudaEvent(env)
        producer.copy(link, int(2e9))  # finishes at t=2
        producer.record(event)
        consumer.wait_event(event)
        done = []
        consumer.compute(1.0, on_done=lambda: done.append(env.now))
        env.run(until=10.0)
        assert done == [pytest.approx(3.0)]

    def test_host_wait(self, env, link):
        stream = CudaStream(env)
        event = CudaEvent(env)
        stream.copy(link, int(1e9))
        stream.record(event)
        log = []

        def host():
            yield event.wait()
            log.append(env.now)

        env.process(host())
        env.run(until=5.0)
        assert log == [pytest.approx(1.0)]

    def test_wait_on_completed_event_is_immediate(self, env):
        event = CudaEvent(env)
        log = []

        def host():
            yield event.wait()
            log.append(env.now)

        env.process(host())
        env.run(until=1.0)
        assert log == [0.0]

    def test_ipc_handles(self, env):
        event = CudaEvent(env, name="shared")
        handle = event.ipc_handle()
        assert CudaEvent.from_ipc_handle(handle) is event
        with pytest.raises(ValueError):
            CudaEvent.from_ipc_handle(999_999_999)


class TestSynchronize:
    def test_stream_synchronize(self, env, link):
        stream = CudaStream(env)
        stream.copy(link, int(3e9))
        log = []

        def host():
            yield stream.synchronize()
            log.append(env.now)

        env.process(host())
        env.run(until=10.0)
        assert log == [pytest.approx(3.0)]

    def test_synchronize_all_waits_for_slowest(self, env):
        duplex = pcie_pair(env, bandwidth=1e9)
        s1, s2 = CudaStream(env), CudaStream(env)
        s1.copy(duplex.h2d, int(1e9))
        s2.copy(duplex.d2h, int(4e9))
        log = []

        def host():
            yield synchronize_all(env, [s1, s2])
            log.append(env.now)

        env.process(host())
        env.run(until=10.0)
        assert log == [pytest.approx(4.0, rel=1e-3)]

    def test_pending_ops_counter(self, env, link):
        stream = CudaStream(env)
        stream.copy(link, int(1e9))
        stream.copy(link, int(1e9))
        assert stream.pending_ops == 2
        env.run(until=5.0)
        assert stream.pending_ops == 0
        assert stream.ops_executed == 2
