"""Unit and regression tests for individual policies.

Covers the two new non-default policies (SLO-aware admission,
cost-per-token placement), the ``policy.*`` trace events they emit, the
``REPRO_TUNE_*`` / ``REPRO_POLICIES`` env surface, and the regression
that :meth:`fail_instance` mutates only the scheduler's own dispatch
view — never the server's pool lists or a caller's list.
"""

from types import SimpleNamespace

import pytest

from repro.core import (
    AegaeonConfig,
    RunSettings,
    SloSpec,
    SystemSpec,
    build_system,
)
from repro.core.decode_sched import BatchedDecodeScheduler
from repro.core.prefill_sched import GroupedPrefillScheduler
from repro.hardware import A10, H800
from repro.obs import ObsConfig, Tracer
from repro.policy import (
    CostAwarePlacement,
    MemoryConstrainedPlacement,
    SloAwareAdmission,
    Tunables,
    get_bundle,
)
from repro.sim import Environment

from .test_serving_api import small_config, small_trace

GiB = 1024**3


def _model(name, weight_gib):
    return SimpleNamespace(name=name, weight_bytes=weight_gib * GiB)


def _stub_system(pressure, ttft=1.0, tracer=None):
    return SimpleNamespace(
        admission_pressure=lambda: pressure,
        slo=SloSpec(ttft=ttft, tbt=0.1),
        obs=SimpleNamespace(tracer=tracer),
    )


def _request(request_id=1, model="Qwen-7B"):
    return SimpleNamespace(request_id=request_id, model=model)


class TestSloAwareAdmission:
    def test_admits_under_budget(self):
        policy = SloAwareAdmission()
        assert policy.decide(_stub_system(pressure=0.5, ttft=1.0), _request()) is None
        assert policy.shed == 0

    def test_sheds_over_budget(self):
        policy = SloAwareAdmission()
        reason = policy.decide(_stub_system(pressure=2.0, ttft=1.0), _request())
        assert reason == "queue_pressure"
        assert policy.shed == 1

    def test_headroom_scales_the_budget(self):
        system = _stub_system(pressure=2.0, ttft=1.0)
        assert SloAwareAdmission(headroom=3.0).decide(system, _request()) is None
        with pytest.raises(ValueError, match="headroom"):
            SloAwareAdmission(headroom=0.0)

    def test_systems_without_estimator_admit(self):
        bare = SimpleNamespace(slo=SloSpec())
        assert SloAwareAdmission().decide(bare, _request()) is None

    def test_shed_emits_policy_admission_event(self):
        tracer = Tracer()
        system = _stub_system(pressure=2.0, ttft=1.0, tracer=tracer)
        SloAwareAdmission().decide(system, _request(request_id=7))
        events = [i for i in tracer.instants if i.name == "policy.admission"]
        assert len(events) == 1
        assert events[0].cat == "policy"
        assert events[0].args["decision"] == "shed"
        assert events[0].args["request_id"] == 7
        assert events[0].args["pressure"] == 2.0

    def test_integration_sheds_before_pools_empty_reject(self):
        """Under a strict TTFT the slo-admission bundle sheds at the
        proxy while the default bundle still admits everything."""
        slo = SloSpec(ttft=0.05, tbt=0.1)
        rejected = {}
        for name in ("aegaeon", "aegaeon-slo-admission"):
            env = Environment()
            config = AegaeonConfig(
                prefill_instances=1,
                decode_instances=1,
                cluster="h800-pair",
                slo=slo,
                obs=ObsConfig.full(),
            )
            system = build_system(
                SystemSpec(config=config, policies=name), env
            )
            trace = small_trace(n_models=4, rps=0.3, horizon=40.0)
            system.serve(trace)
            registry = system.registry
            assert (
                registry.finished + registry.failed + registry.rejected
                == registry.submitted
            )
            rejected[name] = registry.rejected
            if name == "aegaeon-slo-admission":
                sheds = [
                    event
                    for event in system.obs.tracer.instants
                    if event.name == "policy.admission"
                    and event.args.get("decision") == "shed"
                ]
                assert len(sheds) == registry.rejected
                # The core's canonical reject event rides along.
                rejects = [
                    event
                    for event in system.obs.tracer.instants
                    if event.name == "policy.admission"
                    and event.args.get("reason") == "queue_pressure"
                ]
                assert len(rejects) == registry.rejected
        assert rejected["aegaeon"] == 0
        assert rejected["aegaeon-slo-admission"] > 0


class TestCostAwarePlacement:
    def test_cheapest_per_token_slots_fill_first(self):
        policy = CostAwarePlacement()
        slots = [H800, A10, H800, A10]
        # A10 trades an order of magnitude less bandwidth for ~16x less
        # rent: cheaper per generated token than an H800.
        assert policy.score(A10) < policy.score(H800)
        assert policy.slot_order(slots) == [1, 3, 0, 2]

    def test_popular_models_land_on_cheap_slots(self):
        policy = CostAwarePlacement(min_kv_bytes=16 * GiB)
        models = [_model("m0", 4), _model("m1", 4), _model("m2", 4)]
        placements, unplaced = policy.plan(models, [H800, A10])
        assert not unplaced
        # A10: 0.9 * 24 GiB budget fits one (4 + 16) GiB model; the
        # most popular model goes there, overflow falls to the H800.
        assert [spec.name for spec in placements[1]] == ["m0"]
        assert [spec.name for spec in placements[0]] == ["m1", "m2"]

    def test_homogeneous_pool_degrades_to_first_fit(self):
        slots = [H800, H800, H800]
        cost = CostAwarePlacement()
        first_fit = MemoryConstrainedPlacement()
        assert cost.slot_order(slots) == first_fit.slot_order(slots)
        models = [_model(f"m{i}", 20) for i in range(5)]
        assert cost.plan(models, slots) == first_fit.plan(models, slots)

    def test_unknown_gpu_priced_at_table_median(self):
        exotic = SimpleNamespace(
            name="B200", vram_bytes=192 * GiB, effective_hbm_bandwidth=6.0e12
        )
        score = CostAwarePlacement().score(exotic)
        assert 0.0 < score < float("inf")

    def test_placement_emits_policy_events(self):
        tracer = Tracer()
        policy = CostAwarePlacement(min_kv_bytes=16 * GiB)
        models = [_model("m0", 4), _model("huge", 500)]
        policy.plan(models, [H800, A10], tracer=tracer)
        events = [i for i in tracer.instants if i.name == "policy.placement"]
        decisions = {event.args["model"]: event.args["decision"] for event in events}
        assert decisions == {"m0": "place", "huge": "unplaced"}
        placed = next(e for e in events if e.args["decision"] == "place")
        assert placed.args["gpu"] == "A10"
        assert placed.args["usd_per_gbs"] > 0

    def test_muxserve_cost_bundle_serves(self):
        """The cost-placement bundle drives a full MuxServe run."""
        env = Environment()
        system = build_system(
            SystemSpec(
                system="muxserve",
                config=small_config("muxserve"),
                policies="muxserve-cost-placement",
            ),
            env,
        )
        trace = small_trace()
        system.serve(trace)
        registry = system.registry
        assert registry.finished > 0
        assert (
            registry.finished + registry.failed + registry.rejected
            == registry.submitted
        )


class TestEnvSurface:
    def test_tunables_from_env(self):
        tuned = Tunables.from_env(
            {"REPRO_TUNE_QMAX": "2.5", "REPRO_TUNE_MAX_PREFILL_GROUP": "4"}
        )
        assert tuned.qmax == 2.5
        assert tuned.max_prefill_group == 4
        assert isinstance(tuned.max_prefill_group, int)
        # Untouched fields keep their defaults.
        assert tuned.alpha_floor == 0.5

    def test_tunables_from_empty_env_is_default(self):
        assert Tunables.from_env({}) == Tunables()

    def test_run_settings_read_policies(self):
        settings = RunSettings.from_env({"REPRO_POLICIES": "aegaeon-slo-admission"})
        assert settings.policies == "aegaeon-slo-admission"
        assert RunSettings.from_env({"REPRO_POLICIES": "  "}).policies is None
        assert RunSettings.from_env({}).policies is None

    def test_run_settings_carry_tunables(self):
        settings = RunSettings.from_env({"REPRO_TUNE_QMAX": "1.5"})
        assert settings.tunables.qmax == 1.5


class TestSchedulerViewIsolation:
    """``fail_instance`` must never mutate anything but the scheduler's
    own dispatch view (the list policies read)."""

    def _system(self):
        env = Environment()
        return build_system(SystemSpec(config=small_config("aegaeon")), env)

    def test_schedulers_copy_the_caller_list(self):
        system = self._system()
        mine = list(system.decode_instances)
        scheduler = BatchedDecodeScheduler(mine)
        assert scheduler.instances is not mine
        scheduler.instances.clear()
        assert mine == list(system.decode_instances)

        prefill = list(system.prefill_instances)
        prefill_scheduler = GroupedPrefillScheduler(prefill)
        assert prefill_scheduler.instances is not prefill

    def test_fail_instance_shrinks_only_the_dispatch_view(self):
        system = self._system()
        prefill_pool = list(system.prefill_instances)
        decode_pool = list(system.decode_instances)
        view = system.decode_scheduler.instances

        system.fail_instance("decode0")

        # Pool lists keep the dead instance (per-engine stats survive)...
        assert system.prefill_instances == prefill_pool
        assert system.decode_instances == decode_pool
        # ...while the policies' dispatch view shrank in place.
        assert system.decode_scheduler.instances is view
        assert view == []
        assert system.prefill_scheduler.instances == prefill_pool

    def test_dispatch_after_failure_raises_lookup_error(self):
        system = self._system()
        system.fail_instance("decode0")
        request = small_trace().requests[0]
        with pytest.raises(LookupError):
            system.decode_scheduler.dispatch(request)
