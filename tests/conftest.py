"""Suite-wide pytest configuration: hypothesis profiles.

Profiles (select with ``--hypothesis-profile=NAME``):

* ``dev`` (default) — the settings the suite has always run with: each
  test's own ``@settings`` example counts, no global deadline.
* ``ci`` — deeper and deterministic for the chaos-smoke job: twice the
  default example count (tests that pin ``max_examples`` explicitly
  keep their pinned budget), derandomized so a red CI run reproduces
  locally.
"""

from hypothesis import HealthCheck, settings

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=200,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("dev")
