"""The agentic DAG workload layer (``repro.workload.agentic``) end to end.

Four contracts pin the layer down:

* **Structure** — every generated :class:`SessionPlan` is acyclic by
  construction, connected, fan-out bounded, and carries positive stage
  token budgets (hypothesis, via the shared :func:`session_plans`
  strategy that delegates to the real generator).
* **Determinism** — a stream is a pure function of its config: same
  seed, same bytes, across re-iteration and fresh stream objects; the
  committed golden digest pins a full cost-routed replay, with and
  without ``REPRO_INVARIANTS=1`` armed.
* **Conservation** — per session, ``stages_submitted == finished +
  failed + rejected`` once the run drains, on a single pool and on a
  fleet serving an agentic/market merge through the pump.
* **Ordering** — a dependent stage is only ever submitted after *all*
  its parents finished (checked on the retained request ledger).
"""

import hashlib
import json
import os

import pytest
from hypothesis import given, settings

from repro.core import AegaeonConfig, SessionCoordinator, SystemSpec
from repro.envkeys import known_env_keys, suggest_env_key
from repro.fleet import ControllerConfig, FleetConfig, build_fleet
from repro.fleet.rollup import ShardStats
from repro.workload import (
    AgenticConfig,
    SessionPlan,
    StagePlan,
    agent_variant_groups,
    agentic_stream,
    market_stream,
    merge_streams,
)

from .strategies import agentic_configs, session_plans, session_seeds

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "agentic_digest.json")

#: The strategy caps ``session_plans()`` draws under (see strategies.py).
STRATEGY_MAX_STAGES = 8
STRATEGY_MAX_FANOUT = 3


def small_stream(seed=7, rate=1.0, horizon=30.0, agents=2, **overrides):
    """A CI-sized agentic stream (a few dozen sessions)."""
    config = AgenticConfig(
        session_rate=rate, horizon=horizon, seed=seed, agents=agents, **overrides
    )
    return agentic_stream(config, groups=agent_variant_groups(agents))


def build_pool(bundle="aegaeon"):
    """One 4-GPU pool, same shape as examples/agentic_replay.py."""
    return SystemSpec(
        config=AegaeonConfig(
            prefill_instances=1, decode_instances=3, cluster="h800-quad"
        ),
        policies=bundle,
    ).build()


def replay(stream, bundle="aegaeon", retain=False):
    """Run one coordinated replay; returns (system, coordinator, stats)."""
    system = build_pool(bundle)
    stats = ShardStats(shard=0, slo=system.slo)
    system.configure_streaming(retain_requests=retain, request_sink=stats.fold)
    coordinator = SessionCoordinator(system.env, stream.spec_of, obs=system.obs)
    system.attach_sessions(coordinator)
    system.serve_stream(coordinator.wrap_stream(stream))
    return system, coordinator, stats


def digest_of(stats, sessions) -> str:
    """Same digest the example prints: rollup + session conservation rows."""
    payload = json.dumps([stats.as_dict(), sessions], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class TestPlanStructure:
    """Structural invariants of every DAG the generator can produce."""

    @settings(max_examples=60, deadline=None)
    @given(plan=session_plans())
    def test_acyclic_connected_bounded(self, plan):
        assert isinstance(plan, SessionPlan)
        assert [s.index for s in plan.stages] == list(range(len(plan.stages)))
        for stage in plan.stages:
            # Acyclic: edges only point backwards.
            assert all(0 <= dep < stage.index for dep in stage.deps)
            assert len(set(stage.deps)) == len(stage.deps)
            # Connected: every non-root has at least one parent.
            assert stage.index == 0 or stage.deps
            # Positive token budgets, sane metadata.
            assert stage.input_tokens > 0 and stage.output_tokens > 0
            assert stage.think_time >= 0.0
            assert 0.0 <= stage.difficulty <= 1.0
            assert len(stage.variants) >= 2
            assert stage.model == stage.variants[-1]
        assert plan.max_fanout() <= STRATEGY_MAX_FANOUT
        assert len(plan.stages) <= STRATEGY_MAX_STAGES
        assert plan.roots() and plan.roots()[0].index == 0

    @settings(max_examples=60, deadline=None)
    @given(plan=session_plans())
    def test_request_ids_are_the_contiguous_block(self, plan):
        for stage in plan.stages:
            request = plan.request_for(stage, plan.arrival)
            assert request.request_id == plan.base_id + stage.index
            assert request.session == plan.session
            assert request.affinity == plan.affinity
            assert request.plan is plan

    def test_stage_validation_rejects_malformed_dags(self):
        ok = dict(index=1, model="m", input_tokens=8, output_tokens=8)
        with pytest.raises(ValueError, match="earlier stages"):
            StagePlan(deps=(1,), **ok)  # self-edge = a cycle
        with pytest.raises(ValueError, match="earlier stages"):
            StagePlan(deps=(2,), **ok)  # forward edge
        with pytest.raises(ValueError, match="duplicate"):
            StagePlan(deps=(0, 0), **ok)
        with pytest.raises(ValueError, match="positive"):
            StagePlan(index=0, model="m", input_tokens=0, output_tokens=8)
        with pytest.raises(ValueError, match="0..n-1"):
            SessionPlan(
                session=0, base_id=0, arrival=0.0,
                stages=(StagePlan(index=1, model="m", input_tokens=1, output_tokens=1),),
            )


class TestGeneratorDeterminism:
    def test_same_seed_is_byte_identical(self):
        stream = small_stream(seed=42)
        first = tuple(stream)
        assert first, "scenario produced no sessions"
        assert tuple(stream) == first  # re-iteration
        assert tuple(small_stream(seed=42)) == first  # fresh stream object

    def test_different_seeds_differ(self):
        assert tuple(small_stream(seed=1)) != tuple(small_stream(seed=2))

    @settings(max_examples=20, deadline=None)
    @given(config=agentic_configs(max_rate=2.0, max_horizon=20.0))
    def test_stream_contract_holds_for_any_config(self, config):
        stream = agentic_stream(config)
        roots = list(stream)
        assert list(stream) == roots  # re-iterable, byte for byte
        # Roots only, in arrival order.
        assert all(not request.deps for request in roots)
        arrivals = [request.arrival for request in roots]
        assert arrivals == sorted(arrivals)
        assert all(arrival < config.horizon for arrival in arrivals)
        # Contiguous, disjoint per-session id blocks from start_id.
        plans = {}
        for request in roots:
            plans.setdefault(request.plan.session, request.plan)
        next_id = config.start_id
        for session in sorted(plans):
            plan = plans[session]
            assert plan.base_id == next_id
            next_id += len(plan.stages)


class TestMergeStreams:
    def test_merge_orders_unions_and_stays_reiterable(self):
        market = market_stream(4, 20.0, seed=3, total_rate=2.0)
        agentic = small_stream(seed=5, horizon=20.0)
        merged = merge_streams(market, agentic)

        requests = list(merged)
        assert list(merged) == requests  # merge preserves re-iterability
        arrivals = [request.arrival for request in requests]
        assert arrivals == sorted(arrivals)
        # Disjoint id spaces: agentic ids start at the 1e6 floor.
        ids = [request.request_id for request in requests]
        assert len(set(ids)) == len(ids)
        assert len(requests) == len(list(market)) + len(list(agentic))
        # Model union and the widest horizon.
        names = {spec.name for spec in merged.models}
        assert {spec.name for spec in market.models} <= names
        assert {spec.name for spec in agentic.models} <= names
        assert merged.horizon == max(market.horizon, agentic.horizon)


class TestEnvSurface:
    """Satellite: the REPRO_WORKLOAD_* / router tunable key registry."""

    WORKLOAD_KEYS = (
        "REPRO_WORKLOAD_SESSION_RATE",
        "REPRO_WORKLOAD_HORIZON",
        "REPRO_WORKLOAD_SEED",
        "REPRO_WORKLOAD_AGENTS",
        "REPRO_WORKLOAD_MAX_STAGES",
        "REPRO_WORKLOAD_MAX_FANOUT",
        "REPRO_WORKLOAD_THINK_TIME",
    )

    def test_workload_keys_registered(self):
        known = known_env_keys()
        for key in self.WORKLOAD_KEYS:
            assert key in known and known[key]

    def test_router_tunables_auto_derive_keys(self):
        known = known_env_keys()
        assert "REPRO_TUNE_ROUTER_SESSION_BUDGET_USD" in known
        assert "REPRO_TUNE_ROUTER_DIFFICULTY_THRESHOLD" in known
        assert "REPRO_TUNE_ROUTER_USD_PER_MTOK_B" in known

    def test_from_env_parses_and_overrides(self):
        environ = {
            "REPRO_WORKLOAD_SESSION_RATE": "0.5",
            "REPRO_WORKLOAD_HORIZON": "45",
            "REPRO_WORKLOAD_SEED": "9",
            "REPRO_WORKLOAD_AGENTS": "3",
            "REPRO_WORKLOAD_MAX_STAGES": "4",
            "REPRO_WORKLOAD_MAX_FANOUT": "1",
            "REPRO_WORKLOAD_THINK_TIME": "0.1",
        }
        config = AgenticConfig.from_env(environ)
        assert config.session_rate == 0.5
        assert config.horizon == 45.0
        assert config.seed == 9
        assert config.agents == 3
        assert config.max_stages == 4
        assert config.max_fanout == 1
        assert config.think_time == 0.1
        # Explicit overrides win over the environment.
        assert AgenticConfig.from_env(environ, seed=77).seed == 77

    def test_typo_warns_with_nearest_key(self):
        environ = {"REPRO_WORKLOAD_SESION_RATE": "1.0"}
        with pytest.warns(RuntimeWarning, match="REPRO_WORKLOAD_SESSION_RATE"):
            config = AgenticConfig.from_env(environ)
        assert config.session_rate == AgenticConfig().session_rate
        assert (
            suggest_env_key("REPRO_WORKLOAD_SESION_RATE")
            == "REPRO_WORKLOAD_SESSION_RATE"
        )


def assert_conserved(system, coordinator, stats):
    """The conservation identity every coordinated replay must close."""
    s = coordinator.stats
    assert s.stages_submitted == (
        s.stages_finished + s.stages_failed + s.stages_rejected
    )
    assert s.sessions_started == s.sessions_completed + s.sessions_aborted
    assert coordinator.drained() and not coordinator._live
    assert stats.finished + stats.failed + stats.rejected == stats.requests
    assert stats.requests == system.registry.submitted == s.stages_submitted
    # Per-session rows total back to the aggregate ledger.
    rows = coordinator.per_session.values()
    assert sum(row["submitted"] for row in rows) == s.stages_submitted
    assert sum(row["finished"] for row in rows) == s.stages_finished
    for row in rows:
        assert row["completed"] == (row["finished"] == row["stages"])
        assert row["submitted"] <= row["stages"]


class TestReplayConservation:
    def test_single_pool_conservation(self):
        system, coordinator, stats = replay(small_stream(seed=13))
        assert coordinator.stats.sessions_started > 0
        assert coordinator.stats.stages_finished > 0
        assert_conserved(system, coordinator, stats)

    @settings(max_examples=8, deadline=None)
    @given(seed=session_seeds)
    def test_conservation_for_any_seed(self, seed):
        stream = small_stream(seed=seed, rate=1.5, horizon=10.0)
        system, coordinator, stats = replay(stream)
        assert_conserved(system, coordinator, stats)

    def test_stage_ordering_respects_dag_edges(self):
        system, coordinator, stats = replay(small_stream(seed=21), retain=True)
        assert_conserved(system, coordinator, stats)
        settled = system.finished + system.failed + system.rejected
        by_id = {request.request_id: request for request in settled}
        finished = {request.request_id for request in system.finished}
        non_roots = 0
        for request in settled:
            plan = request.trace.plan
            for dep in request.trace.deps:
                non_roots += 1
                parent = by_id[plan.base_id + dep]
                # Every parent finished (aborts prune downstream) and did
                # so no later than this stage was submitted.
                assert parent.request_id in finished
                assert parent.finish_time is not None
                assert request.trace.arrival >= parent.finish_time - 1e-9
                stage = plan.stages[request.trace.stage]
                assert request.trace.arrival >= (
                    parent.finish_time + stage.think_time - 1e-9
                ) or len(stage.deps) > 1
        assert non_roots > 0, "scenario produced no dependent stages"


class TestFleetMix:
    """Agentic sessions riding the pump next to market traffic."""

    def test_merged_fleet_conserves_with_controller(self):
        merged = merge_streams(
            market_stream(4, 20.0, seed=3, total_rate=2.0),
            small_stream(seed=5, horizon=20.0),
        )
        fleet = build_fleet(
            FleetConfig(
                shards=2,
                spec=SystemSpec(
                    config=AegaeonConfig(
                        prefill_instances=1, decode_instances=3,
                        cluster="h800-quad",
                    ),
                    policies="aegaeon",
                ),
                controller=ControllerConfig(policy="forecast"),
            )
        )
        coordinator = SessionCoordinator(fleet.env, merged.spec_of)
        fleet.attach_sessions(coordinator)
        result = fleet.run(coordinator.wrap_stream(merged))

        spills = result.controller["spills"]
        served = sum(stats.requests for stats in result.shard_stats)
        assert served == fleet.submitted + spills
        for stats in result.shard_stats:
            assert (
                stats.finished + stats.failed + stats.rejected + stats.spilled
                == stats.requests
            )
        # The session layer drained and its rollup rode along.
        s = coordinator.stats
        assert s.sessions_started > 0
        assert s.stages_submitted == (
            s.stages_finished + s.stages_failed + s.stages_rejected
        )
        assert coordinator.drained() and not coordinator._live
        assert result.sessions is not None
        assert result.sessions["live"] == 0
        assert result.sessions["stats"] == s.as_dict()
        assert result.summary()["sessions"]["stats"] == s.as_dict()


def golden_scenario():
    """The pinned replay: cost-routed DAG traffic on one pool."""
    stream = agentic_stream(
        AgenticConfig(session_rate=1.5, horizon=40.0, seed=11, agents=2),
        groups=agent_variant_groups(2),
    )
    system, coordinator, stats = replay(stream, bundle="aegaeon-cost-router")
    assert_conserved(system, coordinator, stats)
    return digest_of(stats, coordinator.summary())


class TestGoldenDigest:
    """Satellite: the committed same-seed digest golden."""

    def test_digest_matches_golden(self):
        with open(GOLDEN) as handle:
            golden = json.load(handle)
        assert golden_scenario() == golden["digest"], (
            "agentic cost-routed replay drifted from the committed golden; "
            "if the change is intentional, regenerate "
            "tests/golden/agentic_digest.json"
        )

    def test_invariants_armed_run_is_identical(self, monkeypatch):
        # REPRO_INVARIANTS=1 arms the runtime checker inside the build;
        # observation must not perturb a single byte of the digest.
        monkeypatch.setenv("REPRO_INVARIANTS", "1")
        with open(GOLDEN) as handle:
            golden = json.load(handle)
        assert golden_scenario() == golden["digest"]
