"""Failure injection and degraded-mode behaviour.

Exercises the paths a production deployment hits when resources run
short or assumptions break: cold checkpoints (remote registry fetch),
host-cache thrash, CPU KV cache pressure, oversized configurations, and
drain deadlines with unfinished work.
"""

import pytest

from repro.core import AegaeonConfig, AegaeonServer
from repro.engine import AegaeonEngine, EngineConfig
from repro.hardware import Cluster, H800, Node
from repro.memory import HostModelCache, SlabAllocator
from repro.models import get_model, market_mix
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

GiB = 1024**3
MiB = 1024**2


class TestColdCheckpoints:
    def test_serving_without_warm_cache_fetches_remote(self):
        # warm=False: every first touch of a model goes to the registry.
        env = Environment()
        server = AegaeonServer(
            env,
            Cluster.homogeneous(env, H800, 1, 3),
            AegaeonConfig(prefill_instances=1, decode_instances=2),
        )
        models = market_mix(4)
        trace = materialize_trace(models, [0.05] * 4, sharegpt(), horizon=60.0, seed=2)
        result = server.serve(trace, warm=False)
        assert result.finished_requests == len(trace)
        fetches = sum(
            instance.engine.quick_loader.remote_fetches
            for instance in [*server.prefill_instances, *server.decode_instances]
        )
        assert fetches > 0
        # Cold starts cost seconds, visibly worse than the warm path.
        assert result.slo_attainment() < 1.0

    def test_tiny_model_cache_thrashes_but_serves(self):
        env = Environment()
        config = AegaeonConfig(
            prefill_instances=1,
            decode_instances=2,
            model_cache_bytes=40 * GiB,  # fits only ~2 checkpoints
        )
        server = AegaeonServer(env, Cluster.homogeneous(env, H800, 1, 3), config)
        models = market_mix(6)
        trace = materialize_trace(models, [0.05] * 6, sharegpt(), horizon=60.0, seed=3)
        result = server.serve(trace, warm=False)
        assert result.finished_requests == len(trace)
        assert server.model_cache.evictions > 0


class TestMemoryPressure:
    def test_small_cpu_kv_cache_still_completes(self):
        # A CPU KV cache barely larger than one batch forces constant
        # retry/reclaim cycles; throughput drops but nothing deadlocks.
        env = Environment()
        config = AegaeonConfig(
            prefill_instances=1,
            decode_instances=2,
            cpu_kv_cache_bytes=4 * GiB,
            cpu_slab_bytes=64 * MiB,
        )
        server = AegaeonServer(env, Cluster.homogeneous(env, H800, 1, 3), config)
        models = market_mix(4)
        trace = materialize_trace(models, [0.05] * 4, sharegpt(), horizon=40.0, seed=4)
        result = server.serve(trace)
        assert result.completion_rate > 0.9

    def test_weight_buffer_too_large_rejected(self):
        env = Environment()
        node = Node(env, H800, gpu_count=1)
        with pytest.raises(MemoryError):
            AegaeonEngine(
                env,
                node,
                node.gpus,
                HostModelCache(64 * GiB),
                SlabAllocator(8 * GiB, 256 * MiB),
                config=EngineConfig(weight_buffer_bytes=80 * GiB),
            )

    def test_model_larger_than_weight_buffer_raises(self):
        env = Environment()
        node = Node(env, H800, gpu_count=1)
        cache = HostModelCache(640 * GiB)
        spec = get_model("Qwen-72B")  # 145 GB > 20 GiB buffer
        cache.insert(spec.name, spec.weight_bytes)
        engine = AegaeonEngine(
            env,
            node,
            node.gpus,
            cache,
            SlabAllocator(8 * GiB, 256 * MiB),
            config=EngineConfig(weight_buffer_bytes=20 * GiB, prefetch=False),
            pre_initialized=True,
        )

        def scenario():
            yield from engine.scale_to(spec)

        process = env.process(scenario())
        with pytest.raises(MemoryError):
            env.run(until=process)


class TestDrainDeadline:
    def test_overload_hits_drain_grace_without_hanging(self):
        # An impossible load on one GPU: the watchdog must stop at the
        # drain deadline, reporting unfinished requests honestly.
        env = Environment()
        config = AegaeonConfig(
            prefill_instances=1, decode_instances=1, drain_grace=20.0
        )
        server = AegaeonServer(env, Cluster.homogeneous(env, H800, 1, 2), config)
        models = market_mix(20)
        trace = materialize_trace(models, [0.5] * 20, sharegpt(), horizon=30.0, seed=6)
        result = server.serve(trace)
        assert env.now <= trace.horizon + config.drain_grace + 2.0
        assert result.completion_rate < 1.0
        assert result.slo_attainment() < 0.9
