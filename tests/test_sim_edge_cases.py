"""Edge cases for the simulation kernel beyond the basic suites."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestConditionsOverProcesses:
    def test_all_of_mixed_processes_and_timeouts(self, env):
        def worker(duration, value):
            yield env.timeout(duration)
            return value

        def main():
            results = yield env.all_of(
                [
                    env.process(worker(1.0, "a")),
                    env.process(worker(2.0, "b")),
                    env.timeout(0.5, value="t"),
                ]
            )
            return sorted(str(v) for v in results.values())

        assert env.run(until=env.process(main())) == ["a", "b", "t"]

    def test_any_of_failure_propagates(self, env):
        def failing():
            yield env.timeout(0.5)
            raise RuntimeError("inner")

        def main():
            try:
                yield env.any_of([env.process(failing()), env.timeout(10.0)])
            except RuntimeError as exc:
                return f"caught {exc}"

        assert env.run(until=env.process(main())) == "caught inner"

    def test_nested_conditions(self, env):
        def main():
            inner = env.any_of([env.timeout(1.0, "fast"), env.timeout(5.0, "slow")])
            yield env.all_of([inner, env.timeout(2.0)])
            return env.now

        assert env.run(until=env.process(main())) == 2.0


class TestInterruptEdges:
    def test_interrupt_chain(self, env):
        log = []

        def victim():
            for attempt in range(3):
                try:
                    yield env.timeout(100.0)
                except Interrupt as interrupt:
                    log.append((env.now, interrupt.cause))
            return "survived"

        victim_process = env.process(victim())

        def attacker():
            for round_index in range(3):
                yield env.timeout(1.0)
                victim_process.interrupt(cause=round_index)

        env.process(attacker())
        assert env.run(until=victim_process) == "survived"
        assert log == [(1.0, 0), (2.0, 1), (3.0, 2)]

    def test_interrupt_while_waiting_on_process(self, env):
        def child():
            yield env.timeout(50.0)
            return "child done"

        child_process = env.process(child())

        def parent():
            try:
                yield child_process
            except Interrupt:
                return ("interrupted", env.now)

        parent_process = env.process(parent())

        def attacker():
            yield env.timeout(2.0)
            parent_process.interrupt()

        env.process(attacker())
        assert env.run(until=parent_process) == ("interrupted", 2.0)
        # The child keeps running, unaffected.
        env.run(until=child_process)
        assert child_process.value == "child done"


class TestRunSemantics:
    def test_run_until_already_processed_event(self, env):
        def quick():
            yield env.timeout(1.0)
            return 7

        process = env.process(quick())
        env.run()
        # Running until an already-finished process returns immediately.
        assert env.run(until=process) == 7

    def test_step_on_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_active_process_visible_inside(self, env):
        observed = []

        def proc():
            observed.append(env.active_process)
            yield env.timeout(0.1)

        process = env.process(proc())
        env.run()
        assert observed == [process]
        assert env.active_process is None

    def test_simultaneous_interleaving_is_creation_ordered(self, env):
        order = []

        def make(tag):
            def proc():
                for _ in range(3):
                    order.append(tag)
                    yield env.timeout(1.0)

            return proc

        env.process(make("x")())
        env.process(make("y")())
        env.run()
        assert order == ["x", "y"] * 3
