"""Conformance tests: every system built by ``build_system`` speaks the
same :class:`ServingSystem` protocol and is measured identically."""

import json

import pytest

from repro.core import (
    AegaeonConfig,
    MuxServeConfig,
    RunSettings,
    ServerlessLLMConfig,
    ServingSystem,
    SystemSpec,
    UnifiedConfig,
    available_systems,
    build_system,
    resolve_cluster,
)
from repro.models import market_mix
from repro.obs import ObsConfig, chrome_trace
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace


def small_trace(n_models=3, rps=0.08, horizon=50.0, seed=11):
    models = market_mix(n_models)
    return materialize_trace(
        models, [rps] * n_models, sharegpt(), horizon=horizon, seed=seed
    )


def small_config(name, obs=ObsConfig.metrics_only()):
    """The smallest sensible deployment of each system (fast to simulate)."""
    if name == "aegaeon":
        return AegaeonConfig(
            prefill_instances=1, decode_instances=1, cluster="h800-pair", obs=obs
        )
    if name in ("serverless-llm", "serverless-llm+"):
        return ServerlessLLMConfig(cluster="h800-pair", obs=obs)
    if name == "muxserve":
        return MuxServeConfig(cluster="h800-pair", obs=obs)
    if name.startswith("unified-"):
        return UnifiedConfig(cluster="h800-pair", obs=obs)
    raise AssertionError(f"no small config for {name}")


class TestFactory:
    def test_available_systems(self):
        names = available_systems()
        assert "aegaeon" in names
        assert "serverless-llm" in names
        assert "muxserve" in names

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown serving system"):
            build_system(SystemSpec(system="nope"), Environment())

    def test_aliases_and_case(self):
        env = Environment()
        system = build_system(
            SystemSpec(system="ServerlessLLM+", config=small_config("serverless-llm+")),
            env,
        )
        assert system.label == "ServerlessLLM+"

    def test_unknown_cluster_preset_raises(self):
        with pytest.raises(ValueError, match="unknown cluster preset"):
            resolve_cluster("tpu-pod", Environment())

    def test_legacy_keyword_form_warns_but_builds(self):
        """The loose build_system(name, env, config) form still works,
        but as a once-per-site DeprecationWarning shim."""
        from repro import _compat

        _compat._warned_sites.clear()
        with pytest.warns(DeprecationWarning, match="pass a SystemSpec"):
            legacy = build_system("aegaeon", Environment(), small_config("aegaeon"))
        spec_built = build_system(
            SystemSpec(config=small_config("aegaeon")), Environment()
        )
        assert type(legacy) is type(spec_built)
        assert legacy.gpu_count == spec_built.gpu_count

    def test_legacy_form_warns_once_per_call_site(self):
        from repro import _compat

        _compat._warned_sites.clear()
        with pytest.warns(DeprecationWarning) as caught:
            for _ in range(3):
                build_system("aegaeon", Environment(), small_config("aegaeon"))
        assert len(caught) == 1

    def test_spec_form_rejects_loose_keywords(self):
        with pytest.raises(TypeError, match="no loose keywords"):
            build_system(
                SystemSpec(config=small_config("aegaeon")),
                Environment(),
                small_config("aegaeon"),
            )

    def test_spec_form_builds_fresh_env_when_omitted(self):
        system = build_system(SystemSpec(config=small_config("aegaeon")))
        assert system.env is not None


class TestConformance:
    @pytest.mark.parametrize("name", available_systems())
    def test_protocol_and_serve(self, name):
        env = Environment()
        system = build_system(SystemSpec(system=name, config=small_config(name)), env)
        assert isinstance(system, ServingSystem)
        assert system.label

        trace = small_trace()
        result = system.serve(trace)
        assert result.label == system.label
        assert len(result.requests) == len(trace)
        assert result.finished_requests > 0
        assert isinstance(result.scale_records, list)
        assert isinstance(result.transfer_stats, list)
        # Metrics were enabled, so every system attaches a snapshot with
        # the shared proxy/sim gauges.
        assert result.metrics["proxy/finished"] == result.finished_requests
        assert result.metrics["sim/steps_executed"] > 0
        assert result.obs is system.obs

    @pytest.mark.parametrize(
        "name", ["aegaeon", "serverless-llm", "serverless-llm+"]
    )
    def test_transfer_stats_flow_through(self, name):
        """The old baseline collect() dropped transfer stats; the shared
        base must route the real per-engine stats for every system."""
        env = Environment()
        system = build_system(SystemSpec(system=name, config=small_config(name)), env)
        result = system.serve(small_trace())
        assert result.transfer_stats, f"{name} returned no transfer stats"

    def test_obs_level_does_not_change_results(self):
        """Tracing stamps simulated time; enabling it must not perturb
        any scheduling decision or token time."""
        token_times = {}
        for obs in (ObsConfig.off(), ObsConfig.full()):
            env = Environment()
            system = build_system(
                SystemSpec(config=small_config("aegaeon", obs=obs)), env
            )
            result = system.serve(small_trace())
            token_times[obs.full_trace] = {
                r.request_id: list(r.token_times) for r in result.requests
            }
        assert token_times[False] == token_times[True]

    def test_obs_off_records_nothing(self):
        env = Environment()
        system = build_system(
            SystemSpec(config=small_config("aegaeon", obs=ObsConfig.off())), env
        )
        result = system.serve(small_trace())
        assert result.metrics == {}
        assert len(result.obs.tracer) == 0


class TestAcceptance:
    def test_full_trace_run_exports_switch_timeline(self):
        """ISSUE acceptance: a full-trace Aegaeon run yields a loadable
        Chrome trace whose model-switch spans carry per-stage children."""
        env = Environment()
        system = build_system(
            SystemSpec(config=small_config("aegaeon", obs=ObsConfig.full())), env
        )
        result = system.serve(small_trace(n_models=4, rps=0.12))

        tracer = result.obs.tracer
        switches = tracer.spans_named("model_switch")
        assert switches, "no model switches traced"
        staged = [s for s in switches if tracer.children_of(s)]
        assert staged, "no switch span has per-stage children"
        for child in tracer.children_of(staged[0]):
            assert child.cat == "switch.stage"
            assert child.parent == "model_switch"

        document = json.loads(json.dumps(chrome_trace(tracer)))
        events = document["traceEvents"]
        assert any(
            e["ph"] == "X" and e["name"] == "model_switch" for e in events
        )
        assert result.transfer_stats
        assert any(
            stats.swap_in_count or stats.swap_out_count
            for stats in result.transfer_stats
        )


class TestRunSettings:
    def test_defaults(self):
        settings = RunSettings.from_env({})
        assert settings.horizon == 150.0
        assert settings.scale == 1.0
        assert settings.seed == 2025
        assert settings.obs == ObsConfig.off()

    def test_env_overrides(self):
        settings = RunSettings.from_env(
            {
                "REPRO_BENCH_HORIZON": "60",
                "REPRO_BENCH_SCALE": "0.5",
                "REPRO_BENCH_SEED": "7",
                "REPRO_OBS": "full",
            }
        )
        assert settings.horizon == 60.0
        assert settings.scale == 0.5
        assert settings.seed == 7
        assert settings.obs == ObsConfig.full()

    def test_unknown_repro_key_warns(self):
        with pytest.warns(RuntimeWarning, match="REPRO_BENCH_HORIZN"):
            RunSettings.from_env({"REPRO_BENCH_HORIZN": "60"})

    def test_typoed_tunable_warns(self):
        with pytest.warns(RuntimeWarning, match="REPRO_TUNE_QMAXX"):
            RunSettings.from_env({"REPRO_TUNE_QMAXX": "8"})

    def test_typo_warning_suggests_nearest_key(self):
        with pytest.warns(RuntimeWarning, match="did you mean 'REPRO_BENCH_HORIZON'"):
            RunSettings.from_env({"REPRO_BENCH_HORIZN": "60"})

    def test_fleet_keys_are_recognized(self):
        """REPRO_FLEET_* belongs to FleetConfig.from_env but shares the
        one envkeys registry — RunSettings must not flag it as a typo."""
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", RuntimeWarning)
            RunSettings.from_env({"REPRO_FLEET_CONTROLLER": "forecast"})

    def test_known_keys_are_quiet(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", RuntimeWarning)
            RunSettings.from_env(
                {
                    "REPRO_BENCH_HORIZON": "60",
                    "REPRO_OBS": "metrics",
                    "REPRO_INVARIANTS": "",
                    "REPRO_TUNE_QMAX": "8",
                    "OTHER_PREFIX": "ignored",
                }
            )


class TestSystemSpec:
    def test_build_matches_build_system(self):
        spec = SystemSpec(system="aegaeon", config=small_config("aegaeon"))
        system = spec.build(Environment())
        direct = build_system(
            SystemSpec(system="aegaeon", config=small_config("aegaeon")),
            Environment(),
        )
        assert type(system) is type(direct)
        assert system.gpu_count == direct.gpu_count

    def test_defaults_resolve_per_system(self):
        for name in available_systems():
            config = SystemSpec(system=name).resolve_config()
            assert config is not None
            assert hasattr(config, "cluster")

    def test_overrides_apply_without_config(self):
        spec = SystemSpec(system="muxserve", cluster="h800-pair", policies="aegaeon")
        config = spec.resolve_config()
        assert config.cluster == "h800-pair"
        assert config.policies == "aegaeon"

    def test_overrides_apply_on_top_of_config(self):
        base = small_config("aegaeon")
        spec = SystemSpec(config=base, obs=ObsConfig.off())
        config = spec.resolve_config()
        assert config.obs == ObsConfig.off()
        assert config.cluster == base.cluster  # untouched fields survive

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            SystemSpec(system="nope").resolve_config()

    def test_invariants_flag_attaches_checker(self):
        spec = SystemSpec(config=small_config("aegaeon"), invariants=True)
        system = spec.build(Environment())
        assert system.invariant_checker is not None
