"""Tests for the analytical latency model (paper Appendix A.2)."""

import pytest

from repro.hardware import A10, H800
from repro.models import (
    NAIVE_LOAD_BANDWIDTH,
    PCIE_BETA,
    LatencyModel,
    get_model,
    switch_time,
)


@pytest.fixture
def llama13b():
    return get_model("Llama-13B")


@pytest.fixture
def qwen7b():
    return get_model("Qwen-7B")


class TestSwitchTime:
    def test_eq4_paper_example(self, llama13b):
        # Paper §4.2: a 13B model over PCIe 4.0 takes at least
        # 26GB / 32GBps = 0.8125 s; with beta = 0.625 the profiled
        # estimate is 26GB / 20GBps = 1.3 s.
        time = switch_time(llama13b, H800, tp=1)
        assert time == pytest.approx(
            llama13b.weight_bytes / (32e9 * PCIE_BETA), rel=1e-9
        )
        assert 1.2 < time < 1.4

    def test_tp_parallelizes_loading(self, llama13b):
        # Figure 7 microbenchmark context: 13B at TP=2 loads its two
        # shards in parallel, ~0.65 s with the optimized loader.
        time = switch_time(llama13b, H800, tp=2)
        assert 0.6 < time < 0.7

    def test_naive_loader_much_slower(self, llama13b):
        # The unoptimized vLLM path achieves 2.83 GB/s: ~4.6 s for the
        # 13 GB per-GPU shard at TP=2 (Figure 7, right).
        shard_bytes = llama13b.weight_bytes / 2
        naive = shard_bytes / NAIVE_LOAD_BANDWIDTH
        assert 4.2 < naive < 5.0


class TestPrefill:
    def test_empty_batch_is_free(self, qwen7b):
        model = LatencyModel(qwen7b, H800)
        assert model.prefill_time([]) == 0.0

    def test_scales_superlinearly_with_length(self, qwen7b):
        model = LatencyModel(qwen7b, H800)
        t1 = model.prefill_time([1024])
        t2 = model.prefill_time([2048])
        assert t2 > 1.9 * (t1 - model.prefill_overhead)

    def test_below_one_second_regularly(self, llama13b):
        # §4.2: "the time for a prefill batch regularly falls below one
        # second on contemporary GPUs".
        model = LatencyModel(llama13b, H800)
        assert model.prefill_time([2048]) < 1.0

    def test_comparable_to_autoscaling(self, llama13b):
        # §4.2's premise: prefill batch time and switch time are the
        # same order of magnitude (both ~1 s scale).
        model = LatencyModel(llama13b, H800)
        prefill = model.prefill_time([4096])
        switch = model.switch_time()
        assert 0.05 < prefill / switch < 5.0

    def test_batch_equals_concatenation_in_linear_term(self, qwen7b):
        model = LatencyModel(qwen7b, H800, prefill_overhead=0.0)
        together = model.prefill_time([512, 512])
        apart = model.prefill_time([512]) + model.prefill_time([512])
        # Same linear+attention cost when lengths are equal.
        assert together == pytest.approx(apart)

    def test_a10_slower_than_h800(self, qwen7b):
        fast = LatencyModel(qwen7b, H800).prefill_time([1024])
        slow = LatencyModel(qwen7b, A10).prefill_time([1024])
        assert slow > 3 * fast


class TestDecode:
    def test_tens_of_milliseconds(self, llama13b):
        # §2.1/§4.3: a decoding step is "typically small (e.g., tens of
        # milliseconds)" against a 100 ms TBT target.
        model = LatencyModel(llama13b, H800)
        step = model.decode_step_time(batch_size=4, context_tokens=4 * 1024)
        assert 0.005 < step < 0.1

    def test_zero_batch_is_free(self, qwen7b):
        model = LatencyModel(qwen7b, H800)
        assert model.decode_step_time(0, 0) == 0.0

    def test_grows_with_context(self, qwen7b):
        model = LatencyModel(qwen7b, H800)
        small = model.decode_step_time(4, 1024)
        large = model.decode_step_time(4, 64 * 1024)
        assert large > small

    def test_memory_bound_at_small_batch(self, llama13b):
        # Weight streaming dominates: batch 1 vs batch 8 differ by
        # much less than 8x.
        model = LatencyModel(llama13b, H800)
        b1 = model.decode_step_time(1, 1024)
        b8 = model.decode_step_time(8, 8 * 1024)
        assert b8 < 2.0 * b1

    def test_compute_bound_at_huge_batch(self, qwen7b):
        model = LatencyModel(qwen7b, H800)
        b1 = model.decode_step_time(1, 512)
        b512 = model.decode_step_time(512, 512 * 512)
        assert b512 > 2.0 * b1

    def test_a10_meets_loose_tbt_only(self, qwen7b):
        # §7.4: 7B decode on A10 is workable against a 100 ms TBT but
        # visibly tighter than on H800.
        step = LatencyModel(qwen7b, A10).decode_step_time(4, 4096)
        assert 0.02 < step < 0.1


class TestServiceTime:
    def test_realistic_sharegpt_scale(self, qwen7b):
        # Theorem 3.1's production fit uses T = 16.79 s; a ShareGPT-like
        # request (~250 in, ~250 out) should land within a small factor.
        model = LatencyModel(qwen7b, H800)
        service = model.estimate_service_time(250, 250)
        assert 2.0 < service < 60.0

    def test_monotone_in_output_length(self, qwen7b):
        model = LatencyModel(qwen7b, H800)
        short = model.estimate_service_time(256, 64)
        long = model.estimate_service_time(256, 512)
        assert long > short

    def test_constants_exposed(self, qwen7b):
        constants = LatencyModel(qwen7b, H800).constants
        assert set(constants) == {"C1", "C2", "C3", "C4", "C5"}
        assert all(value > 0 for value in constants.values())
