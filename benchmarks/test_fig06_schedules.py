"""Figures 2 and 6: scheduling-granularity and policy illustrations.

Figure 2 contrasts request-level auto-scaling (waiting models' TTFT
absorbs whole foreign requests) with token-level auto-scaling on a
shared GPU pool: we run the same 3-model scenario through
ServerlessLLM and Aegaeon and compare per-model TTFTs.

Figure 6 contrasts unified prefill-first and decoding-first scheduling
with disaggregated scheduling.  The unified policies are scripted here
exactly as in the figure (they are not part of any serving system):
prefill-first stalls decoding during arrival bursts (TBT violations),
decoding-first delays queued prompts (TTFT violations); disaggregation
avoids both.
"""

from dataclasses import replace

from _common import run_system
from repro.analysis import format_table
from repro.baselines import ServerlessLLM
from repro.core import AegaeonConfig, AegaeonServer, DEFAULT_SLO, SloSpec
from repro.hardware import Cluster, H800
from repro.models import LatencyModel, get_model, switch_time
from repro.sim import Environment
from repro.workload import Trace, TraceRequest


def _three_model_trace():
    """Requests for models A, B, C arriving back to back (Figure 2)."""
    base = get_model("Qwen-7B")
    models = tuple(replace(base, name=f"model-{tag}") for tag in "ABC")
    requests = []
    for index, spec in enumerate(models):
        requests.append(
            TraceRequest(
                request_id=index,
                model=spec.name,
                arrival=0.5 + 0.5 * index,
                input_tokens=512,
                output_tokens=256,
            )
        )
    return Trace(requests=tuple(requests), models=models, horizon=10.0)


def test_fig02_request_vs_token_level(benchmark):
    trace = _three_model_trace()

    def run():
        # One shared GPU for all three models, both systems.
        env = Environment()
        aegaeon = AegaeonServer(
            env,
            Cluster.homogeneous(env, H800, 1, 2),
            AegaeonConfig(prefill_instances=1, decode_instances=1),
        )
        result_aegaeon = aegaeon.serve(trace)
        env = Environment()
        sllm = ServerlessLLM(env, Cluster.homogeneous(env, H800, 1, 1))
        result_sllm = sllm.serve(trace)
        return result_aegaeon, result_sllm

    result_aegaeon, result_sllm = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, result in [("token-level (Aegaeon)", result_aegaeon), ("request-level (SLLM)", result_sllm)]:
        ttfts = result.ttfts()
        rows.append([label, *(f"{t:.2f} s" for t in ttfts)])
    print()
    print(
        format_table(
            ["granularity", "TTFT(A)", "TTFT(B)", "TTFT(C)"],
            rows,
            title="Figure 2: one GPU shared by 3 models",
        )
    )
    # Request-level: C waits for A and B to fully finish (its TTFT
    # absorbs two whole foreign requests); token-level serves
    # everyone's first token promptly.
    assert result_sllm.ttfts().max() > 3 * result_aegaeon.ttfts().max()


def _figure6_trace():
    """Figure 6's scenario shape, sustained: bursty prompts, 3 models.

    Two-request bursts arrive every second, cycling through three
    models, with long prompts (3072 tokens) and long outputs (300
    tokens) — prefill pressure and decode pressure coexist, which is
    what separates the three policies.
    """
    base = get_model("Qwen-7B")
    models = tuple(replace(base, name=f"model-{tag}") for tag in "ABC")
    requests = []
    request_id = 0
    for burst in range(8):
        spec = models[burst % 3]
        for offset in range(2):
            requests.append(
                TraceRequest(
                    request_id=request_id,
                    model=spec.name,
                    arrival=burst * 1.0 + 0.05 * offset,
                    input_tokens=3072,
                    output_tokens=300,
                )
            )
            request_id += 1
    return Trace(requests=tuple(requests), models=models, horizon=10.0)


def test_fig06_unified_vs_disaggregated(benchmark):
    """Run the three Figure 6 policies as real systems on one trace."""
    from repro.core import DECODE_FIRST, PREFILL_FIRST, UnifiedServer

    trace = _figure6_trace()
    slo = SloSpec(ttft=2.0, tbt=0.1)

    def run():
        results = {}
        for policy in (PREFILL_FIRST, DECODE_FIRST):
            env = Environment()
            server = UnifiedServer(
                env, Cluster.homogeneous(env, H800, 1, 2), policy, slo=slo
            )
            results[policy] = server.serve(trace)
        env = Environment()
        aegaeon = AegaeonServer(
            env,
            Cluster.homogeneous(env, H800, 1, 2),
            AegaeonConfig(prefill_instances=1, decode_instances=1, slo=slo),
        )
        results["disaggregated"] = aegaeon.serve(trace)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (label, f"{result.slo_attainment():.1%}", f"{result.ttfts().max():.2f} s")
        for label, result in results.items()
    ]
    print()
    print(
        format_table(
            ["policy", "SLO attainment", "worst TTFT"],
            rows,
            title="Figure 6: 16 requests / 3 models / 2 GPUs (TTFT 2s, TBT 100ms)",
        )
    )
    from repro.core import DECODE_FIRST as DF, PREFILL_FIRST as PF

    disaggregated = results["disaggregated"]
    # The Figure 6 ordering: disaggregated > prefill-first > decode-first.
    assert disaggregated.slo_attainment() > results[PF].slo_attainment()
    assert results[PF].slo_attainment() > results[DF].slo_attainment()
    # Decode-first specifically blows TTFTs (Figure 6(b)).
    assert results[DF].ttfts().max() > 3 * disaggregated.ttfts().max()
