"""Table 1: KV-cache shape and per-token size across models.

The 20x spread in per-token KV size (128 KB to 2560 KB) is what forces
the unified KV cache to be shape-aware (slab allocation, §5.2).
"""

from repro.analysis import format_table
from repro.models import get_model, kv_shape

PAPER_ROWS = {
    "Qwen-7B": ((32, 2, 32, 128), 512),
    "InternLM2.5-7B": ((32, 2, 8, 128), 128),
    "Llama-13B": ((40, 2, 40, 128), 800),
    "Qwen-72B": ((80, 2, 64, 128), 2560),
}


def test_tab01_kv_cache_shapes(benchmark):
    def run():
        return {
            name: kv_shape(get_model(name)) for name in PAPER_ROWS
        }

    shapes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, shape in shapes.items():
        rows.append(
            (
                name,
                str(shape.dims),
                f"{shape.bytes_per_token // 1024} KB",
                f"{PAPER_ROWS[name][1]} KB",
            )
        )
    print()
    print(
        format_table(
            ["Model", "KV Cache Shape", "KV Cache Size", "paper"],
            rows,
            title="Table 1: per-token KV cache (16-bit)",
        )
    )
    for name, shape in shapes.items():
        expected_dims, expected_kb = PAPER_ROWS[name]
        assert shape.dims == expected_dims
        assert shape.bytes_per_token == expected_kb * 1024
