"""Figure 4 + Theorem 3.1: active model count over time.

M=100 models at lambda=0.037 req/s each with T=16.79 s of service time:
the simulated active-model count fluctuates around the theorem's
E[m] = M(1 - e^(-lambda*T)) ~ 46.5, bounding request-level auto-scaling
to fewer than 3 models per GPU.
"""

import numpy as np

from repro.analysis import (
    expected_active_models,
    format_series,
    models_per_gpu_bound,
    simulate_active_models,
)

M = 100
LAMBDA = 0.037
SERVICE_TIME = 16.79
HORIZON = 2000.0


def test_fig04_active_model_count(benchmark):
    def run():
        rng = np.random.default_rng(4)
        return simulate_active_models(M, LAMBDA, SERVICE_TIME, HORIZON, rng)

    times, counts = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = expected_active_models(M, LAMBDA, SERVICE_TIME)

    print()
    stride = len(times) // 10
    print(
        format_series(
            [f"{t:.0f}" for t in times[::stride]],
            counts[::stride].astype(float),
            "time (s)",
            "active models",
        )
    )
    steady = counts[50:]
    print(
        f"E[m] (Theorem 3.1) = {expected:.2f} (paper: 46.55); "
        f"simulated mean = {steady.mean():.2f} +/- {steady.std():.2f}"
    )
    print(
        f"request-level pooling bound: {models_per_gpu_bound(M, LAMBDA, SERVICE_TIME):.2f} "
        f"models/GPU (paper: < 3)"
    )
    assert abs(steady.mean() - expected) / expected < 0.05
    assert models_per_gpu_bound(M, LAMBDA, SERVICE_TIME) < 3.0
