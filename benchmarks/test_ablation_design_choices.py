"""Ablations of the paper's stated design choices.

The paper makes three empirical design claims beyond the headline
optimizations, each ablated here:

* §4.2: ``MAX_GPSIZE = 8`` via grid search — "larger values behave
  identically because groups seldom grow past that size, and smaller
  values can still cause excessive scaling under high load".
* §4.3: ``QMAX = 4 s`` — "we find Aegaeon to be robust under
  alternative settings".
* §4.2: prefill batch size one — "smaller batches reduce overall
  waiting time without significantly impacting throughput".  (We ablate
  the closely related choice of disabling prefetch, quantifying how
  much of Aegaeon's margin each §5 feature contributes end to end.)
"""

from _common import bench_scale, make_trace
from repro.analysis import format_table
from repro.core import AegaeonConfig, AegaeonServer, DEFAULT_SLO
from repro.core.prefill_sched import GroupedPrefillScheduler
from repro.engine import EngineConfig
from repro.hardware import Cluster
from repro.sim import Environment


def _run(trace, max_group_size=None, qmax=None, engine=None):
    env = Environment()
    config = AegaeonConfig(engine=engine if engine is not None else EngineConfig())
    server = AegaeonServer(env, Cluster.testbed(env), config)
    if max_group_size is not None:
        server.prefill_scheduler = GroupedPrefillScheduler(
            server.prefill_instances, max_group_size=max_group_size
        )
    if qmax is not None:
        for instance in server.decode_instances:
            instance.qmax = qmax
    return server.serve(trace)


def test_ablation_max_gpsize(benchmark):
    sizes = [1, 4, 8, 16] if bench_scale() >= 1.0 else [1, 8]
    trace = make_trace(48, 0.25, seed=11025)

    def run():
        return {size: _run(trace, max_group_size=size).slo_attainment() for size in sizes}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["MAX_GPSIZE", "SLO attainment"],
            [(size, f"{value:.1%}") for size, value in results.items()],
            title="Ablation: prefill group size cap (48 models x 0.25 RPS)",
        )
    )
    # Larger-than-8 behaves like 8 (groups seldom grow past it)...
    assert abs(results[sizes[-1]] - results[8 if 8 in results else sizes[-1]]) < 0.05
    # ...and ungrouped prefill (size 1) pays for the extra scaling.
    assert results[1] <= results[sizes[-1]] + 0.02


def test_ablation_qmax(benchmark):
    qmaxes = [1.0, 2.0, 4.0, 8.0] if bench_scale() >= 1.0 else [2.0, 4.0]
    trace = make_trace(48, 0.1, seed=11125)

    def run():
        return {q: _run(trace, qmax=q).slo_attainment() for q in qmaxes}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["QMAX (s)", "SLO attainment"],
            [(q, f"{value:.1%}") for q, value in results.items()],
            title="Ablation: decode turn quota cap (48 models x 0.1 RPS)",
        )
    )
    # §4.3's robustness claim: attainment varies little across 2-8 s.
    window = [results[q] for q in qmaxes if q >= 2.0]
    assert max(window) - min(window) < 0.10


def test_ablation_engine_features_end_to_end(benchmark):
    trace = make_trace(40, 0.1, seed=11225)
    variants = {
        "full": EngineConfig(),
        "no prefetch": EngineConfig(prefetch=False),
        "no fine sync": EngineConfig(prefetch=False, fine_grained_sync=False),
        "no explicit mem": EngineConfig(
            prefetch=False, fine_grained_sync=False, explicit_memory=False
        ),
    }

    def run():
        return {
            label: _run(trace, engine=config).slo_attainment()
            for label, config in variants.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["engine variant", "SLO attainment"],
            [(label, f"{value:.1%}") for label, value in results.items()],
            title="Ablation: §5 features end to end (40 models x 0.1 RPS)",
        )
    )
    # Each removed feature can only hurt; removing explicit memory
    # (naive loading + GC) is catastrophic at this pooling level.
    assert results["full"] >= results["no fine sync"] - 0.03
    assert results["no explicit mem"] < results["full"] - 0.2
