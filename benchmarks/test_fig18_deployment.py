"""Figure 18 + §7.5: production deployment study.

The beta deployment serves 28 small (1.8-7B, TP=1) and 19 large
(32-72B, TP=4) models with arrival rates in [0.01, 1.13] (mean 0.037) on
213 H20 GPUs — models that previously needed 1,192 dedicated GPUs, an
82% saving.  GPU utilization rises from 13.3%-33.9% (dedicated, low /
high load) to ~48% under Aegaeon.

This bench reproduces both numbers at reduced scale: it sizes a
dedicated deployment versus an Aegaeon pool for a deployment-shaped
workload, and measures serving-engine utilization before/after.
"""

import numpy as np

from _common import bench_horizon
from repro.analysis import expected_active_models, format_table
from repro.baselines import DedicatedServing
from repro.core import AegaeonConfig, AegaeonServer, DEFAULT_SLO
from repro.engine import EngineConfig
from repro.hardware import Cluster, H20
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import deployment_rates, sharegpt, materialize_trace

# Reduced-scale deployment: small-model pool only (TP=1), the paper's
# 28-model tier.  Redundancy mirrors production practice (§7.5: both
# deployments over-provision versus the bare minimum).
MODEL_COUNT = 28


def _deployment_trace(seed=9025):
    rng = np.random.default_rng(seed)
    models = market_mix(MODEL_COUNT, min_b=1.5, max_b=7.9)
    rates = deployment_rates(MODEL_COUNT, rng)
    return materialize_trace(models, list(rates), sharegpt(), bench_horizon(), seed=seed)


def test_fig18_deployment_utilization_and_savings(benchmark):
    def run():
        trace = _deployment_trace()
        window = 15.0
        # Before: dedicated instances, one GPU per model.  "Low load"
        # and "high load" are the least- and most-loaded instances.
        env = Environment()
        dedicated = DedicatedServing(env, H20)

        dedicated_series: dict[str, list[float]] = {}

        def sample_dedicated():
            previous: dict[str, float] = {}
            while env.now < trace.horizon:
                yield env.timeout(window)
                for name, instance in dedicated.instances.items():
                    busy = instance.busy_time
                    delta = busy - previous.get(name, 0.0)
                    previous[name] = busy
                    dedicated_series.setdefault(name, []).append(delta / window)

        dedicated.prepare(trace)
        env.process(sample_dedicated())
        dedicated.prepare = lambda t: None  # placement already built
        result_before = dedicated.serve(trace)
        horizon = trace.horizon
        utilizations = sorted(
            instance.utilization(elapsed=horizon)
            for instance in dedicated.instances.values()
        )
        before_low, before_high = utilizations[0], utilizations[-1]
        before_mean = float(np.mean(utilizations))
        # The "Before" time series of the least/most loaded instances.
        totals = {
            name: sum(series) for name, series in dedicated_series.items()
        }
        low_name = min(totals, key=totals.get)
        high_name = max(totals, key=totals.get)
        series_before = {
            "low": dedicated_series[low_name],
            "high": dedicated_series[high_name],
        }

        # After: one Aegaeon pool sized by sweeping down the instance
        # count until the 90% SLO frontier.
        pool_sizes = [(2, 4), (2, 3), (1, 3), (1, 2)]
        chosen = None
        series_after: list[float] = []
        for prefill, decode in pool_sizes:
            env = Environment()
            cluster = Cluster.homogeneous(env, H20, 1, prefill + decode)
            server = AegaeonServer(
                env,
                cluster,
                AegaeonConfig(
                    prefill_instances=prefill,
                    decode_instances=decode,
                    engine=EngineConfig(weight_buffer_bytes=30 * 1024**3),
                ),
            )
            samples: list[float] = []

            def sample_aegaeon(server=server, samples=samples, env=env):
                instances = [*server.prefill_instances, *server.decode_instances]
                previous = 0.0
                while env.now < trace.horizon:
                    yield env.timeout(window)
                    busy = sum(inst.engine.busy_time for inst in instances)
                    samples.append((busy - previous) / (window * len(instances)))
                    previous = busy

            env.process(sample_aegaeon())
            result_after = server.serve(trace)
            attainment = result_after.slo_attainment()
            utilization = float(
                np.mean(
                    [
                        instance.engine.utilization(elapsed=horizon)
                        for instance in [
                            *server.prefill_instances,
                            *server.decode_instances,
                        ]
                    ]
                )
            )
            if attainment >= 0.90:
                chosen = (prefill + decode, attainment, utilization)
                series_after = samples
            else:
                break
        return trace, (before_low, before_high, before_mean), chosen, (
            series_before,
            series_after,
            window,
        )

    trace, before, chosen, series = benchmark.pedantic(run, rounds=1, iterations=1)
    before_low, before_high, before_mean = before
    assert chosen is not None, "Aegaeon failed to meet SLO at any pool size"
    gpus_after, attainment, util_after = chosen
    saving = 1 - gpus_after / MODEL_COUNT

    rows = [
        ("Before (dedicated, low load)", MODEL_COUNT, f"{before_low:.1%}", "-"),
        ("Before (dedicated, high load)", MODEL_COUNT, f"{before_high:.1%}", "-"),
        ("Before (dedicated, mean)", MODEL_COUNT, f"{before_mean:.1%}", "-"),
        ("After (Aegaeon)", gpus_after, f"{util_after:.1%}", f"{attainment:.1%}"),
    ]
    print()
    print(
        format_table(
            ["deployment", "GPUs", "mean GPU util", "SLO"],
            rows,
            title=f"Figure 18 / §7.5: {MODEL_COUNT} models, "
            f"rates in [0.01, 1.13] (mean 0.037), horizon {trace.horizon:.0f}s",
        )
    )
    print(
        f"GPU saving: {MODEL_COUNT} -> {gpus_after} GPUs = {saving:.1%} "
        f"(paper: 1192 -> 213 = 82%)"
    )
    # The Figure 18 time series (utilization per sampling window).
    series_before, series_after, window = series
    print(f"\nGPU utilization over time ({window:.0f}s windows):")
    for label, values in [
        ("Before (low load)", series_before["low"]),
        ("Before (high load)", series_before["high"]),
        ("After (Aegaeon)", series_after),
    ]:
        line = " ".join(f"{v:4.0%}" for v in values[:10])
        print(f"  {label:<24} {line}")
    expected_active = expected_active_models(MODEL_COUNT, 0.037, 10.0)
    print(f"(expected active models at any instant: ~{expected_active:.1f})")

    # The paper's effects, at reduced scale: a large GPU saving...
    assert saving > 0.5
    # ...and utilization rising well above the dedicated mean.
    assert util_after > before_mean * 1.5
