"""Figure 12: end-to-end SLO attainment on alternative datasets.

ShareGPT-ix2 doubles input lengths; ShareGPT-ox2 doubles output lengths.
Longer outputs increase HOL blocking for request-level auto-scaling, so
Aegaeon's lead widens (up to 2.5x goodput on ox2); longer inputs cost
every system a little, the request-level baselines most.
"""

from _common import SYSTEMS, bench_scale, make_trace, run_system
from repro.analysis import format_table
from repro.core import DEFAULT_SLO
from repro.workload import sharegpt_ix2, sharegpt_ox2

COMPARED = ["Aegaeon", "ServerlessLLM", "ServerlessLLM+"]


def _sweep(dataset, model_counts, rps, seed_offset):
    results = {name: [] for name in COMPARED}
    for index, count in enumerate(model_counts):
        trace = make_trace(count, rps, dataset=dataset, seed=3025 + seed_offset + index)
        for name in COMPARED:
            result = run_system(SYSTEMS[name](DEFAULT_SLO), trace)
            results[name].append((count, result.slo_attainment()))
    return results


def _print(title, results):
    xs = [x for x, _ in next(iter(results.values()))]
    rows = []
    for x in xs:
        rows.append([x, *(f"{dict(results[n])[x]:.1%}" for n in results)])
    print()
    print(format_table(["#models", *results.keys()], rows, title=title))


def test_fig12a_input_x2_rps01(benchmark):
    counts = [20, 40, 60] if bench_scale() >= 1.0 else [20, 40]

    def run():
        return _sweep(sharegpt_ix2(), counts, 0.1, 0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _print("Figure 12(a): ShareGPT-ix2, RPS=0.1", results)
    aegaeon, sllm = dict(results["Aegaeon"]), dict(results["ServerlessLLM"])
    top = counts[-1]
    assert aegaeon[top] > sllm[top]


def test_fig12b_output_x2_rps01(benchmark):
    counts = [20, 40, 60] if bench_scale() >= 1.0 else [20, 40]

    def run():
        return _sweep(sharegpt_ox2(), counts, 0.1, 10)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _print("Figure 12(b): ShareGPT-ox2, RPS=0.1", results)
    aegaeon, sllm = dict(results["Aegaeon"]), dict(results["ServerlessLLM"])
    # Longer decoding aggravates HOL blocking for request-level scaling:
    # Aegaeon's margin is larger than on the base dataset.
    assert aegaeon[40] > sllm[40] + 0.10


def test_fig12cd_rps05(benchmark):
    counts = [16, 24, 32] if bench_scale() >= 1.0 else [16]

    def run():
        return {
            "ix2": _sweep(sharegpt_ix2(), counts, 0.5, 20),
            "ox2": _sweep(sharegpt_ox2(), counts, 0.5, 30),
        }

    both = benchmark.pedantic(run, rounds=1, iterations=1)
    _print("Figure 12(c): ShareGPT-ix2, RPS=0.5", both["ix2"])
    _print("Figure 12(d): ShareGPT-ox2, RPS=0.5", both["ox2"])
    for key in ("ix2", "ox2"):
        aegaeon = dict(both[key]["Aegaeon"])
        sllm = dict(both[key]["ServerlessLLM"])
        assert aegaeon[counts[-1]] > sllm[counts[-1]]
