"""Figures 8/10: preemptive auto-scaling cost ablation (T0 -> T3).

Measures a full preemptive switch cycle — stop serving model A (KV
laden), bring up model B, resume with B's KV resident — under each
optimization level:

* T0: unoptimized (fresh engine init, GC pass, naive loader, blocking sync)
* T1: + component reuse (§5.1)
* T2: + explicit memory management (§5.2)
* T3: + fine-grained KV synchronization (§5.3)
* T3+prefetch: with the next model prefetched during the previous turn

The paper's headline: the full stack removes ~97% of T0.
"""

from repro.analysis import format_table
from repro.engine import AegaeonEngine, EngineConfig
from repro.hardware import H800, Node
from repro.memory import HostModelCache, SlabAllocator
from repro.models import get_model, kv_shape
from repro.sim import Environment
from repro.transfer import RequestKv

GiB = 1024**3
MiB = 1024**2

MODEL_A = "Llama-13B"
MODEL_B = "Qwen-14B"
BATCH = 8
TOKENS = 512


def _switch_cycle(config: EngineConfig, use_prefetch: bool = False) -> float:
    env = Environment()
    node = Node(env, H800, gpu_count=1)
    cache = HostModelCache(640 * GiB)
    for name in (MODEL_A, MODEL_B):
        cache.insert(name, get_model(name).weight_bytes)
    cpu_kv = SlabAllocator(320 * GiB, 256 * MiB)
    engine = AegaeonEngine(
        env, node, node.gpus, cache, cpu_kv, config=config, pre_initialized=True
    )
    spec_a, spec_b = get_model(MODEL_A), get_model(MODEL_B)
    shape_a, shape_b = kv_shape(spec_a), kv_shape(spec_b)

    def scenario():
        # Serve A with a KV-laden batch.
        yield from engine.scale_to(spec_a)
        batch_a = []
        for request_id in range(BATCH):
            kv = RequestKv(request_id=request_id, shape=shape_a, tokens=TOKENS)
            engine.kv.alloc_gpu(kv)
            batch_a.append(kv)
        # B's requests wait in the CPU cache (offloaded by a prefill
        # instance earlier).
        batch_b = []
        for request_id in range(BATCH, 2 * BATCH):
            kv = RequestKv(request_id=request_id, shape=shape_b, tokens=TOKENS)
            kv.cpu_blocks = cpu_kv.alloc(shape_b, kv.block_bytes, kv.block_count)
            kv.location = "cpu"
            batch_b.append(kv)
        if use_prefetch:
            engine.prefetch(spec_b)
            # A decode turn runs while the prefetch stream loads.
            yield from engine.decode_for(spec_a, 4.0)

        start = env.now
        # Preemptive scale-down: offload A's KV.
        for kv in batch_a:
            engine.kv.swap_out(kv)
        if not config.fine_grained_sync:
            yield from engine.kv.drain()
        # Scale-up: engine switch + weights.
        yield from engine.scale_to(spec_b)
        # Bring B's KV in and wait until inference may resume.
        for kv in batch_b:
            engine.kv.swap_in(kv)
        if not config.fine_grained_sync:
            yield from engine.kv.drain()
        else:
            yield from engine.kv.wait_ready(batch_b[0])
        return env.now - start

    return env.run(until=env.process(scenario()))


LEVELS = [
    ("T0 unoptimized", EngineConfig.unoptimized(), False),
    (
        "T1 +component reuse",
        EngineConfig(
            reuse_components=True,
            explicit_memory=False,
            fine_grained_sync=False,
            prefetch=False,
        ),
        False,
    ),
    (
        "T2 +explicit memory",
        EngineConfig(
            reuse_components=True,
            explicit_memory=True,
            fine_grained_sync=False,
            prefetch=False,
        ),
        False,
    ),
    (
        "T3 +fine-grained sync",
        EngineConfig(
            reuse_components=True,
            explicit_memory=True,
            fine_grained_sync=True,
            prefetch=False,
        ),
        False,
    ),
    ("T3 +prefetch", EngineConfig(), True),
]


def test_fig08_autoscaling_ablation(benchmark):
    def run():
        return {
            label: _switch_cycle(config, use_prefetch)
            for label, config, use_prefetch in LEVELS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    t0 = results["T0 unoptimized"]
    rows = [
        (label, f"{cost:.3f} s", f"{1 - cost / t0:.1%}")
        for label, cost in results.items()
    ]
    print()
    print(
        format_table(
            ["level", "switch cycle", "reduction vs T0"],
            rows,
            title=f"Figure 8/10: preemptive scaling {MODEL_A} -> {MODEL_B} "
            f"({BATCH} reqs x {TOKENS} tokens KV)",
        )
    )

    assert t0 > 20.0  # "tens of seconds" unoptimized (§3.2)
    # §5.1: reuse removes >80% of the engine-initialization component
    # (the init stages themselves; loading/KV still dominate T1).
    from repro.engine import DEFAULT_INIT_COSTS

    init_total = DEFAULT_INIT_COSTS.fresh_total(get_model(MODEL_B), tp=1)
    load = DEFAULT_INIT_COSTS.naive_load(get_model(MODEL_B), tp=1)
    removed = t0 - results["T1 +component reuse"]
    assert removed > 0.8 * (init_total - load)
    assert results["T3 +fine-grained sync"] < 2.0
    # The 97% headline, achieved with prefetch in the steady state.
    assert 1 - results["T3 +prefetch"] / t0 > 0.95
    order = [results[label] for label, _, _ in LEVELS]
    assert all(a >= b * 0.99 for a, b in zip(order, order[1:]))  # monotone
