"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series of one paper table or
figure.  Full-paper scale (80 models x 0.5 RPS for long horizons) is
CPU-minutes in pure Python, so benches default to a reduced horizon and
a trimmed parameter grid, printing exactly what they ran.  Environment
overrides:

* ``REPRO_BENCH_HORIZON`` — simulated seconds of trace (default 150)
* ``REPRO_BENCH_SCALE``   — multiplies the parameter grids (default 1.0)
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

from repro.analysis import ServingResult
from repro.baselines import MuxServe, ServerlessLLM, ServerlessLLMPlus
from repro.core import AegaeonConfig, AegaeonServer, DEFAULT_SLO, SloSpec
from repro.engine import EngineConfig
from repro.hardware import Cluster
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import Dataset, sharegpt, synthesize_trace

__all__ = [
    "bench_horizon",
    "bench_scale",
    "make_trace",
    "run_system",
    "SYSTEMS",
    "default_seed",
]

DEFAULT_HORIZON = 150.0
SEED = 2025


def bench_horizon() -> float:
    """Simulated trace horizon for serving benches."""
    return float(os.environ.get("REPRO_BENCH_HORIZON", DEFAULT_HORIZON))


def bench_scale() -> float:
    """Grid scale factor (1.0 = default trimmed grids)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def default_seed() -> int:
    return SEED


def make_trace(
    model_count: int,
    rps: float,
    dataset: Dataset | None = None,
    horizon: float | None = None,
    seed: int = SEED,
):
    """The paper's §7.1 synthesis: ``model_count`` models at ``rps`` each."""
    models = market_mix(model_count)
    dataset = dataset if dataset is not None else sharegpt()
    horizon = horizon if horizon is not None else bench_horizon()
    return synthesize_trace(models, [rps] * model_count, dataset, horizon, seed=seed)


def aegaeon_factory(slo: SloSpec = DEFAULT_SLO, engine: EngineConfig = EngineConfig()):
    def build(env: Environment):
        return AegaeonServer.paper_testbed(env, slo=slo, engine=engine)

    return build


def sllm_factory(slo: SloSpec = DEFAULT_SLO):
    def build(env: Environment):
        return ServerlessLLM(env, Cluster.testbed(env), slo=slo)

    return build


def sllm_plus_factory(slo: SloSpec = DEFAULT_SLO):
    def build(env: Environment):
        return ServerlessLLMPlus(env, Cluster.testbed(env), slo=slo)

    return build


def muxserve_factory(slo: SloSpec = DEFAULT_SLO):
    def build(env: Environment):
        return MuxServe(env, Cluster.testbed(env), slo=slo)

    return build


# The §7.2 comparison set on the 16-GPU testbed.
SYSTEMS: dict[str, Callable[[SloSpec], Callable[[Environment], object]]] = {
    "Aegaeon": aegaeon_factory,
    "ServerlessLLM": sllm_factory,
    "ServerlessLLM+": sllm_plus_factory,
    "MuxServe": muxserve_factory,
}


def run_system(factory: Callable[[Environment], object], trace) -> ServingResult:
    """Build a fresh environment + system and serve the trace."""
    env = Environment()
    system = factory(env)
    return system.serve(trace)


def trimmed(grid: Sequence, limit_when_small: int | None = None) -> list:
    """Apply REPRO_BENCH_SCALE to a parameter grid."""
    scale = bench_scale()
    if scale >= 1.0:
        return list(grid)
    keep = max(1, round(len(grid) * scale))
    return list(grid)[:keep]
