"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series of one paper table or
figure.  Full-paper scale (80 models x 0.5 RPS for long horizons) is
CPU-minutes in pure Python, so benches default to a reduced horizon and
a trimmed parameter grid, printing exactly what they ran.  Run-level
knobs resolve through :class:`repro.core.RunSettings`:

* ``REPRO_BENCH_HORIZON`` — simulated seconds of trace (default 150)
* ``REPRO_BENCH_SCALE``   — multiplies the parameter grids (default 1.0)
* ``REPRO_BENCH_SEED``    — workload seed (default 2025)
* ``REPRO_OBS``           — observability level (off | metrics | full)

Systems are constructed through :func:`repro.core.build_system`, so every
bench exercises the same :class:`repro.core.ServingSystem` surface the
examples and tests use.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core import (
    AegaeonConfig,
    DEFAULT_SLO,
    MuxServeConfig,
    RunSettings,
    ServerlessLLMConfig,
    SloSpec,
    SystemSpec,
    build_system,
)
from repro.analysis import ServingResult
from repro.engine import EngineConfig
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import Dataset, sharegpt, materialize_trace

__all__ = [
    "bench_horizon",
    "bench_scale",
    "bench_settings",
    "make_trace",
    "run_system",
    "SYSTEMS",
    "default_seed",
]

DEFAULT_HORIZON = 150.0
SEED = 2025


def bench_settings() -> RunSettings:
    """The run-level knobs resolved from the environment."""
    return RunSettings.from_env()


def bench_horizon() -> float:
    """Simulated trace horizon for serving benches."""
    return bench_settings().horizon


def bench_scale() -> float:
    """Grid scale factor (1.0 = default trimmed grids)."""
    return bench_settings().scale


def default_seed() -> int:
    return bench_settings().seed


def make_trace(
    model_count: int,
    rps: float,
    dataset: Dataset | None = None,
    horizon: float | None = None,
    seed: int = SEED,
):
    """The paper's §7.1 synthesis: ``model_count`` models at ``rps`` each."""
    models = market_mix(model_count)
    dataset = dataset if dataset is not None else sharegpt()
    horizon = horizon if horizon is not None else bench_horizon()
    return materialize_trace(models, [rps] * model_count, dataset, horizon, seed=seed)


def aegaeon_factory(slo: SloSpec = DEFAULT_SLO, engine: EngineConfig = EngineConfig()):
    def build(env: Environment):
        config = AegaeonConfig(
            engine=engine, slo=slo, obs=bench_settings().obs
        )
        return build_system(SystemSpec(system="aegaeon", config=config), env)

    return build


def sllm_factory(slo: SloSpec = DEFAULT_SLO):
    def build(env: Environment):
        config = ServerlessLLMConfig(slo=slo, obs=bench_settings().obs)
        return build_system(SystemSpec(system="serverless-llm", config=config), env)

    return build


def sllm_plus_factory(slo: SloSpec = DEFAULT_SLO):
    def build(env: Environment):
        config = ServerlessLLMConfig(slo=slo, obs=bench_settings().obs)
        return build_system(SystemSpec(system="serverless-llm+", config=config), env)

    return build


def muxserve_factory(slo: SloSpec = DEFAULT_SLO):
    def build(env: Environment):
        config = MuxServeConfig(slo=slo, obs=bench_settings().obs)
        return build_system(SystemSpec(system="muxserve", config=config), env)

    return build


# The §7.2 comparison set on the 16-GPU testbed.
SYSTEMS: dict[str, Callable[[SloSpec], Callable[[Environment], object]]] = {
    "Aegaeon": aegaeon_factory,
    "ServerlessLLM": sllm_factory,
    "ServerlessLLM+": sllm_plus_factory,
    "MuxServe": muxserve_factory,
}


def run_system(factory: Callable[[Environment], object], trace) -> ServingResult:
    """Build a fresh environment + system and serve the trace."""
    env = Environment()
    system = factory(env)
    return system.serve(trace)


def trimmed(grid: Sequence, limit_when_small: int | None = None) -> list:
    """Apply REPRO_BENCH_SCALE to a parameter grid."""
    scale = bench_scale()
    if scale >= 1.0:
        return list(grid)
    keep = max(1, round(len(grid) * scale))
    return list(grid)[:keep]
