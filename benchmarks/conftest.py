"""Benchmark-suite configuration.

Makes ``_common`` importable from each bench module and keeps benchmark
output readable (each bench prints its table/series explicitly).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
