"""Figure 1: concurrent LLM serving workloads in production.

(a) CDF of model invocations — 94.1% of models receive 1.35% of
requests; (b) request-rate fluctuation of a hot model, with bursts
exceeding the reserved rate.
"""

import numpy as np

from repro.analysis import format_series, format_table
from repro.workload import (
    BurstConfig,
    PRODUCTION_SHAPE,
    bursty_arrivals,
    market_rates,
    rate_series,
    request_share_cdf,
)


def test_fig01a_invocation_cdf(benchmark):
    def run():
        rates = market_rates(PRODUCTION_SHAPE)
        return request_share_cdf(rates)

    model_fraction, request_fraction = benchmark.pedantic(run, rounds=1, iterations=1)

    checkpoints = [0.01, 0.059, 0.25, 0.50, 0.75, 1.0]
    rows = []
    for point in checkpoints:
        index = min(
            int(point * len(model_fraction)) - 1, len(model_fraction) - 1
        )
        rows.append((f"{point:.1%}", f"{request_fraction[max(index, 0)]:.2%}"))
    print()
    print(format_table(["top models", "request share"], rows, title="Figure 1(a): CDF of model invocations"))

    # The published skew: the 94.1% tail gets 1.35% of requests, i.e.
    # the top 5.9% get 98.65%.
    head_index = int(0.059 * len(model_fraction)) - 1
    head_share = request_fraction[head_index]
    print(f"top 5.9% of models receive {head_share:.2%} of requests (paper: 98.65%)")
    assert abs(head_share - 0.9865) < 0.01


def test_fig01b_burst_rate(benchmark):
    horizon = 700.0
    base = 600.0

    def run():
        rng = np.random.default_rng(7)
        arrivals = bursty_arrivals(
            base, horizon, rng,
            burst=BurstConfig(episode_rate=1 / 150.0, episode_duration=40.0, multiplier=1.5),
        )
        return rate_series(arrivals, horizon, window=10.0)

    centers, rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_series(
            [f"{t:.0f}" for t in centers[::7]],
            rates[::7],
            "time (s)",
            "rate (req/s)",
        )
    )
    print(f"reserved={base:.0f} req/s, peak={rates.max():.0f} req/s")
    # Figure 1(b)'s point: bursts exceed the reserved rate.
    assert rates.max() > base * 1.1
