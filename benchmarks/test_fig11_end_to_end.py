"""Figure 11: end-to-end SLO attainment on the 16-GPU testbed (ShareGPT).

(a) RPS = 0.1 per model, sweeping the model count;
(b) RPS = 0.5 per model, sweeping the model count;
(c) 40 models, sweeping the per-model arrival rate.

The reproduction target is the *shape*: Aegaeon sustains roughly 2x
(RPS 0.1) and 2.5x (RPS 0.5) the load of ServerlessLLM at the 90%
attainment frontier, supports ~7 models per decoding GPU, and MuxServe
is capped at 32 models by GPU memory.
"""

from _common import SYSTEMS, bench_scale, make_trace, run_system
from repro.analysis import format_table, goodput_frontier
from repro.core import DEFAULT_SLO


def _sweep(setups, rps_of, models_of, seed_offset=0):
    results = {name: [] for name in SYSTEMS}
    for index, setup in enumerate(setups):
        trace = make_trace(models_of(setup), rps_of(setup), seed=2025 + seed_offset + index)
        for name, factory in SYSTEMS.items():
            result = run_system(factory(DEFAULT_SLO), trace)
            results[name].append((setup, result.slo_attainment()))
    return results


def _print_grid(title, x_label, results):
    xs = [x for x, _ in next(iter(results.values()))]
    rows = []
    for x in xs:
        row = [x]
        for name in results:
            attainment = dict(results[name])[x]
            row.append(f"{attainment:.1%}")
        rows.append(row)
    print()
    print(format_table([x_label, *results.keys()], rows, title=title))
    for name, points in results.items():
        frontier = goodput_frontier(points)
        print(f"  {name}: 90% frontier at {x_label} = {frontier}")


def test_fig11a_rps01_model_sweep(benchmark):
    model_counts = [20, 40, 60, 70, 80]
    if bench_scale() < 1.0:
        model_counts = model_counts[:3]

    def run():
        return _sweep(model_counts, lambda m: 0.1, lambda m: m)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_grid("Figure 11(a): SLO attainment, RPS=0.1", "#models", results)

    aegaeon = dict(results["Aegaeon"])
    sllm = dict(results["ServerlessLLM"])
    # Aegaeon holds up at model counts where request-level scaling has
    # collapsed (2x frontier).
    assert aegaeon[40] > sllm[40]
    assert aegaeon[60] > sllm[60] + 0.05
    frontier_aegaeon = goodput_frontier(results["Aegaeon"]) or 0
    frontier_sllm = goodput_frontier(results["ServerlessLLM"]) or 1
    assert frontier_aegaeon >= 1.5 * frontier_sllm


def test_fig11b_rps05_model_sweep(benchmark):
    model_counts = [16, 24, 32, 40]
    if bench_scale() < 1.0:
        model_counts = model_counts[:2]

    def run():
        return _sweep(model_counts, lambda m: 0.5, lambda m: m, seed_offset=10)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_grid("Figure 11(b): SLO attainment, RPS=0.5", "#models", results)

    aegaeon = dict(results["Aegaeon"])
    sllm = dict(results["ServerlessLLM"])
    assert aegaeon[24] > sllm[24]
    # §7.2: under bursty high rates SJF is no longer clearly better —
    # both request-level systems collapse well before Aegaeon.
    assert aegaeon[32] > dict(results["ServerlessLLM+"])[32]


def test_fig11c_rate_sweep_40_models(benchmark):
    rates = [0.05, 0.1, 0.25, 0.5]
    if bench_scale() < 1.0:
        rates = rates[:2]

    def run():
        return _sweep(rates, lambda r: r, lambda r: 40, seed_offset=20)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_grid("Figure 11(c): SLO attainment, 40 models", "rate (req/s)", results)

    aegaeon = dict(results["Aegaeon"])
    sllm = dict(results["ServerlessLLM"])
    # Aegaeon remains effective over a wide range of arrival rates
    # while request-level scaling is penalized early.
    assert aegaeon[0.25] > sllm[0.25]
