"""Figure 7 (right): engine initialization latency breakdown.

A cold vLLM-style initialization of a 13B model at TP=2 costs 26.9 s
across five stages; with Aegaeon's component reuse and quick loading,
the per-switch engine cost collapses to the weight copy (~0.65 s for
the 13 GB shard at 20 GB/s) plus a ~0.15 s reconfiguration.
"""

from repro.analysis import format_table
from repro.engine import DEFAULT_INIT_COSTS
from repro.hardware import H800
from repro.models import get_model, switch_time

MODEL = "Llama-13B"
TP = 2


def test_fig07_init_latency_breakdown(benchmark):
    model = get_model(MODEL)

    def run():
        before = DEFAULT_INIT_COSTS.fresh_stages(model, TP)
        after = dict(DEFAULT_INIT_COSTS.reused_stages())
        after["model_load (quick)"] = switch_time(model, H800, tp=TP)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [(stage, f"{cost:.2f} s") for stage, cost in before.items()]
    rows.append(("TOTAL (before)", f"{sum(before.values()):.1f} s"))
    print()
    print(
        format_table(
            ["stage", "latency"],
            rows,
            title=f"Figure 7: cold init of {MODEL} (TP={TP}) — before",
        )
    )
    rows = [(stage, f"{cost:.2f} s") for stage, cost in after.items()]
    rows.append(("TOTAL (after)", f"{sum(after.values()):.2f} s"))
    print(format_table(["stage", "latency"], rows, title="after component reuse + quick load"))

    total_before = sum(before.values())
    total_after = sum(after.values())
    print(
        f"reduction: {1 - total_after / total_before:.1%} "
        f"(paper: 26.9 s -> under 1 s, >96%)"
    )
    assert 26.0 < total_before < 28.0  # the paper's 26.9 s headline
    assert total_after < 1.0
    assert 1 - total_after / total_before > 0.95
