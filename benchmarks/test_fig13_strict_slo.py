"""Figure 13: end-to-end SLO attainment under stricter SLOs.

Keeping the Figure 11(a) setup (RPS = 0.1) while scaling the TTFT/TBT
targets to 0.5x, 0.3x and 0.2x (down to 2 s / 20 ms).  Expected shape:
Aegaeon keeps its lead at 0.5x and 0.3x; at 0.2x the slack that
token-level scheduling exploits vanishes and static multiplexing
(MuxServe, zero switch cost) takes over — though Aegaeon still beats
request-level ServerlessLLM.
"""

from _common import SYSTEMS, bench_scale, make_trace, run_system
from repro.analysis import format_table
from repro.core import DEFAULT_SLO

COMPARED = ["Aegaeon", "ServerlessLLM", "MuxServe"]


def _sweep(factor, model_counts, seed_offset):
    slo = DEFAULT_SLO.scale(factor)
    results = {name: [] for name in COMPARED}
    for index, count in enumerate(model_counts):
        trace = make_trace(count, 0.1, seed=4025 + seed_offset + index)
        for name in COMPARED:
            result = run_system(SYSTEMS[name](slo), trace)
            results[name].append((count, result.slo_attainment()))
    return results


def test_fig13_stricter_slos(benchmark):
    model_counts = [20, 32, 40, 60] if bench_scale() >= 1.0 else [20, 32]
    factors = [0.5, 0.3, 0.2]

    def run():
        return {
            factor: _sweep(factor, model_counts, index * 10)
            for index, factor in enumerate(factors)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for factor in factors:
        grid = results[factor]
        rows = []
        for count in model_counts:
            rows.append(
                [count, *(f"{dict(grid[name])[count]:.1%}" for name in COMPARED)]
            )
        slo = DEFAULT_SLO.scale(factor)
        print()
        print(
            format_table(
                ["#models", *COMPARED],
                rows,
                title=f"Figure 13 ({factor}x SLO = {slo}):",
            )
        )

    # 0.5x: Aegaeon still leads request-level scaling at the highest
    # model count (where HOL blocking dominates).
    half = results[0.5]
    top = model_counts[-1]
    assert dict(half["Aegaeon"])[top] > dict(half["ServerlessLLM"])[top]
    # The Figure 13 crossover: at the strictest SLO the slack that
    # token-level scheduling exploits vanishes, and zero-switch-cost
    # multiplexing (MuxServe) comes out on top of Aegaeon.
    strictest = results[0.2]
    assert dict(strictest["MuxServe"])[32] >= dict(strictest["Aegaeon"])[32]
    # Stricter SLOs monotonically reduce Aegaeon's attainment.
    for count in model_counts:
        assert (
            dict(results[0.2]["Aegaeon"])[count]
            <= dict(results[0.5]["Aegaeon"])[count] + 0.02
        )
    # NOTE (recorded in EXPERIMENTS.md): unlike the paper, our
    # ServerlessLLM holds up better than Aegaeon at 0.3x/0.2x mid-range
    # model counts, because the simulated service times are shorter than
    # the paper's production fit, which deflates the active-model count
    # that drives ServerlessLLM's HOL blocking.
