"""Figure 15: auto-scaling latency and KV synchronization overhead CDFs.

Left: CDF of preemptive auto-scaling latency per model size (7B / 9B /
13B) — roughly half of all scalings are near-instant thanks to
prefetching, the rest finish in about a second.
Right: CDF of per-request KV-cache transfer waits — under a second in
total per request.
"""

import numpy as np

from _common import SYSTEMS, bench_scale, make_trace, run_system
from repro.analysis import format_cdf
from repro.core import DEFAULT_SLO


def _size_band(model_name: str) -> str:
    base = model_name.split("#")[0]
    if "13B" in base or "14B" in base:
        return "13B"
    if "9B" in base:
        return "9B"
    return "7B"


def test_fig15_autoscaling_and_kv_sync_cdf(benchmark):
    setups = [(16, 0.1), (32, 0.1), (64, 0.1), (16, 0.5), (32, 0.5)]
    if bench_scale() < 1.0:
        setups = setups[:2]

    def run():
        by_size: dict[str, list[float]] = {"7B": [], "9B": [], "13B": []}
        kv_sync: dict[str, np.ndarray] = {}
        for index, (models, rps) in enumerate(setups):
            trace = make_trace(models, rps, seed=6025 + index)
            result = run_system(SYSTEMS["Aegaeon"](DEFAULT_SLO), trace)
            for record in result.scale_records:
                if record.model_from is not None:
                    by_size[_size_band(record.model_to)].append(record.total)
            kv_sync[f"{models}x{rps}"] = result.kv_sync_overheads()
        return by_size, kv_sync

    by_size, kv_sync = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Figure 15 (left): auto-scaling latency CDF by model size")
    for size, values in by_size.items():
        if values:
            print("  " + format_cdf(np.asarray(values), size))
    print("Figure 15 (right): per-request KV sync overhead CDF")
    for setup, values in kv_sync.items():
        print("  " + format_cdf(values, setup))

    all_scalings = np.concatenate(
        [np.asarray(v) for v in by_size.values() if v]
    )
    # §7.3: ~half of scalings near-instant (prefetch), the rest under
    # about a second; no scaling takes multiple seconds.
    near_instant = float(np.mean(all_scalings < 0.25))
    print(f"near-instant fraction: {near_instant:.1%} (paper: ~50%)")
    assert near_instant > 0.25
    assert np.percentile(all_scalings, 90) < 1.6
    # Larger models scale slower.
    assert np.median(by_size["13B"]) >= np.median(by_size["7B"]) * 0.9
    # Per-request KV transfer overhead stays under ~1 s for nearly all.
    for setup, values in kv_sync.items():
        assert np.percentile(values, 99) < 1.0, setup
