"""Figure 16: fragmentation in the unified CPU KV cache.

Per-shape and overall fragmentation (unused fraction of held slab
memory) measured from the live allocator state during a mixed-model
serving run.  The paper's result: slab allocation keeps overall
fragmentation below ~20% across block shapes.
"""

from _common import SYSTEMS, make_trace, run_system
from repro.analysis import format_table
from repro.core import AegaeonServer, DEFAULT_SLO
from repro.sim import Environment


def test_fig16_unified_cache_fragmentation(benchmark):
    def run():
        env = Environment()
        server = AegaeonServer.paper_testbed(env)
        trace = make_trace(32, 0.25, seed=7025)
        # Sample fragmentation while the system is under load, not
        # after it has drained.
        samples = []

        def sampler():
            while env.now < trace.horizon:
                yield env.timeout(10.0)
                stats = server.cpu_kv_cache.shape_stats()
                if stats:
                    samples.append(
                        (
                            {str(s.shape): s.fragmentation for s in stats},
                            server.cpu_kv_cache.overall_fragmentation(),
                        )
                    )

        env.process(sampler())
        server.serve(trace)
        return samples

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    loaded = [s for s in samples if s[0]]
    assert loaded, "no fragmentation samples captured under load"

    # Average the per-shape fragmentation across samples.
    shape_totals: dict[str, list[float]] = {}
    overall: list[float] = []
    for per_shape, total in loaded:
        for shape, fragmentation in per_shape.items():
            shape_totals.setdefault(shape, []).append(fragmentation)
        overall.append(total)

    rows = [
        (f"S{i}", shape, f"{sum(vals) / len(vals):.1%}")
        for i, (shape, vals) in enumerate(sorted(shape_totals.items()))
    ]
    mean_overall = sum(overall) / len(overall)
    rows.append(("All", "(overall)", f"{mean_overall:.1%}"))
    print()
    print(
        format_table(
            ["id", "KV block shape", "mean fragmentation"],
            rows,
            title="Figure 16: unified CPU cache fragmentation under load",
        )
    )
    # The paper's bound: overall fragmentation below 20%.
    assert mean_overall < 0.20
