"""Figure 17: sensitivity to hardware and model scale (§7.4).

Left: a 4xA10 node (2 prefill + 2 decode, prefetch disabled because
24 GB cannot hold two models) serving 6-7B models, with TBT scaled 0.5x
(Strict) / 1x (Normal) / 2x (Loose).
Right: 72B models at TP=4 on an 8xH800 node (one prefill + one decode
instance), with TTFT scaled likewise, sweeping the aggregate rate.
"""

from dataclasses import replace

from _common import bench_horizon, bench_scale
from repro.analysis import format_table
from repro.core import AegaeonServer, DEFAULT_SLO
from repro.models import get_model, market_mix
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace


def test_fig17_left_a10_node(benchmark):
    model_counts = [4, 6, 8, 10] if bench_scale() >= 1.0 else [4, 6]
    scalings = [("Strict", 0.5), ("Normal", 1.0), ("Loose", 2.0)]

    def run():
        grid = {}
        for label, factor in scalings:
            slo = DEFAULT_SLO.scale_tbt(factor)
            for index, count in enumerate(model_counts):
                models = market_mix(count, min_b=6.0, max_b=7.9)
                trace = materialize_trace(
                    models, [0.1] * count, sharegpt(), bench_horizon(), seed=8025 + index
                )
                env = Environment()
                server = AegaeonServer.a10_testbed(env, slo=slo)
                grid[(label, count)] = server.serve(trace).slo_attainment()
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for count in model_counts:
        rows.append(
            [count, *(f"{grid[(label, count)]:.1%}" for label, _ in scalings)]
        )
    print()
    print(
        format_table(
            ["#models", *(label for label, _ in scalings)],
            rows,
            title="Figure 17 (left): 4xA10 node, RPS=0.1, 6-7B models",
        )
    )
    # Loose tolerates more sharing than Strict at every model count.
    for count in model_counts:
        assert grid[("Loose", count)] >= grid[("Strict", count)] - 0.02
    # A10s still sustain decent attainment at moderate pooling.
    assert grid[("Normal", model_counts[0])] > 0.85


def test_fig17_right_72b_tp4(benchmark):
    rates = [0.4, 0.9, 1.4, 1.9] if bench_scale() >= 1.0 else [0.4, 0.9]
    scalings = [("Strict", 0.5), ("Normal", 1.0), ("Loose", 2.0)]
    base = get_model("Qwen-72B")
    models = [replace(base, name=f"Qwen-72B#{i}") for i in range(4)]

    def run():
        grid = {}
        for label, factor in scalings:
            slo = DEFAULT_SLO.scale_ttft(factor)
            for index, rate in enumerate(rates):
                trace = materialize_trace(
                    models,
                    [rate / len(models)] * len(models),
                    sharegpt(),
                    bench_horizon(),
                    seed=8125 + index,
                )
                env = Environment()
                server = AegaeonServer.tp4_testbed(env, slo=slo)
                grid[(label, rate)] = server.serve(trace).slo_attainment()
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for rate in rates:
        rows.append(
            [rate, *(f"{grid[(label, rate)]:.1%}" for label, _ in scalings)]
        )
    print()
    print(
        format_table(
            ["rate (req/s)", *(label for label, _ in scalings)],
            rows,
            title="Figure 17 (right): 4x 72B models, TP=4, 8xH800",
        )
    )
    # 72B serving works at all, with similar SLO-scaling behaviour.
    assert grid[("Normal", rates[0])] > 0.85
    for rate in rates:
        assert grid[("Loose", rate)] >= grid[("Strict", rate)] - 0.02
