"""Figure 14: request latency breakdown across setups.

Shares of total request latency spent in prefill waiting/execution,
decoding waiting/execution, and the control/data overheads of KV
management.  The paper's observations: prefill waiting stays controlled
as load grows (grouped FCFS), and decode waiting is spread through the
execution without violating SLOs (weighted round-robin); KV overheads
stay marginal.
"""

from _common import SYSTEMS, bench_scale, make_trace, run_system
from repro.analysis import format_table
from repro.core import DEFAULT_SLO

SETUPS = [(16, 0.1), (32, 0.1), (64, 0.1), (16, 0.5), (32, 0.5)]


def test_fig14_latency_breakdown(benchmark):
    setups = SETUPS if bench_scale() >= 1.0 else SETUPS[:2]

    def run():
        breakdowns = {}
        for index, (models, rps) in enumerate(setups):
            trace = make_trace(models, rps, seed=5025 + index)
            result = run_system(SYSTEMS["Aegaeon"](DEFAULT_SLO), trace)
            breakdowns[(models, rps)] = (
                result.latency_breakdown(),
                result.slo_attainment(),
            )
        return breakdowns

    breakdowns = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = [
        "setup",
        "prefill wait",
        "prefill exec",
        "decode wait",
        "decode exec",
        "control",
        "data",
        "SLO",
    ]
    rows = []
    for (models, rps), (breakdown, attainment) in breakdowns.items():
        shares = breakdown.as_dict()
        rows.append(
            [
                f"{models}x{rps}",
                *(f"{shares[key]:.1%}" for key in (
                    "prefill_waiting",
                    "prefill_execution",
                    "decoding_waiting",
                    "decoding_execution",
                    "control_overhead",
                    "data_overhead",
                )),
                f"{attainment:.1%}",
            ]
        )
    print()
    print(format_table(headers, rows, title="Figure 14: latency breakdown (Aegaeon)"))

    for (models, rps), (breakdown, _) in breakdowns.items():
        shares = breakdown.as_dict()
        total = sum(shares.values())
        assert abs(total - 1.0) < 1e-6
        # KV management overheads are marginal (§7.3).
        assert shares["control_overhead"] < 0.05
        assert shares["data_overhead"] < 0.10
        # Prefill waiting stays controlled (well under half of latency).
        assert shares["prefill_waiting"] < 0.5
