"""The tracked perf scenarios.

Each scenario function takes ``quick`` (smaller problem for CI smoke
runs) and returns a flat result dict with at least:

* ``ops_per_sec`` — the tracked throughput figure (higher is better)
* ``wall_s``      — wall-clock seconds of the timed section
* ``sim_steps``   — kernel events dispatched inside the timed section
* fingerprint fields (``sim_end``, ``requests`` where applicable) so a
  perf regression can be told apart from a behavior change.
"""

from __future__ import annotations

import resource
import time
from typing import Callable

from repro.core import AegaeonConfig, AegaeonServer
from repro.hardware import Cluster, H800
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

__all__ = ["FULL_SCENARIOS", "SCENARIOS", "SUITES", "run_scenario"]


def kernel_event_throughput(quick: bool = False) -> dict:
    """Raw kernel throughput: timeout ping-pong across many processes.

    100 concurrent processes each advance through 2000 timeouts with a
    shared rendezvous event every 100 steps — the freelist, lazy-cancel,
    and single-event-yield fast paths all sit on this loop.
    """
    n_procs = 100
    n_steps = 400 if quick else 2000

    env = Environment()

    def worker(env: Environment, delay: float):
        for _ in range(n_steps):
            yield env.timeout(delay)

    def canceller(env: Environment):
        # Exercise lazy cancellation: schedule and cancel a long timeout
        # each iteration; cancelled entries must be dropped at pop.
        for _ in range(n_steps // 4):
            doomed = env.timeout(1000.0)
            doomed.cancel()
            yield env.timeout(1.0)

    for i in range(n_procs):
        env.process(worker(env, 0.5 + 0.01 * i))
    env.process(canceller(env))

    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    steps = env.steps_executed
    return {
        "ops_per_sec": steps / wall if wall > 0 else 0.0,
        "wall_s": wall,
        "sim_steps": steps,
        "sim_end": env.now,
        "events_recycled": env.events_recycled,
        "events_cancelled": env.events_cancelled,
    }


def end_to_end_serving(quick: bool = False) -> dict:
    """Figure-11-style run: Aegaeon, 8 models, moderate load, 4 GPUs."""
    horizon = 20.0 if quick else 60.0
    env = Environment()
    server = AegaeonServer(
        env,
        Cluster.homogeneous(env, H800, 1, 4),
        AegaeonConfig(prefill_instances=1, decode_instances=3),
    )
    models = market_mix(8)
    trace = materialize_trace(
        models, [0.4] * 8, sharegpt(), horizon=horizon, seed=2025
    )
    start = time.perf_counter()
    result = server.serve(trace)
    wall = time.perf_counter() - start
    steps = env.steps_executed
    return {
        "ops_per_sec": steps / wall if wall > 0 else 0.0,
        "wall_s": wall,
        "sim_steps": steps,
        "sim_end": env.now,
        "requests": len(result.requests),
        "events_recycled": env.events_recycled,
    }


def switch_storm(quick: bool = False) -> dict:
    """Worst-case auto-scaling churn: 12 models sharing 1+1 instances.

    Every decode round rotates through many models, so the run is
    dominated by scale-to/swap traffic — the KV-transfer manager, slab
    allocator, and reclaim daemon hot paths.
    """
    horizon = 15.0 if quick else 40.0
    n_models = 12
    env = Environment()
    server = AegaeonServer(
        env,
        Cluster.homogeneous(env, H800, 1, 2),
        AegaeonConfig(prefill_instances=1, decode_instances=1),
    )
    models = market_mix(n_models)
    trace = materialize_trace(
        models, [0.15] * n_models, sharegpt(), horizon=horizon, seed=7
    )
    start = time.perf_counter()
    result = server.serve(trace)
    wall = time.perf_counter() - start
    steps = env.steps_executed
    return {
        "ops_per_sec": steps / wall if wall > 0 else 0.0,
        "wall_s": wall,
        "sim_steps": steps,
        "sim_end": env.now,
        "requests": len(result.requests),
        "events_recycled": env.events_recycled,
    }


def fleet_replay(quick: bool = False) -> dict:
    """Fleet-smoke: 4 shards, 10^4-request market replay, one clock.

    Exercises the sharded control plane end to end — consistent-hash
    partitioning with a load-aware rebalance, the streaming pump, and
    non-retained disposal — at CI scale (the ``examples`` demo runs the
    same shape at 8 shards / 10^5 requests).
    """
    from repro.core import SystemSpec
    from repro.fleet import FleetConfig, build_fleet
    from repro.workload import market_stream

    horizon = 120.0 if quick else 840.0
    spec = SystemSpec(
        config=AegaeonConfig(
            prefill_instances=1, decode_instances=3, cluster="h800-quad"
        )
    )
    fleet = build_fleet(FleetConfig(shards=4, spec=spec))
    stream = market_stream(256, horizon, seed=2025, total_rate=12.0)
    # Spread the zipf head before replay: pin hot models off their
    # ring-assigned shards so no shard melts while others idle.
    fleet.partitioner.rebalance(
        {model.name: rate for model, rate in zip(stream.models, stream.rates)}
    )
    env = fleet.env
    start = time.perf_counter()
    result = fleet.run(stream)
    wall = time.perf_counter() - start
    steps = env.steps_executed
    return {
        "ops_per_sec": steps / wall if wall > 0 else 0.0,
        "wall_s": wall,
        "sim_steps": steps,
        "sim_end": env.now,
        "requests": result.submitted,
        "slo_attainment": round(result.slo_attainment, 6),
        "events_recycled": env.events_recycled,
    }


def fleet_controller_replay(quick: bool = False) -> dict:
    """Fleet replay with the live controller armed (forecast policy).

    Same shape as :func:`fleet_replay` but with the whole catalog pinned
    to shard 0 and the controller loop running: per-model forecasts,
    live migrations, spillover, scaling hints.  Measures the control
    loop's overhead on the hot path and its decision throughput.
    """
    from repro.core import SystemSpec
    from repro.fleet import ControllerConfig, FleetConfig, build_fleet
    from repro.workload import market_stream

    horizon = 120.0 if quick else 840.0
    spec = SystemSpec(
        config=AegaeonConfig(
            prefill_instances=1, decode_instances=3, cluster="h800-quad"
        ),
        policies="aegaeon-slo-admission",
    )
    fleet = build_fleet(
        FleetConfig(
            shards=4,
            spec=spec,
            controller=ControllerConfig(policy="forecast"),
        )
    )
    stream = market_stream(256, horizon, seed=2025, total_rate=12.0)
    # Opposite of fleet_replay's pre-spread: concentrate everything on
    # shard 0 so the controller has real rebalancing work every tick.
    for model in stream.models:
        fleet.partitioner.pin(model.name, 0)
    env = fleet.env
    start = time.perf_counter()
    result = fleet.run(stream)
    wall = time.perf_counter() - start
    steps = env.steps_executed
    return {
        "ops_per_sec": steps / wall if wall > 0 else 0.0,
        "wall_s": wall,
        "sim_steps": steps,
        "sim_end": env.now,
        "requests": result.submitted,
        "slo_attainment": round(result.slo_attainment, 6),
        "migrations": result.controller["migrations"],
        "spills": result.controller["spills"],
        "events_recycled": env.events_recycled,
    }


def fleet_replay_1m(quick: bool = False) -> dict:
    """Opt-in (``--suite fleet --full``): a 10^6-request fleet replay.

    The tentpole claim behind the continuation refactor: one process,
    one simulation clock, a million requests streamed through 8 testbed
    shards (128 GPUs) with bounded memory.  Requests are generated
    lazily and dropped at disposal, so RSS tracks in-flight concurrency,
    not trace length — the report records the process RSS high-water
    mark (``ru_maxrss``) as evidence.  ``ru_maxrss`` is a
    process-lifetime maximum, so run this scenario in a fresh process
    (the CLI does) for a tight bound; in-suite it is still a valid
    upper bound.

    ``quick`` shrinks to ~2*10^4 requests: same shape, smoke-sized.
    """
    from repro.core import SystemSpec
    from repro.fleet import FleetConfig, build_fleet
    from repro.workload import market_stream

    total_rate = 24.0
    n_requests = 20_000 if quick else 1_000_000
    horizon = n_requests / total_rate
    fleet = build_fleet(
        FleetConfig(shards=8, spec=SystemSpec(cluster="testbed"))
    )
    stream = market_stream(640, horizon, seed=2025, total_rate=total_rate)
    fleet.partitioner.rebalance(
        {model.name: rate for model, rate in zip(stream.models, stream.rates)}
    )
    env = fleet.env
    start = time.perf_counter()
    result = fleet.run(stream)
    wall = time.perf_counter() - start
    steps = env.steps_executed
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    return {
        "ops_per_sec": steps / wall if wall > 0 else 0.0,
        "wall_s": wall,
        "sim_steps": steps,
        "sim_end": env.now,
        "requests": result.submitted,
        "slo_attainment": round(result.slo_attainment, 6),
        "rss_peak_mb": round(rss_mb, 1),
        "events_recycled": env.events_recycled,
    }


SCENARIOS: dict[str, Callable[[bool], dict]] = {
    "kernel_event_throughput": kernel_event_throughput,
    "end_to_end_serving": end_to_end_serving,
    "switch_storm": switch_storm,
    "fleet_replay": fleet_replay,
    "fleet_controller_replay": fleet_controller_replay,
    "fleet_replay_1m": fleet_replay_1m,
}

#: Scenarios only run when the CLI is passed ``--full`` (minutes, not
#: seconds, at full size); never part of a plain suite run.
FULL_SCENARIOS: dict[str, tuple[str, ...]] = {
    "fleet": ("fleet_replay_1m",),
}

_FULL_ONLY = frozenset(
    name for names in FULL_SCENARIOS.values() for name in names
)

#: Scenario groups the CLI can select; the default "kernel" suite keeps
#: the original three (and the BENCH_kernel.json baseline) unchanged.
SUITES: dict[str, tuple[str, ...]] = {
    "kernel": ("kernel_event_throughput", "end_to_end_serving", "switch_storm"),
    "fleet": ("fleet_replay", "fleet_controller_replay"),
    "all": tuple(name for name in SCENARIOS if name not in _FULL_ONLY),
}


def run_scenario(name: str, quick: bool = False, repeat: int = 3) -> dict:
    """Run one scenario ``repeat`` times and keep the fastest trial.

    Best-of-N damps scheduler noise; the fingerprint fields must agree
    across trials (they are pure functions of the scenario), so the
    fastest trial's dict is representative.
    """
    best: dict = {}
    for _ in range(max(1, repeat)):
        result = SCENARIOS[name](quick)
        if not best or result["ops_per_sec"] > best["ops_per_sec"]:
            best = result
    return best
