"""CLI for the tracked perf benchmarks.

Measure and write a fresh report::

    PYTHONPATH=src python -m benchmarks.perf.run --out BENCH_kernel.json

Gate against the committed baseline (used by the CI perf-smoke job)::

    PYTHONPATH=src python -m benchmarks.perf.run --check \
        --baseline BENCH_kernel.json --max-drop 0.30 --quick

``--check`` compares each scenario's ``ops_per_sec`` against the
baseline and exits non-zero when any scenario drops by more than
``--max-drop`` (a fraction, default 0.30).  ``--quick`` runs reduced
problem sizes; quick throughput is compared against the baseline's
recorded quick numbers when present, else full-size numbers.

``--full`` adds the suite's opt-in full-size scenarios (currently
``fleet_replay_1m``: 10^6 streamed requests with the process RSS
high-water recorded in the report) at one trial each.  ``--summary
FILE`` appends a markdown before/after throughput table to ``FILE`` —
CI passes ``"$GITHUB_STEP_SUMMARY"`` so every perf job renders its
comparison against the committed baseline in the job summary.

``--profile`` additionally runs each scenario once under ``cProfile``
and writes a ``<suite>_<scenario>.pstats`` artifact (to ``--profile-dir``,
default the current directory), so a kernel PR can ship evidence of
where the time went.  The profiled run is separate from the timed
trials — profiler overhead never pollutes the recorded throughput.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

# Standalone bootstrap: make `repro` importable when invoked as a plain
# script without PYTHONPATH=src.
_REPO_ROOT = Path(__file__).resolve().parents[2]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from benchmarks.perf.scenarios import (  # noqa: E402
    FULL_SCENARIOS,
    SCENARIOS,
    SUITES,
    run_scenario,
)

#: Default baseline file per suite ("all" gates against both files via
#: two explicit invocations instead).
_SUITE_BASELINES = {
    "kernel": "BENCH_kernel.json",
    "fleet": "BENCH_fleet.json",
}


def measure(
    quick: bool, repeat: int, suite: str = "kernel", full: bool = False
) -> dict:
    report: dict = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "quick": quick,
            "repeat": repeat,
            "suite": suite,
        },
        "scenarios": {},
    }
    names = list(SUITES[suite])
    full_names = FULL_SCENARIOS.get(suite, ()) if full else ()
    names += [name for name in full_names if name not in names]
    for name in names:
        # Full-size opt-in scenarios run minutes per trial; one trial is
        # the measurement (their size already drowns scheduler noise).
        trials = 1 if name in full_names else repeat
        print(f"[perf] {name} ...", flush=True)
        result = run_scenario(name, quick=quick, repeat=trials)
        report["scenarios"][name] = result
        extra = (
            f", RSS peak {result['rss_peak_mb']:,.0f} MB"
            if "rss_peak_mb" in result
            else ""
        )
        print(
            f"[perf] {name}: {result['ops_per_sec']:,.0f} events/s "
            f"({result['wall_s']:.3f}s wall, {result['sim_steps']} steps"
            f"{extra})",
            flush=True,
        )
    return report


def profile_suite(suite: str, quick: bool, out_dir: Path) -> list[Path]:
    """Run each suite scenario once under cProfile; write ``.pstats`` files.

    Returns the artifact paths.  Kept separate from :func:`measure` so
    profiler overhead never contaminates the timed trials.
    """
    import cProfile
    import pstats

    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for name in SUITES[suite]:
        print(f"[perf] profiling {name} ...", flush=True)
        profiler = cProfile.Profile()
        profiler.enable()
        SCENARIOS[name](quick=quick)
        profiler.disable()
        path = out_dir / f"{suite}_{name}.pstats"
        profiler.dump_stats(path)
        paths.append(path)
        stats = pstats.Stats(profiler)
        total = stats.total_tt  # type: ignore[attr-defined]
        rows = sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda kv: kv[1][2],
            reverse=True,
        )[:5]
        print(f"[perf] wrote {path} ({total:.3f}s profiled); top self-time:")
        for (filename, lineno, func), (_, _, tottime, _, _) in rows:
            where = f"{Path(filename).name}:{lineno}" if lineno else filename
            print(f"[perf]   {tottime:8.3f}s  {func} ({where})")
    return paths


def render_summary(report: dict, baseline_path: Path) -> str:
    """A GitHub-flavored markdown before/after table for the job summary.

    One row per measured scenario: the committed baseline throughput,
    this run's throughput, and the ratio — the same comparison
    :func:`check` gates on, rendered for humans.  Scenarios without a
    baseline entry (e.g. a newly added one) show a dash.
    """
    baseline: dict = {}
    if baseline_path.exists():
        with baseline_path.open() as fh:
            baseline = json.load(fh).get("scenarios", {})
    suite = report.get("meta", {}).get("suite", "?")
    quick = report.get("meta", {}).get("quick", False)
    has_rss = any(
        "rss_peak_mb" in result for result in report["scenarios"].values()
    )
    lines = [
        f"### Perf: `{suite}` suite{' (quick)' if quick else ''}",
        "",
        "| scenario | baseline events/s | current events/s | ratio | wall "
        + ("| RSS peak " if has_rss else "")
        + "|",
        "|---|---:|---:|---:|---:" + ("|---:" if has_rss else "") + "|",
    ]
    for name, result in report["scenarios"].items():
        base = baseline.get(name)
        if base is not None:
            base_ops = f"{base['ops_per_sec']:,.0f}"
            ratio = f"{result['ops_per_sec'] / base['ops_per_sec']:.2f}x"
        else:
            base_ops = ratio = "—"
        rss = (
            f" {result['rss_peak_mb']:,.0f} MB |"
            if has_rss and "rss_peak_mb" in result
            else (" — |" if has_rss else "")
        )
        lines.append(
            f"| {name} | {base_ops} | {result['ops_per_sec']:,.0f} "
            f"| {ratio} | {result['wall_s']:.3f}s |{rss}"
        )
    return "\n".join(lines) + "\n"


def check(report: dict, baseline_path: Path, max_drop: float) -> int:
    with baseline_path.open() as fh:
        baseline = json.load(fh)
    base_scenarios = baseline.get("scenarios", {})
    base_quick = bool(baseline.get("meta", {}).get("quick", False))
    now_quick = bool(report.get("meta", {}).get("quick", False))
    if base_quick != now_quick:
        print(
            f"[perf] note: baseline quick={base_quick} vs current "
            f"quick={now_quick}; comparing throughput anyway "
            "(events/s is size-independent to first order)"
        )
    failures = []
    for name, result in report["scenarios"].items():
        base = base_scenarios.get(name)
        if base is None:
            print(f"[perf] {name}: no baseline entry, skipping")
            continue
        floor = base["ops_per_sec"] * (1.0 - max_drop)
        ratio = result["ops_per_sec"] / base["ops_per_sec"]
        status = "ok" if result["ops_per_sec"] >= floor else "FAIL"
        print(
            f"[perf] {name}: {result['ops_per_sec']:,.0f} vs baseline "
            f"{base['ops_per_sec']:,.0f} events/s ({ratio:.2f}x, "
            f"floor {floor:,.0f}) {status}"
        )
        if result["ops_per_sec"] < floor:
            failures.append(name)
    if failures:
        print(
            f"[perf] FAIL: {', '.join(failures)} dropped more than "
            f"{max_drop:.0%} below the committed baseline"
        )
        return 1
    print("[perf] all scenarios within budget")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_kernel.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against --baseline and exit 1 on regression",
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default="kernel",
        help="scenario group to run (default: kernel, the original three)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline report to compare against (default: the suite's "
        "committed BENCH_*.json)",
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.30,
        help="max tolerated fractional ops/sec drop per scenario (default 0.30)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced problem sizes for CI smoke runs",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="also run the suite's opt-in full-size scenarios "
        "(e.g. fleet_replay_1m: 10^6 requests, minutes of wall time)",
    )
    parser.add_argument(
        "--summary", type=Path, default=None,
        help="append a markdown before/after throughput table here "
        "(pass \"$GITHUB_STEP_SUMMARY\" in CI)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="trials per scenario, best kept (default 3)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also run each scenario once under cProfile and write "
        "<suite>_<scenario>.pstats artifacts",
    )
    parser.add_argument(
        "--profile-dir", type=Path, default=Path("."),
        help="directory for --profile .pstats artifacts (default: cwd)",
    )
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = _REPO_ROOT / _SUITE_BASELINES.get(
            args.suite, "BENCH_kernel.json"
        )

    report = measure(
        quick=args.quick, repeat=args.repeat, suite=args.suite, full=args.full
    )

    if args.profile:
        profile_suite(args.suite, quick=args.quick, out_dir=args.profile_dir)

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[perf] wrote {args.out}")

    if args.summary is not None:
        with args.summary.open("a") as fh:
            fh.write(render_summary(report, args.baseline))
        print(f"[perf] appended summary table to {args.summary}")

    if args.check:
        if not args.baseline.exists():
            print(f"[perf] baseline {args.baseline} not found")
            return 2
        return check(report, args.baseline, args.max_drop)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
