"""CLI for the tracked perf benchmarks.

Measure and write a fresh report::

    PYTHONPATH=src python -m benchmarks.perf.run --out BENCH_kernel.json

Gate against the committed baseline (used by the CI perf-smoke job)::

    PYTHONPATH=src python -m benchmarks.perf.run --check \
        --baseline BENCH_kernel.json --max-drop 0.30 --quick

``--check`` compares each scenario's ``ops_per_sec`` against the
baseline and exits non-zero when any scenario drops by more than
``--max-drop`` (a fraction, default 0.30).  ``--quick`` runs reduced
problem sizes; quick throughput is compared against the baseline's
recorded quick numbers when present, else full-size numbers.

``--profile`` additionally runs each scenario once under ``cProfile``
and writes a ``<suite>_<scenario>.pstats`` artifact (to ``--profile-dir``,
default the current directory), so a kernel PR can ship evidence of
where the time went.  The profiled run is separate from the timed
trials — profiler overhead never pollutes the recorded throughput.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

# Standalone bootstrap: make `repro` importable when invoked as a plain
# script without PYTHONPATH=src.
_REPO_ROOT = Path(__file__).resolve().parents[2]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from benchmarks.perf.scenarios import SCENARIOS, SUITES, run_scenario  # noqa: E402

#: Default baseline file per suite ("all" gates against both files via
#: two explicit invocations instead).
_SUITE_BASELINES = {
    "kernel": "BENCH_kernel.json",
    "fleet": "BENCH_fleet.json",
}


def measure(quick: bool, repeat: int, suite: str = "kernel") -> dict:
    report: dict = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "quick": quick,
            "repeat": repeat,
            "suite": suite,
        },
        "scenarios": {},
    }
    for name in SUITES[suite]:
        print(f"[perf] {name} ...", flush=True)
        result = run_scenario(name, quick=quick, repeat=repeat)
        report["scenarios"][name] = result
        print(
            f"[perf] {name}: {result['ops_per_sec']:,.0f} events/s "
            f"({result['wall_s']:.3f}s wall, {result['sim_steps']} steps)",
            flush=True,
        )
    return report


def profile_suite(suite: str, quick: bool, out_dir: Path) -> list[Path]:
    """Run each suite scenario once under cProfile; write ``.pstats`` files.

    Returns the artifact paths.  Kept separate from :func:`measure` so
    profiler overhead never contaminates the timed trials.
    """
    import cProfile
    import pstats

    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for name in SUITES[suite]:
        print(f"[perf] profiling {name} ...", flush=True)
        profiler = cProfile.Profile()
        profiler.enable()
        SCENARIOS[name](quick=quick)
        profiler.disable()
        path = out_dir / f"{suite}_{name}.pstats"
        profiler.dump_stats(path)
        paths.append(path)
        stats = pstats.Stats(profiler)
        total = stats.total_tt  # type: ignore[attr-defined]
        rows = sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda kv: kv[1][2],
            reverse=True,
        )[:5]
        print(f"[perf] wrote {path} ({total:.3f}s profiled); top self-time:")
        for (filename, lineno, func), (_, _, tottime, _, _) in rows:
            where = f"{Path(filename).name}:{lineno}" if lineno else filename
            print(f"[perf]   {tottime:8.3f}s  {func} ({where})")
    return paths


def check(report: dict, baseline_path: Path, max_drop: float) -> int:
    with baseline_path.open() as fh:
        baseline = json.load(fh)
    base_scenarios = baseline.get("scenarios", {})
    base_quick = bool(baseline.get("meta", {}).get("quick", False))
    now_quick = bool(report.get("meta", {}).get("quick", False))
    if base_quick != now_quick:
        print(
            f"[perf] note: baseline quick={base_quick} vs current "
            f"quick={now_quick}; comparing throughput anyway "
            "(events/s is size-independent to first order)"
        )
    failures = []
    for name, result in report["scenarios"].items():
        base = base_scenarios.get(name)
        if base is None:
            print(f"[perf] {name}: no baseline entry, skipping")
            continue
        floor = base["ops_per_sec"] * (1.0 - max_drop)
        ratio = result["ops_per_sec"] / base["ops_per_sec"]
        status = "ok" if result["ops_per_sec"] >= floor else "FAIL"
        print(
            f"[perf] {name}: {result['ops_per_sec']:,.0f} vs baseline "
            f"{base['ops_per_sec']:,.0f} events/s ({ratio:.2f}x, "
            f"floor {floor:,.0f}) {status}"
        )
        if result["ops_per_sec"] < floor:
            failures.append(name)
    if failures:
        print(
            f"[perf] FAIL: {', '.join(failures)} dropped more than "
            f"{max_drop:.0%} below the committed baseline"
        )
        return 1
    print("[perf] all scenarios within budget")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_kernel.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against --baseline and exit 1 on regression",
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default="kernel",
        help="scenario group to run (default: kernel, the original three)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline report to compare against (default: the suite's "
        "committed BENCH_*.json)",
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.30,
        help="max tolerated fractional ops/sec drop per scenario (default 0.30)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced problem sizes for CI smoke runs",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="trials per scenario, best kept (default 3)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also run each scenario once under cProfile and write "
        "<suite>_<scenario>.pstats artifacts",
    )
    parser.add_argument(
        "--profile-dir", type=Path, default=Path("."),
        help="directory for --profile .pstats artifacts (default: cwd)",
    )
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = _REPO_ROOT / _SUITE_BASELINES.get(
            args.suite, "BENCH_kernel.json"
        )

    report = measure(quick=args.quick, repeat=args.repeat, suite=args.suite)

    if args.profile:
        profile_suite(args.suite, quick=args.quick, out_dir=args.profile_dir)

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[perf] wrote {args.out}")

    if args.check:
        if not args.baseline.exists():
            print(f"[perf] baseline {args.baseline} not found")
            return 2
        return check(report, args.baseline, args.max_drop)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
