"""Tracked performance microbenchmarks for the simulation kernel.

Unlike the figure benches (which regenerate paper results), these
benchmarks time the *simulator itself*: raw event throughput through the
kernel, an end-to-end Figure-11-style serving run, and a model-switch
storm that stresses the scheduler and KV-transfer hot paths.

Run them with::

    PYTHONPATH=src python -m benchmarks.perf.run --out BENCH_kernel.json

and gate a change against the committed baseline with::

    PYTHONPATH=src python -m benchmarks.perf.run --check \
        --baseline BENCH_kernel.json --max-drop 0.30

``BENCH_kernel.json`` at the repository root is the committed baseline
the CI perf-smoke job compares against.
"""

from .scenarios import SCENARIOS, run_scenario

__all__ = ["SCENARIOS", "run_scenario"]
