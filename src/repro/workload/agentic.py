"""Agentic workloads: seeded multi-step request DAGs with session affinity.

Every request the platform served before this module was an i.i.d.
single-shot sample.  Agentic traffic (Scepsy, PAPERS.md) is different in
kind: one user turn fans out into a *pipeline* of LLM calls — plan, tool
call, summarize — where stage N+1 can only be submitted once stage N has
finished, consecutive stages want to land where the session's KV already
lives, and each stage may be routable across model *variants* (a cheap
7B draft model vs the flagship) under a per-session cost budget
(ECCOS/EconoServe, PAPERS.md).

The vocabulary here is three frozen values plus one generator:

* :class:`StagePlan` — one node of a session DAG: token budgets, the
  stages it depends on (always earlier indices, so plans are acyclic by
  construction), a think-time gap, a predicted difficulty in ``[0, 1)``,
  and the model variants the stage may route across.
* :class:`SessionPlan` — a whole session: the stage tuple plus the
  contiguous request-id block ``base_id .. base_id + len(stages) - 1``
  the stages will occupy, so agentic ids never collide with a market
  stream's ids when the two are merged.
* :class:`AgenticRequest` — a :class:`~repro.workload.trace.TraceRequest`
  subclass carrying the session id, stage index, dependency edges, the
  KV-affinity tag, difficulty, and variants.  Everything downstream
  (admission, dispatch, the fleet pump) treats it as an ordinary trace
  record; session-aware components read the extra fields.
* :func:`agentic_stream` — a seeded, re-iterable
  :class:`~repro.workload.stream.RequestStream` of **root stages only**,
  in arrival order.  Non-root stages are *not* in the stream: their
  submission is triggered at runtime by the
  :class:`~repro.core.sessions.SessionCoordinator` when their
  dependencies finish, as ordinary simulation events, so replays stay
  byte-reproducible per seed.

Determinism follows the streaming contract of
:mod:`repro.workload.stream`: one ``numpy`` generator seeded from
``AgenticConfig.seed`` drives session arrivals and every per-session
draw, so iterating the same stream twice (or in two processes) yields
identical plans byte for byte.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional, Sequence

import numpy as np

from ..models.catalog import ModelSpec, get_model
from .sharegpt import Dataset, sharegpt
from .stream import RequestStream
from .trace import TraceRequest

__all__ = [
    "StagePlan",
    "SessionPlan",
    "AgenticRequest",
    "AgenticConfig",
    "agent_variant_groups",
    "draw_session_plan",
    "agentic_stream",
]


@dataclass(frozen=True)
class StagePlan:
    """One node of a session DAG.

    ``deps`` may only reference *earlier* stage indices, which makes
    every constructible plan acyclic — there is no separate validation
    pass to forget.
    """

    index: int
    #: The default serving model — by convention the *largest* variant,
    #: so a run without the cost router reproduces always-largest routing.
    model: str
    input_tokens: int
    output_tokens: int
    deps: tuple[int, ...] = ()
    #: Simulated user/tool think time between the last dependency
    #: finishing and this stage's submission.
    think_time: float = 0.0
    #: Predicted difficulty in ``[0, 1]``; the cost router compares it
    #: against ``Tunables.router_difficulty_threshold``.
    difficulty: float = 1.0
    #: Model variants this stage may be routed across, cheapest first;
    #: fewer than two variants means the stage is not routable.
    variants: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("stage index must be non-negative")
        if self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("stage token budgets must be positive")
        if len(set(self.deps)) != len(self.deps):
            raise ValueError("duplicate dependency edges")
        if any(dep < 0 or dep >= self.index for dep in self.deps):
            raise ValueError(
                f"stage {self.index}: deps must reference earlier stages"
            )
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError("difficulty must be in [0, 1]")


@dataclass(frozen=True)
class SessionPlan:
    """A whole session: its DAG plus the request-id block it occupies."""

    session: int
    #: First request id of the session's contiguous id block; stage ``i``
    #: is always request ``base_id + i``.
    base_id: int
    arrival: float
    stages: tuple[StagePlan, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a session needs at least one stage")
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if [stage.index for stage in self.stages] != list(range(len(self.stages))):
            raise ValueError("stage indices must be 0..n-1 in order")

    def roots(self) -> tuple[StagePlan, ...]:
        """Stages with no dependencies — submitted at session arrival."""
        return tuple(stage for stage in self.stages if not stage.deps)

    def successors(self, index: int) -> tuple[StagePlan, ...]:
        """Stages that directly depend on stage ``index``."""
        return tuple(stage for stage in self.stages if index in stage.deps)

    def fanout(self, index: int) -> int:
        """Number of direct children of stage ``index``."""
        return sum(1 for stage in self.stages if index in stage.deps)

    def max_fanout(self) -> int:
        """The widest fan-out of any stage in this plan."""
        return max(self.fanout(stage.index) for stage in self.stages)

    @property
    def affinity(self) -> str:
        """The KV-affinity tag every stage of this session carries."""
        return f"s{self.session}"

    def request_for(self, stage: StagePlan, arrival: float) -> "AgenticRequest":
        """Materialize one stage as a submittable trace record."""
        return AgenticRequest(
            request_id=self.base_id + stage.index,
            model=stage.model,
            arrival=arrival,
            input_tokens=stage.input_tokens,
            output_tokens=stage.output_tokens,
            session=self.session,
            stage=stage.index,
            deps=stage.deps,
            affinity=self.affinity,
            difficulty=stage.difficulty,
            variants=stage.variants,
            plan=self,
        )


@dataclass(frozen=True)
class AgenticRequest(TraceRequest):
    """A trace record that knows which session DAG it belongs to.

    Plain consumers see an ordinary :class:`TraceRequest`; session-aware
    components (the coordinator, the cost router, affinity dispatch)
    read the extra fields.  ``plan`` rides along so a completion-side
    hook can build successor stages without any side lookup table.
    """

    session: int = 0
    stage: int = 0
    deps: tuple[int, ...] = ()
    affinity: str = ""
    difficulty: float = 1.0
    variants: tuple[str, ...] = ()
    plan: Optional[SessionPlan] = field(default=None, repr=False)


@dataclass(frozen=True)
class AgenticConfig:
    """Shape of an agentic workload (the ``REPRO_WORKLOAD_*`` surface)."""

    #: Session arrivals per second (a Poisson process over the horizon).
    session_rate: float = 0.2
    #: Seconds of session *arrivals*; triggered stages may run past it
    #: (the serving systems' drain grace covers the tail).
    horizon: float = 120.0
    seed: int = 0
    #: Distinct agent deployments, each a (small, large) variant pair.
    agents: int = 4
    min_stages: int = 2
    max_stages: int = 5
    #: Maximum direct children of any stage (bounded fan-out).
    max_fanout: int = 2
    #: Mean think time between dependent stages (exponential draws).
    think_time: float = 0.2
    #: Probability an eligible stage picks up a second parent (fan-in).
    join_probability: float = 0.25
    #: First request id; the default leaves the low id space to market
    #: streams so the two can be merged without collisions.
    start_id: int = 1_000_000

    def __post_init__(self) -> None:
        if self.session_rate <= 0:
            raise ValueError("session_rate must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.agents < 1:
            raise ValueError("agents must be >= 1")
        if not 1 <= self.min_stages <= self.max_stages:
            raise ValueError("need 1 <= min_stages <= max_stages")
        if self.max_fanout < 1:
            raise ValueError("max_fanout must be >= 1")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        if not 0.0 <= self.join_probability <= 1.0:
            raise ValueError("join_probability must be in [0, 1]")

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None, **overrides
    ) -> "AgenticConfig":
        """A config shaped by ``REPRO_WORKLOAD_*`` (see ``repro.envkeys``).

        Explicit ``overrides`` win over the environment; unrecognized
        ``REPRO_*`` keys warn with the nearest valid key.
        """
        from ..envkeys import warn_unknown_env_keys

        environ = os.environ if environ is None else environ
        warn_unknown_env_keys(environ)
        kwargs: dict[str, object] = {}
        mapping = {
            "REPRO_WORKLOAD_SESSION_RATE": ("session_rate", float),
            "REPRO_WORKLOAD_HORIZON": ("horizon", float),
            "REPRO_WORKLOAD_SEED": ("seed", int),
            "REPRO_WORKLOAD_AGENTS": ("agents", int),
            "REPRO_WORKLOAD_MAX_STAGES": ("max_stages", int),
            "REPRO_WORKLOAD_MAX_FANOUT": ("max_fanout", int),
            "REPRO_WORKLOAD_THINK_TIME": ("think_time", float),
        }
        for key, (name, cast) in mapping.items():
            if key in environ:
                kwargs[name] = cast(environ[key])
        kwargs.update(overrides)
        return cls(**kwargs)


def agent_variant_groups(
    count: int, small: str = "Qwen-1.8B", large: str = "Qwen-7B"
) -> list[tuple[ModelSpec, ...]]:
    """Per-agent model variant pairs, cheapest first.

    Each agent on the market is a distinct deployable (separate weights,
    separate KV), so every group gets its own ``name@agentK`` identities
    even though the architectures repeat — the same convention
    :func:`~repro.models.catalog.market_mix` uses.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    small_spec = get_model(small)
    large_spec = get_model(large)
    if small_spec.params >= large_spec.params:
        raise ValueError("small variant must be smaller than large variant")
    return [
        (
            replace(small_spec, name=f"{small}@agent{index}"),
            replace(large_spec, name=f"{large}@agent{index}"),
        )
        for index in range(count)
    ]


def draw_session_plan(
    rng: np.random.Generator,
    session: int,
    base_id: int,
    arrival: float,
    config: AgenticConfig,
    groups: Sequence[tuple[ModelSpec, ...]],
    dataset: Dataset,
) -> SessionPlan:
    """Draw one session DAG from ``rng`` (the generator's inner step).

    Stage 0 is always a root; every later stage takes one parent drawn
    among earlier stages with spare fan-out (so the DAG is connected and
    fan-out is bounded by ``config.max_fanout``), plus, with
    ``config.join_probability``, a second parent — the join/fan-in shape
    agentic pipelines exhibit.  Exposed for the hypothesis strategies,
    which delegate here so "a generated plan" means exactly one thing.
    """
    count = int(rng.integers(config.min_stages, config.max_stages + 1))
    group = groups[int(rng.integers(len(groups)))]
    variants = tuple(spec.name for spec in group)
    largest = group[-1].name
    children = [0] * count
    stages = []
    for index in range(count):
        deps: tuple[int, ...] = ()
        if index > 0:
            open_slots = [
                j for j in range(index) if children[j] < config.max_fanout
            ]
            primary = open_slots[int(rng.integers(len(open_slots)))]
            children[primary] += 1
            chosen = {primary}
            extras = [j for j in open_slots if j not in chosen]
            if extras and float(rng.random()) < config.join_probability:
                extra = extras[int(rng.integers(len(extras)))]
                children[extra] += 1
                chosen.add(extra)
            deps = tuple(sorted(chosen))
        sample = dataset.draw(rng)
        difficulty = float(rng.random())
        think = (
            float(rng.exponential(config.think_time))
            if config.think_time > 0 and index > 0
            else 0.0
        )
        stages.append(
            StagePlan(
                index=index,
                model=largest,
                input_tokens=sample.input_tokens,
                output_tokens=sample.output_tokens,
                deps=deps,
                think_time=think,
                difficulty=difficulty,
                variants=variants,
            )
        )
    return SessionPlan(
        session=session, base_id=base_id, arrival=arrival, stages=tuple(stages)
    )


def agentic_stream(
    config: Optional[AgenticConfig] = None,
    *,
    groups: Optional[Sequence[tuple[ModelSpec, ...]]] = None,
    dataset: Optional[Dataset] = None,
    name: str = "agentic",
) -> RequestStream:
    """A seeded stream of agentic session *root* stages, arrival-ordered.

    The stream's ``models`` carry every variant of every agent group, so
    ``prepare()`` warms all of them and ``spec_of`` resolves whatever
    model a router picks.  Only root stages are yielded; dependent
    stages must be submitted by a
    :class:`~repro.core.sessions.SessionCoordinator` reacting to
    completions.  Request ids are allocated as contiguous per-session
    blocks from ``config.start_id`` — offset it (or rely on the default
    1e6 floor) to merge with a market stream without collisions.
    """
    config = config if config is not None else AgenticConfig()
    groups = (
        list(groups) if groups is not None else agent_variant_groups(config.agents)
    )
    if not groups:
        raise ValueError("need at least one variant group")
    dataset = dataset if dataset is not None else sharegpt()
    models = tuple(spec for group in groups for spec in group)

    def _iterate() -> Iterator[TraceRequest]:
        rng = np.random.default_rng(np.random.SeedSequence(config.seed))
        now = 0.0
        session = 0
        base_id = config.start_id
        while True:
            now += float(rng.exponential(1.0 / config.session_rate))
            if now >= config.horizon:
                return
            plan = draw_session_plan(
                rng, session, base_id, now, config, groups, dataset
            )
            session += 1
            base_id += len(plan.stages)
            for stage in plan.roots():
                yield plan.request_for(stage, now)

    return RequestStream(models, config.horizon, _iterate, name=name)
