"""Trace synthesis and replay.

A trace is a time-ordered list of :class:`TraceRequest` records — the
common input format every serving system in this reproduction consumes.
Materialized traces suit figure-scale runs; fleet-scale runs stream
requests instead (see :mod:`repro.workload.stream`), and
``RequestStream.materialize()`` bridges the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.catalog import ModelSpec
from .arrivals import poisson_arrivals
from .sharegpt import Dataset

__all__ = ["TraceRequest", "Trace", "materialize_trace"]


@dataclass(frozen=True)
class TraceRequest:
    """One request in a workload trace."""

    request_id: int
    model: str
    arrival: float
    input_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("token counts must be positive")
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")


@dataclass(frozen=True)
class Trace:
    """A full workload: requests plus the model list they target."""

    requests: tuple[TraceRequest, ...]
    models: tuple[ModelSpec, ...]
    horizon: float

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def total_rate(self) -> float:
        """Aggregate arrival rate over the horizon."""
        return len(self.requests) / self.horizon if self.horizon > 0 else 0.0

    def per_model_counts(self) -> dict[str, int]:
        """Request count per model name."""
        counts: dict[str, int] = {spec.name: 0 for spec in self.models}
        for request in self.requests:
            counts[request.model] = counts.get(request.model, 0) + 1
        return counts

    def spec_of(self, model_name: str) -> ModelSpec:
        """Look up the architecture of a model in this trace."""
        index = self.__dict__.get("_spec_index")
        if index is None:
            # Lazily built dict lookup (the linear scan this replaces was
            # O(models) per request — ruinous at fleet scale).
            index = {spec.name: spec for spec in self.models}
            object.__setattr__(self, "_spec_index", index)
        try:
            return index[model_name]
        except KeyError:
            raise KeyError(f"model {model_name!r} not in trace") from None


def materialize_trace(
    models: list[ModelSpec],
    rates: list[float] | np.ndarray,
    dataset: Dataset,
    horizon: float,
    seed: int = 0,
) -> Trace:
    """Build a fully materialized trace: Poisson arrivals + length samples.

    This is the paper's §7.1 workload synthesis ("scaled Poisson
    processes and random sampling from the datasets"), kept byte-stable
    for the figure benchmarks and golden tests.  New code that does not
    need the full list in memory should prefer
    :func:`repro.workload.stream.stream_trace`.
    """
    if len(models) != len(rates):
        raise ValueError(
            f"need one rate per model: {len(models)} models, {len(rates)} rates"
        )
    rng = np.random.default_rng(seed)
    requests: list[TraceRequest] = []
    request_id = 0
    for spec, rate in zip(models, rates):
        arrivals = poisson_arrivals(float(rate), horizon, rng)
        inputs, outputs = dataset.sample_arrays(rng, len(arrivals))
        for arrival, input_tokens, output_tokens in zip(arrivals, inputs, outputs):
            requests.append(
                TraceRequest(
                    request_id=request_id,
                    model=spec.name,
                    arrival=float(arrival),
                    input_tokens=int(input_tokens),
                    output_tokens=int(output_tokens),
                )
            )
            request_id += 1
    requests.sort(key=lambda r: (r.arrival, r.request_id))
    # Re-number in arrival order so request ids are chronological.
    requests = [
        TraceRequest(
            request_id=index,
            model=request.model,
            arrival=request.arrival,
            input_tokens=request.input_tokens,
            output_tokens=request.output_tokens,
        )
        for index, request in enumerate(requests)
    ]
    return Trace(requests=tuple(requests), models=tuple(models), horizon=horizon)
