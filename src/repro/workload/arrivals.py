"""Arrival processes.

The paper synthesizes workloads "with scaled Poisson processes and random
sampling from the datasets" (§7.1); Figure 1(b) additionally shows
short-term bursts on hot models.  Both generators live here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["poisson_arrivals", "bursty_arrivals", "BurstConfig", "rate_series"]


def poisson_arrivals(
    rate: float, horizon: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times of a Poisson process with ``rate`` req/s on [0, horizon)."""
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if rate == 0:
        return np.empty(0)
    count = rng.poisson(rate * horizon)
    return np.sort(rng.uniform(0.0, horizon, size=count))


@dataclass(frozen=True)
class BurstConfig:
    """Shape of short-term bursts layered on a base Poisson rate.

    Figure 1(b) shows a hot model whose rate hovers near a reserved level
    and intermittently spikes past it; ``multiplier`` scales the rate
    during an episode.
    """

    episode_rate: float = 1.0 / 120.0  # episodes per second
    episode_duration: float = 20.0  # seconds
    multiplier: float = 1.6

    def __post_init__(self) -> None:
        if self.multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")


def bursty_arrivals(
    base_rate: float,
    horizon: float,
    rng: np.random.Generator,
    burst: BurstConfig = BurstConfig(),
) -> np.ndarray:
    """Arrivals from a Poisson process with burst episodes.

    Implemented by thinning: generate at the peak rate, then drop
    arrivals outside episodes with probability ``1 - 1/multiplier``.
    """
    peak_rate = base_rate * burst.multiplier
    candidates = poisson_arrivals(peak_rate, horizon, rng)
    episode_starts = poisson_arrivals(burst.episode_rate, horizon, rng)

    def in_episode(time: float) -> bool:
        index = np.searchsorted(episode_starts, time) - 1
        return index >= 0 and time - episode_starts[index] < burst.episode_duration

    keep_probability = 1.0 / burst.multiplier
    kept = [
        t
        for t in candidates
        if in_episode(t) or rng.random() < keep_probability
    ]
    return np.asarray(kept)


def rate_series(
    arrivals: np.ndarray, horizon: float, window: float = 10.0
) -> tuple[np.ndarray, np.ndarray]:
    """Windowed arrival-rate time series (Figure 1(b)'s y-axis).

    Returns (window centers, req/s within each window).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    edges = np.arange(0.0, horizon + window, window)
    counts, _ = np.histogram(arrivals, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts / window
