"""Market-shaped multi-model workloads (paper Figure 1(a), §7.5).

Production statistics the paper publishes, which this module reproduces:

* 779 models, 167.6M requests over the measurement window;
* the *tail* — 94.1% of models — receives only 1.35% of requests
  (average per-model arrival rate < 1.16 req/s, tail mean 0.037);
* head ("hot") models take the remaining 98.65% of traffic;
* the §7.5 deployment serves models with rates in [0.01, 1.13],
  averaging 0.037 req/s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

__all__ = [
    "MarketShape",
    "PRODUCTION_SHAPE",
    "market_rates",
    "deployment_rates",
    "request_share_cdf",
    "market_stream",
    "deployment_stream",
]


@dataclass(frozen=True)
class MarketShape:
    """Aggregate skew statistics of a model market."""

    model_count: int = 779
    tail_model_fraction: float = 0.941
    tail_request_fraction: float = 0.0135
    total_rate: float = 646.0  # 167.6M requests / 3 days, approx.
    zipf_exponent: float = 1.2  # within-group popularity decay

    def __post_init__(self) -> None:
        if not 0 < self.tail_model_fraction < 1:
            raise ValueError("tail_model_fraction must be in (0, 1)")
        if not 0 < self.tail_request_fraction < 1:
            raise ValueError("tail_request_fraction must be in (0, 1)")


PRODUCTION_SHAPE = MarketShape()


def market_rates(shape: MarketShape = PRODUCTION_SHAPE) -> np.ndarray:
    """Per-model arrival rates (req/s), most popular first.

    Head and tail groups each follow a Zipf profile; the two groups'
    totals are pinned to the published request split, so the generated
    market reproduces Figure 1(a)'s "94.1% of models get 1.35% of
    requests" by construction.
    """
    count = shape.model_count
    head_count = max(1, round(count * (1.0 - shape.tail_model_fraction)))
    tail_count = count - head_count

    def zipf_profile(n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-shape.zipf_exponent)
        return weights / weights.sum()

    head_total = shape.total_rate * (1.0 - shape.tail_request_fraction)
    tail_total = shape.total_rate * shape.tail_request_fraction
    head = zipf_profile(head_count) * head_total
    tail = zipf_profile(tail_count) * tail_total if tail_count else np.empty(0)
    return np.concatenate([head, tail])


def deployment_rates(
    model_count: int,
    rng: np.random.Generator,
    low: float = 0.01,
    high: float = 1.13,
    mean: float = 0.037,
) -> np.ndarray:
    """Per-model rates for the §7.5 deployment scenario.

    Rates span [low, high] with the published mean — a heavily skewed
    draw (lognormal, clipped, then rescaled to hit the mean while keeping
    the extremes in range).
    """
    if not low < mean < high:
        raise ValueError("need low < mean < high")
    raw = rng.lognormal(mean=np.log(mean), sigma=1.0, size=model_count)
    raw = np.clip(raw, low, high)
    # Rescale interior points toward the target mean (keep clip bounds).
    for _ in range(32):
        error = mean - raw.mean()
        if abs(error) < 1e-6:
            break
        interior = (raw > low) & (raw < high)
        if not interior.any():
            break
        raw[interior] = np.clip(raw[interior] + error * raw.size / interior.sum(), low, high)
    return np.sort(raw)[::-1]


def request_share_cdf(rates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Figure 1(a): CDF of request share versus model-popularity rank.

    Returns (fraction of top models, cumulative fraction of requests).
    """
    ordered = np.sort(np.asarray(rates, dtype=float))[::-1]
    if ordered.sum() <= 0:
        raise ValueError("rates must have positive total")
    model_fraction = np.arange(1, ordered.size + 1) / ordered.size
    request_fraction = np.cumsum(ordered) / ordered.sum()
    return model_fraction, request_fraction


# -- streaming market workloads ----------------------------------------------
def market_stream(
    model_count: int,
    horizon: float,
    *,
    seed: int,
    total_rate: Optional[float] = None,
    shape: MarketShape = PRODUCTION_SHAPE,
    dataset=None,
    min_b: float = 6.0,
    max_b: float = 14.5,
    name: str = "market",
):
    """A full market workload as a bounded-memory request stream.

    Builds the Figure 1(a) market at ``model_count`` models — head/tail
    Zipf skew pinned to the published request split — and returns a
    :class:`~repro.workload.stream.RequestStream` over it.  ``total_rate``
    rescales the market's aggregate arrival rate (req/s) so the same
    skew can be replayed against any fleet capacity; the default keeps
    the production aggregate, which only a production-scale fleet can
    absorb.
    """
    from ..models.catalog import market_mix
    from .stream import stream_trace

    scaled = replace(
        shape,
        model_count=model_count,
        total_rate=shape.total_rate if total_rate is None else float(total_rate),
    )
    rates = market_rates(scaled)
    models = market_mix(model_count, min_b, max_b)
    return stream_trace(
        models, rates, dataset, horizon, seed=seed, name=name
    )


def deployment_stream(
    model_count: int,
    horizon: float,
    *,
    seed: int,
    dataset=None,
    low: float = 0.01,
    high: float = 1.13,
    mean: float = 0.037,
    min_b: float = 6.0,
    max_b: float = 14.5,
    name: str = "deployment",
):
    """The §7.5 deployment scenario as a bounded-memory request stream.

    Per-model rates follow the published deployment profile (skewed in
    [low, high] with the given mean); lengths come from ``dataset``
    (ShareGPT by default).
    """
    from ..models.catalog import market_mix
    from .stream import stream_trace

    rng = np.random.default_rng(seed)
    rates = deployment_rates(model_count, rng, low=low, high=high, mean=mean)
    models = market_mix(model_count, min_b, max_b)
    return stream_trace(
        models, rates, dataset, horizon, seed=seed, name=name
    )
