"""Workload synthesis: arrivals, datasets, market skew, traces, streams.

Two request APIs coexist:

* **Streaming** (:class:`RequestStream`, :func:`stream_trace`,
  :func:`market_stream`, :func:`deployment_stream`) — arrival-ordered
  iterables with bounded lookahead, the fleet-scale path.
* **Materialized** (:class:`Trace`, :func:`materialize_trace`) — the
  classic full-list format, still used by figure-scale benchmarks.
  ``RequestStream.materialize()`` bridges streaming → materialized and
  :func:`stream_of_trace` bridges the other way.
"""

from .agentic import (
    AgenticConfig,
    AgenticRequest,
    SessionPlan,
    StagePlan,
    agent_variant_groups,
    agentic_stream,
    draw_session_plan,
)
from .arrivals import BurstConfig, bursty_arrivals, poisson_arrivals, rate_series
from .market import (
    MarketShape,
    PRODUCTION_SHAPE,
    deployment_rates,
    deployment_stream,
    market_rates,
    market_stream,
    request_share_cdf,
)
from .sharegpt import (
    Dataset,
    LengthSample,
    SHAREGPT,
    sharegpt,
    sharegpt_ix2,
    sharegpt_ox2,
)
from .stream import RequestStream, merge_streams, stream_of_trace, stream_trace
from .trace import Trace, TraceRequest, materialize_trace

__all__ = [
    "AgenticConfig",
    "AgenticRequest",
    "BurstConfig",
    "Dataset",
    "LengthSample",
    "MarketShape",
    "PRODUCTION_SHAPE",
    "RequestStream",
    "SHAREGPT",
    "SessionPlan",
    "StagePlan",
    "Trace",
    "TraceRequest",
    "agent_variant_groups",
    "agentic_stream",
    "bursty_arrivals",
    "deployment_rates",
    "deployment_stream",
    "draw_session_plan",
    "market_rates",
    "market_stream",
    "materialize_trace",
    "merge_streams",
    "poisson_arrivals",
    "rate_series",
    "request_share_cdf",
    "sharegpt",
    "sharegpt_ix2",
    "sharegpt_ox2",
    "stream_of_trace",
    "stream_trace",
]
