"""Workload synthesis: arrivals, datasets, market skew, traces."""

from .arrivals import BurstConfig, bursty_arrivals, poisson_arrivals, rate_series
from .market import (
    MarketShape,
    PRODUCTION_SHAPE,
    deployment_rates,
    market_rates,
    request_share_cdf,
)
from .sharegpt import (
    Dataset,
    LengthSample,
    SHAREGPT,
    sharegpt,
    sharegpt_ix2,
    sharegpt_ox2,
)
from .trace import Trace, TraceRequest, synthesize_trace

__all__ = [
    "BurstConfig",
    "Dataset",
    "LengthSample",
    "MarketShape",
    "PRODUCTION_SHAPE",
    "SHAREGPT",
    "Trace",
    "TraceRequest",
    "bursty_arrivals",
    "deployment_rates",
    "market_rates",
    "poisson_arrivals",
    "rate_series",
    "request_share_cdf",
    "sharegpt",
    "sharegpt_ix2",
    "sharegpt_ox2",
    "synthesize_trace",
]
