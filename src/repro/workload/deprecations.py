"""Warn-once-per-call-site support for the workload deprecation shims.

The shims (`synthesize_trace`, `Dataset.sample`) sit under loops in
downstream scripts; a naive ``warnings.warn`` in a loop spams one line
per iteration whenever the ambient filter is ``always`` (pytest, many
notebook setups).  :func:`warn_deprecated` deduplicates on the *caller's*
``(filename, lineno)`` itself, so each call site warns exactly once per
process regardless of filter configuration, and the warning is
attributed to the caller (``stacklevel``), not the shim body.
"""

from __future__ import annotations

import sys
import warnings

__all__ = ["warn_deprecated"]

#: Caller (filename, lineno) pairs that have already warned.
_warned_sites: set[tuple[str, int]] = set()


def warn_deprecated(message: str) -> None:
    """Emit ``DeprecationWarning`` once per call site of the shim.

    Must be called directly from the deprecated function: frame depth 2
    (and ``stacklevel`` 3) is the shim's caller.
    """
    frame = sys._getframe(2)
    site = (frame.f_code.co_filename, frame.f_lineno)
    if site in _warned_sites:
        return
    _warned_sites.add(site)
    warnings.warn(message, DeprecationWarning, stacklevel=3)
