"""Compatibility re-export: the deprecation helpers moved to
:mod:`repro._compat` when the loose ``build_system`` keyword form joined
the workload shims on the deprecation path.  Import from there."""

from __future__ import annotations

from .._compat import _warned_sites, removed, warn_deprecated

__all__ = ["warn_deprecated", "removed", "_warned_sites"]
