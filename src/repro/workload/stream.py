"""Streaming workload generation: the fleet-scale request API.

The materialized :class:`~repro.workload.trace.Trace` carried every
request of a run in memory — fine for a few hundred requests on one
pool, hopeless for a 10^5–10^6-request market replay across a sharded
fleet.  A :class:`RequestStream` is the streaming replacement: an
*iterable* of :class:`~repro.workload.trace.TraceRequest` records in
arrival order with **bounded lookahead** — at any moment the generator
holds at most one pending arrival per model (a k-way merge over
per-model Poisson processes), so peak memory is O(models), independent
of the request count.

Determinism contract
--------------------
A stream is a *recipe*, not a buffer: iterating the same
:class:`RequestStream` twice replays the identical request sequence,
because every model draws from its own :class:`numpy.random.Generator`
seeded by ``SeedSequence(seed).spawn(model_count)``.  Two processes
constructing the same stream therefore agree byte for byte — the
property the fleet's reproducibility tests pin.

Compatibility
-------------
:meth:`RequestStream.materialize` drains a stream into a classic
:class:`Trace` for code that still wants the full list (small runs,
figure benchmarks).  The reverse shim, :func:`stream_of_trace`, wraps an
existing materialized trace in the streaming interface so every consumer
can be written against :class:`RequestStream` alone.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..models.catalog import ModelSpec
from .sharegpt import Dataset, sharegpt
from .trace import Trace, TraceRequest

__all__ = ["RequestStream", "merge_streams", "stream_trace", "stream_of_trace"]


class RequestStream:
    """A replayable, arrival-ordered request source with bounded lookahead.

    ``factory`` builds a fresh iterator of :class:`TraceRequest` records
    each time the stream is iterated; ``models`` and ``horizon`` carry
    the metadata a serving system needs up front (cache warming, drain
    deadline) without touching the request sequence itself.
    """

    def __init__(
        self,
        models: Sequence[ModelSpec],
        horizon: float,
        factory: Callable[[], Iterator[TraceRequest]],
        rates: Optional[Sequence[float]] = None,
        name: str = "stream",
    ):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.models = tuple(models)
        self.horizon = float(horizon)
        self.rates = None if rates is None else tuple(float(r) for r in rates)
        self.name = name
        self._factory = factory
        self._specs = {spec.name: spec for spec in self.models}

    def __iter__(self) -> Iterator[TraceRequest]:
        return self._factory()

    def spec_of(self, model_name: str) -> ModelSpec:
        """Look up the architecture of a model in this stream."""
        try:
            return self._specs[model_name]
        except KeyError:
            raise KeyError(f"model {model_name!r} not in stream") from None

    @property
    def expected_requests(self) -> Optional[float]:
        """Expected request count (``sum(rates) * horizon``) if rates are known."""
        if self.rates is None:
            return None
        return float(sum(self.rates)) * self.horizon

    def materialize(self) -> Trace:
        """Compatibility shim: drain the stream into a classic :class:`Trace`.

        This intentionally defeats the bounded-memory property — use it
        only for workloads small enough to hold in memory.
        """
        return Trace(
            requests=tuple(self), models=self.models, horizon=self.horizon
        )

    def __repr__(self) -> str:
        return (
            f"<RequestStream {self.name!r} models={len(self.models)} "
            f"horizon={self.horizon:g}s>"
        )


def stream_trace(
    models: Sequence[ModelSpec],
    rates: Sequence[float] | np.ndarray,
    dataset: Optional[Dataset] = None,
    horizon: float = 150.0,
    seed: int = 0,
    start_id: int = 0,
    name: str = "stream",
) -> RequestStream:
    """Streaming counterpart of the materialized trace synthesis.

    Per-model Poisson arrivals (exponential inter-arrival increments)
    and per-request dataset length draws, merged into one arrival-ordered
    sequence through a heap that holds exactly one pending request per
    model.  Request ids are assigned in arrival order starting at
    ``start_id``, so ids are chronological and disjoint streams can be
    concatenated by offsetting ``start_id``.

    Each model consumes its own RNG stream
    (``SeedSequence(seed).spawn(len(models))``), which is what makes the
    sequence independent of consumption pattern and identical across
    re-iterations and processes.
    """
    if len(models) != len(rates):
        raise ValueError(
            f"need one rate per model: {len(models)} models, {len(rates)} rates"
        )
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    dataset = dataset if dataset is not None else sharegpt()
    model_tuple = tuple(models)
    rate_tuple = tuple(float(r) for r in rates)
    for rate in rate_tuple:
        if rate < 0:
            raise ValueError("rates must be non-negative")

    def _iterate() -> Iterator[TraceRequest]:
        children = np.random.SeedSequence(seed).spawn(len(model_tuple))
        rngs = [np.random.default_rng(child) for child in children]
        # Heap of (next_arrival, model_index): one pending entry per
        # model is the entire lookahead buffer.
        heap: list[tuple[float, int]] = []
        for index, rate in enumerate(rate_tuple):
            if rate <= 0:
                continue
            first = float(rngs[index].exponential(1.0 / rate))
            if first < horizon:
                heap.append((first, index))
        heapq.heapify(heap)
        request_id = start_id
        while heap:
            arrival, index = heapq.heappop(heap)
            rng = rngs[index]
            sample = dataset.draw(rng)
            yield TraceRequest(
                request_id=request_id,
                model=model_tuple[index].name,
                arrival=arrival,
                input_tokens=sample.input_tokens,
                output_tokens=sample.output_tokens,
            )
            request_id += 1
            nxt = arrival + float(rng.exponential(1.0 / rate_tuple[index]))
            if nxt < horizon:
                heapq.heappush(heap, (nxt, index))

    return RequestStream(
        model_tuple, horizon, _iterate, rates=rate_tuple, name=name
    )


def merge_streams(*streams: RequestStream, name: str = "merged") -> RequestStream:
    """Merge streams into one arrival-ordered stream (bounded lookahead).

    The merge is a k-way heap over the component iterators keyed on
    ``(arrival, request_id)``, so it holds at most one pending request
    per component and is deterministic whenever the components are.
    The component streams must have **disjoint request-id ranges** —
    that is the caller's responsibility (offset ``start_id``; agentic
    streams default to the 1e6 block for exactly this reason).  Models
    are unioned by name; horizon is the max of the components'.
    """
    if not streams:
        raise ValueError("need at least one stream to merge")
    specs: dict[str, ModelSpec] = {}
    for stream in streams:
        for spec in stream.models:
            specs.setdefault(spec.name, spec)
    horizon = max(stream.horizon for stream in streams)
    components = tuple(streams)

    def _iterate() -> Iterator[TraceRequest]:
        return heapq.merge(
            *(iter(stream) for stream in components),
            key=lambda request: (request.arrival, request.request_id),
        )

    return RequestStream(tuple(specs.values()), horizon, _iterate, name=name)


def stream_of_trace(trace: Trace, name: str = "trace") -> RequestStream:
    """Wrap a materialized :class:`Trace` in the streaming interface."""
    return RequestStream(
        trace.models, trace.horizon, lambda: iter(trace.requests), name=name
    )
