"""Synthetic ShareGPT-like datasets.

The paper samples request lengths from ShareGPT and from two scaled
variants, ShareGPT-ix2 (2x input lengths) and ShareGPT-ox2 (2x output
lengths).  The real dataset is not available offline, so we fit the
well-known shape of its tokenized length distributions: both prompt and
response lengths are heavy-tailed and well approximated by clipped
lognormals (multi-turn prompts push the input tail out further).

The substitution is behaviour-preserving for this paper because the
evaluation treats ShareGPT purely as an (input_len, output_len) sampler.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

__all__ = ["LengthSample", "Dataset", "SHAREGPT", "sharegpt", "sharegpt_ix2", "sharegpt_ox2"]


@dataclass(frozen=True)
class LengthSample:
    """Token lengths of one request."""

    input_tokens: int
    output_tokens: int


@dataclass(frozen=True)
class Dataset:
    """A parametric (input, output) length distribution.

    Lengths are drawn from lognormals (parameterized by the median and
    sigma of the underlying normal) and clipped to sane token ranges.
    ``input_scale``/``output_scale`` implement the paper's ix2/ox2
    variants.
    """

    name: str
    input_median: float = 230.0
    input_sigma: float = 1.1
    output_median: float = 230.0
    output_sigma: float = 0.9
    min_tokens: int = 4
    max_input: int = 8192
    max_output: int = 2048
    input_scale: float = 1.0
    output_scale: float = 1.0

    def sample_arrays(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` i.i.d. length pairs as (inputs, outputs) int arrays.

        This is the vectorized sampling core (byte-identical draws to
        the removed list-returning ``sample``); the streaming path draws
        one pair at a time through :meth:`draw` instead.
        """
        inputs = rng.lognormal(
            mean=np.log(self.input_median), sigma=self.input_sigma, size=count
        )
        outputs = rng.lognormal(
            mean=np.log(self.output_median), sigma=self.output_sigma, size=count
        )
        inputs = np.clip(
            np.round(inputs * self.input_scale), self.min_tokens, self.max_input
        )
        outputs = np.clip(
            np.round(outputs * self.output_scale), self.min_tokens, self.max_output
        )
        return inputs.astype(int), outputs.astype(int)

    def draw(self, rng: np.random.Generator) -> LengthSample:
        """Draw one length pair (the streaming generators' scalar path)."""
        i = rng.lognormal(mean=np.log(self.input_median), sigma=self.input_sigma)
        o = rng.lognormal(mean=np.log(self.output_median), sigma=self.output_sigma)
        i = min(max(round(i * self.input_scale), self.min_tokens), self.max_input)
        o = min(max(round(o * self.output_scale), self.min_tokens), self.max_output)
        return LengthSample(int(i), int(o))

    def stream(self, rng: np.random.Generator) -> Iterator[LengthSample]:
        """An endless iterator of length pairs (bounded memory)."""
        while True:
            yield self.draw(rng)

    def sample_one(self, rng: np.random.Generator) -> LengthSample:
        """Draw a single length pair."""
        inputs, outputs = self.sample_arrays(rng, 1)
        return LengthSample(int(inputs[0]), int(outputs[0]))

    def mean_lengths(self, rng: np.random.Generator, n: int = 20000) -> tuple[float, float]:
        """Empirical mean (input, output) lengths — used for calibration."""
        inputs, outputs = self.sample_arrays(rng, n)
        return (float(inputs.mean()), float(outputs.mean()))

    def scaled(self, input_scale: float = 1.0, output_scale: float = 1.0, name: str | None = None) -> "Dataset":
        """A copy with scaled lengths (the paper's ix2/ox2 construction)."""
        return replace(
            self,
            name=name or f"{self.name}-i{input_scale:g}o{output_scale:g}",
            input_scale=self.input_scale * input_scale,
            output_scale=self.output_scale * output_scale,
        )


SHAREGPT = Dataset(name="ShareGPT")


def sharegpt() -> Dataset:
    """The base ShareGPT-like dataset."""
    return SHAREGPT


def sharegpt_ix2() -> Dataset:
    """ShareGPT with input lengths scaled 2x (paper's ShareGPT-ix2)."""
    return SHAREGPT.scaled(input_scale=2.0, name="ShareGPT-ix2")


def sharegpt_ox2() -> Dataset:
    """ShareGPT with output lengths scaled 2x (paper's ShareGPT-ox2)."""
    return SHAREGPT.scaled(output_scale=2.0, name="ShareGPT-ox2")
