"""The unified ``REPRO_*`` environment-variable surface.

Every knob the harness reads from the environment is declared here —
one registry consulted by :meth:`repro.core.RunSettings.from_env` and
:meth:`repro.fleet.FleetConfig.from_env` — so an unrecognized
``REPRO_*`` key can be flagged with the *nearest* valid key (a typo'd
knob silently doing nothing is worse than noise), and the README's key
table is generated rather than hand-maintained::

    PYTHONPATH=src python -m repro.envkeys   # prints the markdown table

The ``REPRO_TUNE_<FIELD>`` family is derived from the fields of
:class:`repro.policy.tunables.Tunables`, so new tunables are covered
automatically.
"""

from __future__ import annotations

import difflib
import warnings
from dataclasses import fields
from typing import Mapping, Optional

from .policy.tunables import Tunables

__all__ = [
    "ENV_KEYS",
    "known_env_keys",
    "suggest_env_key",
    "warn_unknown_env_keys",
    "format_env_table",
]

#: Every exact REPRO_* key the harness understands, with the one-line
#: description the generated README table carries.
ENV_KEYS: dict[str, str] = {
    "REPRO_BENCH_HORIZON": "Simulated seconds of trace per bench run (default 150).",
    "REPRO_BENCH_SCALE": "Multiplier on benchmark parameter grids (default 1.0).",
    "REPRO_BENCH_SEED": "Workload seed for benches and smoke runs (default 2025).",
    "REPRO_OBS": "Observability level: `off`, `metrics`, or `full`.",
    "REPRO_POLICIES": "Policy bundle name steering builds (e.g. `aegaeon-slo-admission`).",
    "REPRO_INVARIANTS": "Set to `1` to arm the runtime InvariantChecker in every build.",
    "REPRO_FLEET_SHARDS": "Shard count for `FleetConfig.from_env` (default 4).",
    "REPRO_FLEET_VIRTUAL_NODES": "Consistent-hash vnodes per shard (default 64).",
    "REPRO_FLEET_CONTROLLER": "Fleet control policy: `static`, `forecast`, or empty/`off`.",
    "REPRO_FLEET_TICK": "Fleet controller tick interval in simulated seconds (default 5).",
    "REPRO_FLEET_SPILL_HOPS": "Max cross-shard spillover hops per rejected request (default 2).",
    "REPRO_WORKLOAD_SESSION_RATE": "Agentic session arrivals per second (default 0.2).",
    "REPRO_WORKLOAD_HORIZON": "Seconds of agentic session arrivals (default 120).",
    "REPRO_WORKLOAD_SEED": "Seed of the agentic DAG generator (default 0).",
    "REPRO_WORKLOAD_AGENTS": "Distinct agent variant groups in the workload (default 4).",
    "REPRO_WORKLOAD_MAX_STAGES": "Max stages per agentic session DAG (default 5).",
    "REPRO_WORKLOAD_MAX_FANOUT": "Max direct children of any DAG stage (default 2).",
    "REPRO_WORKLOAD_THINK_TIME": "Mean think time between dependent stages, seconds (default 0.2).",
}

_TUNE_DESCRIPTION = (
    "Override one `Tunables` field (e.g. `REPRO_TUNE_QMAX=2.0`); "
    "one key per field of `repro.policy.Tunables`."
)


def known_env_keys() -> dict[str, str]:
    """All recognized keys: the exact registry plus ``REPRO_TUNE_*``."""
    keys = dict(ENV_KEYS)
    for spec in fields(Tunables):
        keys[f"REPRO_TUNE_{spec.name.upper()}"] = _TUNE_DESCRIPTION
    return keys


def suggest_env_key(key: str) -> Optional[str]:
    """The nearest recognized key to a mistyped one, if any is close."""
    matches = difflib.get_close_matches(key, sorted(known_env_keys()), n=1)
    return matches[0] if matches else None


def warn_unknown_env_keys(
    environ: Mapping[str, str], *, stacklevel: int = 3
) -> None:
    """Flag every unrecognized ``REPRO_*`` key in ``environ``.

    Each warning names the nearest valid key when one is plausible, and
    points at this module's table for the full surface.
    """
    known = known_env_keys()
    for key in environ:
        if not key.startswith("REPRO_") or key in known:
            continue
        suggestion = suggest_env_key(key)
        hint = f"; did you mean {suggestion!r}?" if suggestion else ""
        warnings.warn(
            f"unrecognized environment variable {key!r}{hint} "
            f"(run `python -m repro.envkeys` for the full REPRO_* table)",
            RuntimeWarning,
            stacklevel=stacklevel,
        )


def format_env_table() -> str:
    """The README's markdown table of every ``REPRO_*`` key."""
    rows = dict(ENV_KEYS)
    rows["REPRO_TUNE_<FIELD>"] = _TUNE_DESCRIPTION
    width = max(len(key) for key in rows)
    lines = [
        f"| {'Variable'.ljust(width)} | Meaning |",
        f"| {'-' * width} | ------- |",
    ]
    for key, description in rows.items():
        lines.append(f"| `{key}`".ljust(width + 4) + f" | {description} |")
    return "\n".join(lines)


if __name__ == "__main__":
    print(format_env_table())
