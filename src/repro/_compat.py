"""Deprecation plumbing shared across the package.

:func:`warn_deprecated` is the warn-once-per-call-site helper behind
every still-deprecated entry point — today that is the loose
``build_system(name, env, ...)`` keyword form superseded by
:class:`repro.core.SystemSpec`.  The shims sit under loops in
downstream scripts; a naive ``warnings.warn`` spams one line per
iteration whenever the ambient filter is ``always`` (pytest, many
notebook setups).  Deduplicating on the *caller's* ``(filename,
lineno)`` makes each call site warn exactly once per process regardless
of filter configuration, with the warning attributed to the caller
(``stacklevel``), not the shim body.

Fully-removed entry points (``synthesize_trace``, ``Dataset.sample``)
no longer leave stubs behind: after a release cycle as RuntimeError
shims they were deleted outright, so stale callers now fail at import
or attribute lookup.
"""

from __future__ import annotations

import sys
import warnings

__all__ = ["warn_deprecated"]

#: Caller (filename, lineno) pairs that have already warned.
_warned_sites: set[tuple[str, int]] = set()


def warn_deprecated(message: str, *, depth: int = 2) -> None:
    """Emit ``DeprecationWarning`` once per call site of the shim.

    Must be called directly from the deprecated function: frame depth 2
    (and ``stacklevel`` ``depth + 1``) is the shim's caller.  Shims that
    sit one wrapper deeper pass ``depth=3``.
    """
    frame = sys._getframe(depth)
    site = (frame.f_code.co_filename, frame.f_lineno)
    if site in _warned_sites:
        return
    _warned_sites.add(site)
    warnings.warn(message, DeprecationWarning, stacklevel=depth + 1)
