"""Deterministic chaos engineering for the Aegaeon reproduction.

``repro.chaos`` turns degraded-mode behaviour into a first-class,
testable surface.  A :class:`FaultPlan` declares *what* goes wrong and
*when*; a :class:`FaultInjector` delivers each fault through ordinary
simulation events so faulted runs stay byte-reproducible; an
:class:`InvariantChecker` rides along and continuously verifies that
the system preserves the paper's scheduling semantics while the faults
land.

Typical use::

    from repro.chaos import FaultPlan, InstanceFailure, TransferStall

    plan = FaultPlan.of(
        TransferStall(at=4.0, duration=1.0),
        InstanceFailure(at=8.0, instance="decode1"),
    )
    system = build_system(
        SystemSpec(config=config, faults=plan, invariants=True), env
    )
"""

from .injector import ArmedFetchFailures, FaultInjector
from .invariants import InvariantChecker, InvariantViolation, Violation
from .plan import (
    Fault,
    FaultPlan,
    FetchFailure,
    InstanceFailure,
    LatencySpike,
    LinkThrottle,
    TransferStall,
)

__all__ = [
    "ArmedFetchFailures",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FetchFailure",
    "InstanceFailure",
    "InvariantChecker",
    "InvariantViolation",
    "LatencySpike",
    "LinkThrottle",
    "TransferStall",
    "Violation",
]
