"""The fault injector: turns a :class:`FaultPlan` into simulation events.

One :class:`FaultInjector` attaches to a serving system and spawns one
driver process per fault record.  Every disruption is delivered through
the same primitives ordinary components use — timeouts, stream ops,
attribute flips scheduled on the event queue — so a faulted run stays
byte-reproducible under a fixed seed and fault plan.

The injector never reaches into component internals beyond the
designated chaos surfaces:

* ``QuickLoader.fetch_disruptor`` — armed fetch failures (§ remote
  checkpoint registry);
* ``CudaStream.compute`` on the KV streams — transfer stalls;
* ``Link.throttle`` / ``Link.restore`` — degraded host links;
* ``ServingSystem.fail_instance`` — GPU/instance loss;
* ``AegaeonEngine.perf_factor`` — compute latency spikes.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..obs import NULL_OBS, Observability
from .plan import (
    Fault,
    FaultPlan,
    FetchFailure,
    InstanceFailure,
    LatencySpike,
    LinkThrottle,
    TransferStall,
)

__all__ = ["FaultInjector", "ArmedFetchFailures"]


class ArmedFetchFailures:
    """Per-loader queue of pending fetch failures.

    Installed as ``QuickLoader.fetch_disruptor``; the loader consults it
    once per remote fetch attempt.  Returns the seconds wasted by a
    failed attempt, or ``None`` when the fetch should succeed.
    """

    __slots__ = ("pending", "tripped")

    def __init__(self) -> None:
        self.pending: list[float] = []  # wasted-seconds per armed failure
        self.tripped = 0

    def arm(self, count: int, wasted: float) -> None:
        """Queue ``count`` failures, each wasting ``wasted`` seconds."""
        self.pending.extend([wasted] * count)

    def __call__(self, model: str) -> Optional[float]:
        if self.pending:
            self.tripped += 1
            return self.pending.pop(0)
        return None


class FaultInjector:
    """Delivers a :class:`FaultPlan` into a live serving system."""

    def __init__(
        self,
        system,
        plan: FaultPlan,
        obs: Observability = NULL_OBS,
    ):
        self.system = system
        self.env = system.env
        self.plan = plan
        self.delivered: list[Fault] = []
        self.skipped: list[tuple[Fault, str]] = []
        scope = obs.scoped("chaos")
        self._delivered_counter = scope.counter("faults_delivered")
        self._skipped_counter = scope.counter("faults_skipped")
        for fault in plan.faults:
            self.env.process(self._drive(fault))

    # -- resolution ---------------------------------------------------------
    def _engines(self, pattern: str) -> list:
        engines = self.system.engines()
        if pattern == "*":
            return list(engines)
        return [engine for engine in engines if engine.name == pattern]

    # -- delivery -----------------------------------------------------------
    def _drive(self, fault: Fault) -> Generator:
        """Process: wait until the fault's time, then apply it."""
        delay = fault.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        if isinstance(fault, FetchFailure):
            applied = self._apply_fetch(fault)
        elif isinstance(fault, TransferStall):
            applied = self._apply_stall(fault)
        elif isinstance(fault, LinkThrottle):
            applied = yield from self._apply_throttle(fault)
        elif isinstance(fault, InstanceFailure):
            applied = self._apply_kill(fault)
        elif isinstance(fault, LatencySpike):
            applied = yield from self._apply_spike(fault)
        else:  # pragma: no cover - plan types are closed
            applied = False
        if applied:
            self.delivered.append(fault)
            self._delivered_counter.inc()
        else:
            self._skipped_counter.inc()

    def _skip(self, fault: Fault, reason: str) -> bool:
        self.skipped.append((fault, reason))
        return False

    def _apply_fetch(self, fault: FetchFailure) -> bool:
        engines = self._engines(fault.engine)
        if not engines:
            return self._skip(fault, f"no engine matches {fault.engine!r}")
        for engine in engines:
            loader = engine.quick_loader
            if loader.fetch_disruptor is None:
                loader.fetch_disruptor = ArmedFetchFailures()
            loader.fetch_disruptor.arm(fault.count, fault.wasted)
        return True

    def _apply_stall(self, fault: TransferStall) -> bool:
        engines = self._engines(fault.engine)
        if not engines:
            return self._skip(fault, f"no engine matches {fault.engine!r}")
        for engine in engines:
            stream = engine.kv.kv_in if fault.direction == "in" else engine.kv.kv_out
            stream.compute(fault.duration)
        return True

    def _apply_throttle(self, fault: LinkThrottle) -> Generator:
        engines = self._engines(fault.engine)
        if not engines:
            return self._skip(fault, f"no engine matches {fault.engine!r}")
        links = []
        seen: set[int] = set()
        for engine in engines:
            for link in (engine.link.h2d, engine.link.d2h):
                wanted = (
                    fault.direction == "both"
                    or link is engine.link.h2d
                    and fault.direction == "h2d"
                    or link is engine.link.d2h
                    and fault.direction == "d2h"
                )
                # TP groups share a lead link; throttle each link once.
                if wanted and id(link) not in seen:
                    seen.add(id(link))
                    links.append(link)
        for link in links:
            link.throttle(fault.factor)
        yield self.env.timeout(fault.duration)
        for link in links:
            link.restore(fault.factor)
        return True

    def _apply_kill(self, fault: InstanceFailure) -> bool:
        fail = getattr(self.system, "fail_instance", None)
        if fail is None:
            return self._skip(fault, "system does not support instance failure")
        try:
            fail(fault.instance)
        except KeyError:
            return self._skip(fault, f"no instance named {fault.instance!r}")
        return True

    def _apply_spike(self, fault: LatencySpike) -> Generator:
        engines = self._engines(fault.engine)
        if not engines:
            return self._skip(fault, f"no engine matches {fault.engine!r}")
        for engine in engines:
            engine.perf_factor *= fault.factor
        yield self.env.timeout(fault.duration)
        for engine in engines:
            engine.perf_factor /= fault.factor
            # Overlapping spikes compose multiplicatively; snap residual
            # float error so a quiet engine returns to exactly 1.0.
            if abs(engine.perf_factor - 1.0) < 1e-9:
                engine.perf_factor = 1.0
        return True
