"""Runtime invariant checking for serving runs.

An :class:`InvariantChecker` attaches to any serving system speaking the
:class:`~repro.core.serving.ServingSystem` protocol and periodically
verifies, *while the run is in flight*, that the system still preserves
the paper's scheduling semantics:

**I1 — KV-block conservation.**  For every slab allocator, internal
accounting is exact (per-slab free+used partitions, ``held_bytes``
matches assigned slabs, peak is monotone, allocated−freed equals live
blocks).  Across the system, every live block is owned by exactly one
party: a request's KV handle, a move list (rule ❸ deferred frees), or an
in-flight swap-out source.  CPU-cache ownership reconciles exactly;
GPU-cache ownership reconciles as a sum across engines.

**I2 — Token monotonicity.**  Per request: token timestamps are
non-decreasing, never exceed the requested output length, never precede
arrival, and never lie in the simulation's future.

**I3 — No work on dead instances.**  A failed instance holds no queued
groups or batches and is absent from every scheduler's dispatch list.

**I4 — SLO-accounting consistency.**  Registry counts reconcile with
the proxy's request list and the system's finished/failed/rejected
ledgers; a FINISHED phase implies a complete token stream and a
finish timestamp.

Violations are collected (not raised mid-run) so a test can complete a
faulted scenario and then :meth:`assert_clean` — the difference between
"did not crash" and "provably preserved the invariants under chaos".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable

from ..engine.request import Phase

__all__ = ["InvariantChecker", "InvariantViolation", "Violation"]


class InvariantViolation(AssertionError):
    """Raised by :meth:`InvariantChecker.assert_clean` on any violation."""


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: float
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[t={self.time:.3f}] {self.invariant}: {self.detail}"


class InvariantChecker:
    """Periodic, attachable runtime verifier for one serving system."""

    def __init__(self, system, interval: float = 0.5, max_violations: int = 100):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.system = system
        self.env = system.env
        self.interval = interval
        self.max_violations = max_violations
        self.violations: list[Violation] = []
        self.checks_run = 0
        # Per-request token-stream cursor: timestamps before the cursor
        # were already verified, so each check is O(new tokens) rather
        # than O(all tokens) — cheap enough for every test.
        self._token_cursor: dict[int, int] = {}
        self._finished_checked = 0
        self._process = self.env.process(self._run())

    # -- driver -------------------------------------------------------------
    def _run(self) -> Generator:
        while len(self.violations) < self.max_violations:
            yield self.env.timeout(self.interval)
            self.check_now()

    def check_now(self) -> list[Violation]:
        """Run every invariant once; returns violations found this pass."""
        before = len(self.violations)
        self._check_kv_conservation()
        self._check_tokens()
        self._check_dead_instances()
        self._check_accounting()
        self.checks_run += 1
        return self.violations[before:]

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if any check ever failed."""
        if self.violations:
            summary = "\n".join(str(v) for v in self.violations[:20])
            raise InvariantViolation(
                f"{len(self.violations)} invariant violation(s):\n{summary}"
            )

    def _flag(self, invariant: str, detail: str) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(Violation(self.env.now, invariant, detail))

    # -- I1: KV-block conservation -----------------------------------------
    def _check_kv_conservation(self) -> None:
        engines = self._engines()
        if not engines:
            return
        gpu_used_total = 0
        cpu_caches: dict[int, object] = {}
        move_lists: dict[int, object] = {}
        inflight_sources = 0
        for engine in engines:
            gpu_used_total += self._check_allocator(engine.gpu_kv_cache)
            manager = engine.kv
            cpu_caches[id(manager.cpu_cache)] = manager.cpu_cache
            move_lists[id(manager.move_list)] = manager.move_list
            inflight_sources += sum(
                len(blocks) for blocks in manager.inflight_sources
            )
        cpu_used_total = sum(
            self._check_allocator(cache) for cache in cpu_caches.values()
        )
        # Counting, not per-block identity: a double-owned block makes
        # the owned side exceed the allocator's live count, so the exact
        # equations below catch leaks AND double-ownership in aggregate
        # at O(requests) instead of O(blocks) per check.
        owned_gpu = 0
        owned_cpu = 0
        for request in self._requests():
            kv = request.kv
            if kv is None:
                continue
            owned_gpu += len(kv.gpu_blocks)
            owned_cpu += len(kv.cpu_blocks)
        moving = sum(
            move_list.pending_blocks for move_list in move_lists.values()
        )
        if owned_cpu + moving != cpu_used_total:
            self._flag(
                "kv-conservation",
                f"CPU cache leak: {cpu_used_total} blocks live in the "
                f"allocator, {owned_cpu} owned by requests + {moving} in "
                "move lists",
            )
        if owned_gpu + inflight_sources != gpu_used_total:
            self._flag(
                "kv-conservation",
                f"GPU cache leak: {gpu_used_total} blocks live across "
                f"engines, {owned_gpu} owned by requests + "
                f"{inflight_sources} in-flight swap-out sources",
            )

    def _check_allocator(self, allocator) -> int:
        """Verify one slab allocator's internal accounting; returns its
        live (used) block count.

        Only assigned slabs are walked (a mostly-empty multi-thousand
        slab CPU cache would dominate the check otherwise); the free
        pool is verified by count against the region total.
        """
        used_total = 0
        assigned = 0
        slabs = allocator._slabs
        for indices in allocator._shape_slabs.values():
            for index in indices:
                slab = slabs[index]
                assigned += 1
                used = slab.used_count
                free = len(slab.free_blocks)
                if used + free != slab.blocks_per_slab:
                    self._flag(
                        "kv-conservation",
                        f"{allocator.name}: slab {slab.index} partitions "
                        f"{used} used + {free} free != {slab.blocks_per_slab}",
                    )
                used_total += used
        if assigned + len(allocator._free_slabs) != allocator.slab_count:
            self._flag(
                "kv-conservation",
                f"{allocator.name}: {assigned} assigned + "
                f"{len(allocator._free_slabs)} free slabs != "
                f"{allocator.slab_count} in the region",
            )
        if allocator.held_bytes != assigned * allocator.slab_bytes:
            self._flag(
                "kv-conservation",
                f"{allocator.name}: held_bytes {allocator.held_bytes} != "
                f"{assigned} assigned slabs x {allocator.slab_bytes}",
            )
        if allocator.peak_held_bytes < allocator.held_bytes:
            self._flag(
                "kv-conservation",
                f"{allocator.name}: peak {allocator.peak_held_bytes} below "
                f"current held {allocator.held_bytes}",
            )
        if allocator.blocks_allocated - allocator.blocks_freed != used_total:
            self._flag(
                "kv-conservation",
                f"{allocator.name}: allocated {allocator.blocks_allocated} - "
                f"freed {allocator.blocks_freed} != {used_total} live blocks",
            )
        return used_total

    # -- I2: token monotonicity --------------------------------------------
    def _check_tokens(self) -> None:
        now = self.env.now
        cursors = self._token_cursor
        for request in self._requests():
            times = request.token_times
            count = len(times)
            if count > request.output_tokens:
                self._flag(
                    "token-monotonicity",
                    f"request {request.request_id} generated {count} "
                    f"tokens of {request.output_tokens}",
                )
            if not count:
                if request.request_id in cursors:
                    # Chaos reset the stream; restart the cursor.
                    cursors[request.request_id] = 0
                continue
            start = cursors.get(request.request_id, 0)
            if start > count:  # stream shrank: re-verify from scratch
                start = 0
            if start == 0:
                if times[0] < request.arrival:
                    self._flag(
                        "token-monotonicity",
                        f"request {request.request_id} token before arrival",
                    )
                start = 1
            prev = times[start - 1]
            for index in range(start, count):
                t = times[index]
                if t < prev:
                    self._flag(
                        "token-monotonicity",
                        f"request {request.request_id} timestamps decrease "
                        f"at index {index}",
                    )
                    break
                prev = t
            if times[-1] > now + 1e-9:
                self._flag(
                    "token-monotonicity",
                    f"request {request.request_id} token in the future "
                    f"({times[-1]:.3f} > {now:.3f})",
                )
            cursors[request.request_id] = count

    # -- I3: no work on dead instances --------------------------------------
    def _check_dead_instances(self) -> None:
        system = self.system
        pools = (
            getattr(system, "prefill_instances", ()),
            getattr(system, "decode_instances", ()),
        )
        schedulers = [
            sched
            for sched in (
                getattr(system, "prefill_scheduler", None),
                getattr(system, "decode_scheduler", None),
            )
            if sched is not None
        ]
        for pool in pools:
            for instance in pool:
                if not getattr(instance, "dead", False):
                    continue
                queued = sum(
                    len(group.requests)
                    for group in getattr(instance, "groups", ())
                ) + sum(
                    len(batch.requests)
                    for batch in getattr(instance, "work_list", ())
                )
                if queued:
                    self._flag(
                        "dead-instance",
                        f"{instance.name} is dead but holds {queued} "
                        "queued request(s)",
                    )
                for sched in schedulers:
                    if instance in sched.instances:
                        self._flag(
                            "dead-instance",
                            f"{instance.name} is dead but still in "
                            f"{type(sched).__name__}'s dispatch list",
                        )

    # -- I4: SLO-accounting consistency --------------------------------------
    def _check_accounting(self) -> None:
        system = self.system
        registry = getattr(system, "registry", None)
        proxy = getattr(system, "proxy", None)
        if registry is None or proxy is None:
            return
        if registry.submitted != proxy.submitted:
            self._flag(
                "slo-accounting",
                f"registry saw {registry.submitted} submissions, proxy "
                f"admitted {proxy.submitted} requests",
            )
        retaining = getattr(system, "retain_requests", True)
        finished = getattr(system, "finished", [])
        failed = getattr(system, "failed", [])
        rejected = getattr(system, "rejected", [])
        if retaining:
            if registry.finished != len(finished):
                self._flag(
                    "slo-accounting",
                    f"registry counts {registry.finished} finished, system "
                    f"ledger holds {len(finished)}",
                )
            accounted = len(finished) + len(failed) + len(rejected)
        else:
            accounted = getattr(system, "accounted", 0)
            # Ledgers stay empty; the live map must mirror the registry's
            # in-flight arithmetic exactly.
            if len(proxy.live) != registry.in_flight:
                self._flag(
                    "slo-accounting",
                    f"proxy tracks {len(proxy.live)} live requests, registry "
                    f"arithmetic says {registry.in_flight} in flight",
                )
        if accounted > registry.submitted:
            self._flag(
                "slo-accounting",
                f"{accounted} requests accounted for, only "
                f"{registry.submitted} submitted",
            )
        if registry.in_flight < 0:
            self._flag(
                "slo-accounting", f"negative in-flight: {registry.in_flight}"
            )
        if retaining:
            # Only entries appended since the last pass need vetting.
            for request in finished[self._finished_checked :]:
                if not request.finished or request.finish_time is None:
                    self._flag(
                        "slo-accounting",
                        f"request {request.request_id} in the finished ledger "
                        "with an incomplete token stream",
                    )
            self._finished_checked = len(finished)

    def vet_terminal(self, request) -> None:
        """Per-request vetting at disposal time (non-retained runs).

        Replaces the finished-ledger sweep: each request is checked once,
        right before the system drops it, and its token cursor is
        released so checker memory tracks concurrency too.
        """
        if request.phase is Phase.FINISHED and (
            not request.finished or request.finish_time is None
        ):
            self._flag(
                "slo-accounting",
                f"request {request.request_id} disposed as finished with an "
                "incomplete token stream",
            )
        self._token_cursor.pop(request.request_id, None)

    # -- access helpers -------------------------------------------------------
    def _engines(self) -> list:
        engines = getattr(self.system, "engines", None)
        return list(engines()) if callable(engines) else []

    def _requests(self) -> Iterable:
        proxy = getattr(self.system, "proxy", None)
        return proxy.tracked_requests() if proxy is not None else ()
