"""Declarative, seeded fault plans.

A :class:`FaultPlan` is an immutable list of fault records — *what* goes
wrong, *where*, and *when* in simulated time.  Plans are pure data: the
:class:`~repro.chaos.injector.FaultInjector` turns each record into an
ordinary simulation event at attach time, so a run under a fault plan is
exactly as deterministic as a run without one.

Plans come from two places:

* hand-written, for targeted regression scenarios
  (``FaultPlan.of(InstanceFailure(at=12.0, instance="decode1"), ...)``);
* :meth:`FaultPlan.seeded`, which draws a randomized-but-reproducible
  plan from a seed — the chaos suite's bread and butter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

__all__ = [
    "FetchFailure",
    "TransferStall",
    "LinkThrottle",
    "InstanceFailure",
    "LatencySpike",
    "Fault",
    "FaultPlan",
]


@dataclass(frozen=True)
class FetchFailure:
    """Fail the next ``count`` remote checkpoint fetches on an engine.

    Each failed fetch wastes ``wasted`` seconds before the failure
    surfaces (a registry timeout); the loader then retries with
    exponential backoff, so a plan with ``count`` below the loader's
    retry budget degrades the run without losing requests.
    """

    at: float
    engine: str = "*"  # engine name, or "*" for every engine
    count: int = 1
    wasted: float = 0.25

    def __post_init__(self) -> None:
        if self.at < 0 or self.count < 1 or self.wasted < 0:
            raise ValueError(f"invalid fetch failure: {self!r}")


@dataclass(frozen=True)
class TransferStall:
    """Occupy a KV stream for ``duration`` seconds.

    Delivered as an ordinary stream op, so it serializes with in-flight
    copies exactly like a hung DMA: work already enqueued completes,
    work enqueued after the stall waits it out.
    """

    at: float
    engine: str = "*"
    direction: str = "in"  # "in" (swap-in stream) or "out" (swap-out)
    duration: float = 0.5

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out"):
            raise ValueError(f"direction must be 'in' or 'out': {self!r}")
        if self.at < 0 or self.duration <= 0:
            raise ValueError(f"invalid transfer stall: {self!r}")


@dataclass(frozen=True)
class LinkThrottle:
    """Degrade a host link's bandwidth by ``factor`` for ``duration`` s.

    Models a congested or downtrained PCIe link: everything on the link
    (weight loads, KV swaps) slows down together.
    """

    at: float
    engine: str = "*"
    direction: str = "both"  # "h2d", "d2h", or "both"
    factor: float = 4.0
    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.direction not in ("h2d", "d2h", "both"):
            raise ValueError(f"bad link direction: {self!r}")
        if self.at < 0 or self.factor <= 1.0 or self.duration <= 0:
            raise ValueError(f"invalid link throttle: {self!r}")


@dataclass(frozen=True)
class InstanceFailure:
    """Take one named instance (its GPU / TP group) offline mid-run."""

    at: float
    instance: str = ""

    def __post_init__(self) -> None:
        if self.at < 0 or not self.instance:
            raise ValueError(f"invalid instance failure: {self!r}")


@dataclass(frozen=True)
class LatencySpike:
    """Multiply an engine's compute latency by ``factor`` for a window.

    Models thermal throttling / noisy neighbours: prefill and decode
    step times inflate, which the schedulers see through their
    step-time estimates.
    """

    at: float
    engine: str = "*"
    factor: float = 2.0
    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0 or self.factor <= 1.0 or self.duration <= 0:
            raise ValueError(f"invalid latency spike: {self!r}")


Fault = Union[FetchFailure, TransferStall, LinkThrottle, InstanceFailure, LatencySpike]

#: Fault kinds eligible for seeded generation.  InstanceFailure is only
#: drawn when the caller names candidate instances — the generator
#: cannot guess instance names.
_SEEDED_KINDS = ("fetch", "stall", "throttle", "spike", "kill")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults, ordered by injection time."""

    faults: tuple[Fault, ...] = ()
    seed: int | None = None  # provenance, when drawn by :meth:`seeded`

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        """Build a plan from explicit fault records."""
        return cls(faults=tuple(sorted(faults, key=lambda f: f.at)))

    @classmethod
    def seeded(
        cls,
        seed: int,
        horizon: float,
        count: int = 4,
        instances: Sequence[str] = (),
        max_kills: int = 1,
    ) -> "FaultPlan":
        """Draw a reproducible random plan over ``[0, horizon)``.

        ``instances`` names the instances eligible for
        :class:`InstanceFailure`; at most ``max_kills`` are drawn so a
        seeded plan cannot depopulate a pool.  The same ``(seed,
        horizon, count, instances, max_kills)`` always yields the same
        plan.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = np.random.default_rng(seed)
        kinds = [k for k in _SEEDED_KINDS if k != "kill" or instances]
        kills_left = max_kills
        faults: list[Fault] = []
        for _ in range(count):
            kind = kinds[int(rng.integers(len(kinds)))]
            # Keep faults off the very end of the horizon so their
            # effects land while traffic is still flowing.
            at = float(rng.uniform(0.05, 0.9) * horizon)
            if kind == "kill" and kills_left > 0:
                kills_left -= 1
                faults.append(
                    InstanceFailure(
                        at=at,
                        instance=str(instances[int(rng.integers(len(instances)))]),
                    )
                )
            elif kind == "fetch":
                faults.append(
                    FetchFailure(
                        at=at,
                        count=int(rng.integers(1, 3)),
                        wasted=float(rng.uniform(0.05, 0.5)),
                    )
                )
            elif kind == "stall":
                faults.append(
                    TransferStall(
                        at=at,
                        direction="in" if rng.random() < 0.5 else "out",
                        duration=float(rng.uniform(0.1, 1.5)),
                    )
                )
            elif kind == "throttle":
                faults.append(
                    LinkThrottle(
                        at=at,
                        factor=float(rng.uniform(2.0, 8.0)),
                        duration=float(rng.uniform(0.5, 3.0)),
                    )
                )
            else:  # spike, or a "kill" drawn after the budget ran out
                faults.append(
                    LatencySpike(
                        at=at,
                        factor=float(rng.uniform(1.5, 3.0)),
                        duration=float(rng.uniform(0.5, 2.0)),
                    )
                )
        faults.sort(key=lambda fault: fault.at)
        return cls(faults=tuple(faults), seed=seed)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def kind_counts(self) -> dict[str, int]:
        """Fault count per kind name (for logs and plan summaries)."""
        counts: dict[str, int] = {}
        for fault in self.faults:
            name = type(fault).__name__
            counts[name] = counts.get(name, 0) + 1
        return counts
