"""Decode-round ordering and weighted-turn quotas (§4.3, Eqs. 2-3).

The quota mathematics used to live in ``repro.core.decode_sched`` with
its constants inlined; it is now the reference implementation behind the
:class:`~repro.policy.DecodeTurnPolicy` seam, parameterized by the
:class:`~repro.policy.tunables.Tunables` carried on a policy bundle
(``qmax``, the Eq. 3 ``alpha_floor``).  ``repro.core.decode_sched``
re-exports the functions, so existing imports keep working.

For target TBT ``d`` and step time ``t``, every ``n = d/t`` decoded
steps tolerate ``n*(d - t)`` of delay without violating per-token
deadlines, because the output stream can be buffered.  A round of
weighted turns sizes each batch's time quota so the whole round's
auto-scaling cost ``c`` fits inside the earned slack:

    q_i = c / (n_i * (alpha - sum_k 1/n_k))                     (Eq. 2)
    alpha = max(c / (min_k n_k * qmax) + sum_k 1/n_k, floor)    (Eq. 3)

``1/alpha`` is the round's estimated SLO attainment.
"""

from __future__ import annotations

from typing import Sequence

from .tunables import DEFAULT_TUNABLES, Tunables

__all__ = [
    "reorder_work_list",
    "compute_quotas",
    "estimate_round_attainment",
    "WeightedRoundPolicy",
]


def reorder_work_list(work_list: list) -> list:
    """Group batches of the same model adjacently, preserving first-seen order.

    Same-model batches occur when one batch's KV needs exceed the GPU
    cache; placing them adjacently avoids pointless switches.  When the
    list is already grouped — the overwhelmingly common case — the input
    list itself is returned, letting callers skip the copy-back.
    """
    order: dict[str, int] = {}
    sorted_already = True
    last_index = -1
    for batch in work_list:
        index = order.setdefault(batch.spec.name, len(order))
        if index < last_index:
            sorted_already = False
        last_index = index
    if sorted_already:
        return work_list
    indexed = sorted(
        enumerate(work_list),
        key=lambda item: (order[item[1].spec.name], item[0]),
    )
    return [batch for _, batch in indexed]


def compute_quotas(
    batches: Sequence,
    step_times: Sequence[float],
    total_switch_cost: float,
    slo,
    qmax: float = DEFAULT_TUNABLES.qmax,
    alpha_floor: float = DEFAULT_TUNABLES.alpha_floor,
) -> list[float]:
    """Assign the Eq. 2 time quota to every batch in a round.

    ``step_times`` are the estimated per-step decode times ``t_k``;
    ``total_switch_cost`` is ``c``, the summed auto-scaling overhead of
    the round's model switches.
    """
    if len(batches) != len(step_times):
        raise ValueError("need one step-time estimate per batch")
    if not batches:
        return []
    # n_k = d / t_k, the tokens one TBT period buys.
    slack_ratios = [max(slo.tbt / max(t, 1e-9), 1.0 + 1e-9) for t in step_times]
    inverse_sum = sum(1.0 / n for n in slack_ratios)
    if total_switch_cost <= 0.0 or len(batches) == 1:
        # No scaling cost to amortize: turns default to the maximum
        # quota (a single batch simply keeps decoding).
        return [qmax] * len(batches)
    alpha = max(
        total_switch_cost / (min(slack_ratios) * qmax) + inverse_sum,
        alpha_floor,
    )
    quotas = []
    for n in slack_ratios:
        quota = total_switch_cost / (n * (alpha - inverse_sum))
        quotas.append(min(max(quota, 0.0), qmax))
    return quotas


def estimate_round_attainment(
    step_times: Sequence[float],
    total_switch_cost: float,
    slo,
    qmax: float = DEFAULT_TUNABLES.qmax,
    alpha_floor: float = DEFAULT_TUNABLES.alpha_floor,
) -> float:
    """The scheduler's own 1/alpha attainment estimate for a round."""
    if not step_times:
        return 1.0
    slack_ratios = [max(slo.tbt / max(t, 1e-9), 1.0 + 1e-9) for t in step_times]
    inverse_sum = sum(1.0 / n for n in slack_ratios)
    if total_switch_cost <= 0.0:
        return 1.0
    alpha = max(
        total_switch_cost / (min(slack_ratios) * qmax) + inverse_sum, alpha_floor
    )
    return min(1.0, 1.0 / alpha)


class WeightedRoundPolicy:
    """Algorithm 2's round shape: model-grouped order, Eq. 2-3 quotas.

    The default :class:`~repro.policy.DecodeTurnPolicy` of every bundle;
    byte-for-byte the behaviour the decode instances hard-coded before
    the policy layer existed.
    """

    def __init__(self, tunables: Tunables = DEFAULT_TUNABLES):
        self.tunables = tunables

    @property
    def qmax(self) -> float:
        return self.tunables.qmax

    def order(self, work_list: list) -> list:
        return reorder_work_list(work_list)

    def quotas(
        self, batches: Sequence, step_times: Sequence[float],
        switch_cost: float, slo,
    ) -> list[float]:
        return compute_quotas(
            batches, step_times, switch_cost, slo,
            qmax=self.tunables.qmax, alpha_floor=self.tunables.alpha_floor,
        )

    def attainment(
        self, step_times: Sequence[float], switch_cost: float, slo
    ) -> float:
        return estimate_round_attainment(
            step_times, switch_cost, slo,
            qmax=self.tunables.qmax, alpha_floor=self.tunables.alpha_floor,
        )
