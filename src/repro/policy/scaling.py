"""Scaling policies: when an engine preempts its resident model.

The execution machinery (the §5 scale-up state machine, prefetching,
KV swaps) lives in :class:`~repro.engine.engine.AegaeonEngine`; a
scaling policy decides *whether and when* that machinery runs:

* :class:`TokenLevelScaling` — Aegaeon's trigger: preempt whenever the
  next scheduled work item needs a different model (token-level
  auto-scaling, the paper's core mechanism).  Also charges a decode
  round its summed switch cost ``c`` (Eq. 4 estimates), which the
  decode-turn policy amortizes into quotas.
* :class:`RequestLevelScaling` — ServerlessLLM's trigger: an instance
  only ever switches when its running requests have drained, and the
  queue order (FCFS, or oracle SJF for the ``+`` variant) decides the
  next model.  Head-of-line blocking under aggressive pooling is
  exactly the behaviour §3.1 analyzes.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["TokenLevelScaling", "RequestLevelScaling"]


class TokenLevelScaling:
    """Preempt whenever the target model differs from the resident one."""

    def should_switch(self, engine: Any, spec: Any) -> bool:
        current = engine.current_model
        return current is None or current.name != spec.name

    def round_switch_cost(self, engine: Any, batches: Sequence) -> float:
        """``c``: summed auto-scaling overhead across a round's models."""
        seen: set[str] = set()
        cost = 0.0
        for batch in batches:
            if batch.spec.name in seen:
                continue
            seen.add(batch.spec.name)
            cost += engine.base_switch_time(batch.spec)
        # A single-model round needs no switching at all.
        return cost if len(seen) > 1 else 0.0

    def order_queue(self, waiting: list, engine: Any) -> None:
        """Token-level systems do not reorder an arrival queue."""


class RequestLevelScaling(TokenLevelScaling):
    """Switch only at request boundaries; queue order picks the model.

    ``order`` is ``"fcfs"`` (arrival order) or ``"sjf"`` (oracle
    shortest-job-first over true service-time estimates, §7.1's
    ServerlessLLM+ variant).  The drain-before-switch half of the
    behaviour is enforced by the instance loop itself — it only asks
    the policy for a model once its batcher is empty — so this class
    owns the ordering decision.
    """

    def __init__(self, order: str = "fcfs"):
        if order not in ("fcfs", "sjf"):
            raise ValueError(f"unknown queue order {order!r}")
        self.order = order

    def order_queue(self, waiting: list, engine: Any) -> None:
        if self.order == "fcfs":
            waiting.sort(key=lambda request: request.arrival)
            return

        def oracle_service_time(request: Any) -> float:
            latency = engine.latency_model(request.spec)
            return latency.estimate_service_time(
                request.input_tokens, request.output_tokens
            )

        waiting.sort(
            key=lambda request: (oracle_service_time(request), request.arrival)
        )
