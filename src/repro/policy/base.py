"""The five decision points of the serving control plane, as protocols.

Aegaeon's contribution is a *set of decisions* — token-level preemptive
scheduling, grouped prefill, weighted decode rounds (§4, Algorithms
1-2), scale-up/down triggers — and the baselines differ from it exactly
in which decisions they make, not in the machinery that executes them.
This module names those decision points as narrow, swappable protocols:

* :class:`AdmissionPolicy`  — accept/shed a request at the proxy;
* :class:`DispatchPolicy`   — request → instance / batch grouping;
* :class:`DecodeTurnPolicy` — round ordering and per-turn quotas
  (Eqs. 2-3 live behind this seam);
* :class:`ScalingPolicy`    — when an engine preempts/switches models,
  and how a round's switch cost is charged;
* :class:`PlacementPolicy`  — model → GPU and GPU → pool assignment.

A :class:`PolicyBundle` packages one choice per decision point plus the
:class:`~repro.policy.tunables.Tunables` they share; the named bundles
in :mod:`repro.policy.registry` make Aegaeon, ServerlessLLM(+), MuxServe
and the unified foils *configurations of one serving core* rather than
divergent control paths.

Every protocol is duck-typed against the pool objects it steers
(schedulers, instances, engines, serving systems) so the package imports
nothing from :mod:`repro.core` at runtime — policies stay importable and
testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Protocol, Sequence, runtime_checkable

from .tunables import DEFAULT_TUNABLES, Tunables

__all__ = [
    "AdmissionPolicy",
    "DispatchPolicy",
    "DecodeTurnPolicy",
    "FleetControlPolicy",
    "ScalingPolicy",
    "PlacementPolicy",
    "PolicyBundle",
    "policy_event",
]


def policy_event(tracer, kind: str, **fields) -> None:
    """Emit one ``policy.*`` decision instant through an obs tracer.

    Timelines exported to Chrome ``trace_event`` then show *why* a
    rejection, scale, or placement happened next to the spans it caused.
    No-ops (and allocates nothing) when tracing is off.
    """
    if tracer is not None and tracer.enabled:
        tracer.instant(f"policy.{kind}", cat="policy", track="policy", **fields)


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides, per arriving request, whether the system takes it at all."""

    def decide(self, system: Any, request: Any) -> Optional[str]:
        """Return ``None`` to admit, or a short rejection reason.

        A non-``None`` reason makes the serving core record the request
        as :attr:`~repro.engine.request.Phase.REJECTED` without ever
        dispatching it.
        """


@runtime_checkable
class DispatchPolicy(Protocol):
    """Routes an admitted request into the pool's queue structure.

    Systems with disaggregated pools call :meth:`place_prefill` /
    :meth:`place_decode` (through their phase schedulers); single-pool
    systems call :meth:`place`.  A policy implements the methods its
    system uses.
    """

    def place_prefill(self, scheduler: Any, request: Any) -> tuple[Any, Any, str]:
        """Pick ``(instance, group_or_None, decision)`` for a prefill job."""

    def place_decode(self, scheduler: Any, request: Any) -> tuple[Any, Any, str]:
        """Pick ``(instance, batch_or_None, decision)`` for a prefilled request."""

    def place(self, system: Any, request: Any) -> Any:
        """Pick the instance a single-pool system enqueues ``request`` on."""


@runtime_checkable
class DecodeTurnPolicy(Protocol):
    """Orders a decode round and sizes its weighted turns (Eqs. 2-3)."""

    def order(self, work_list: list) -> list:
        """Return the round's batch execution order (may be ``work_list``)."""

    def quotas(
        self, batches: Sequence, step_times: Sequence[float],
        switch_cost: float, slo: Any,
    ) -> list[float]:
        """Per-batch time quotas for one round."""

    def attainment(
        self, step_times: Sequence[float], switch_cost: float, slo: Any
    ) -> float:
        """The policy's own SLO-attainment estimate for a round."""


@runtime_checkable
class ScalingPolicy(Protocol):
    """Decides when an engine preempts its model and what a switch costs."""

    def should_switch(self, engine: Any, spec: Any) -> bool:
        """True when ``engine`` must scale to ``spec`` before executing."""

    def round_switch_cost(self, engine: Any, batches: Sequence) -> float:
        """``c``: the auto-scaling overhead charged to one decode round."""

    def order_queue(self, waiting: list, engine: Any) -> None:
        """Order a request-level system's waiting queue in place."""


@runtime_checkable
class PlacementPolicy(Protocol):
    """Assigns models to GPUs and GPUs to pool partitions."""

    def plan(
        self, models: Sequence, slots: Sequence
    ) -> tuple[list[list], list]:
        """Statically place ``models`` onto GPU ``slots`` (specs).

        Returns ``(per-slot model lists, unplaced models)``.
        """

    def partition(
        self, gpus: Sequence, tp: int, prefill_instances: int, decode_instances: int
    ) -> tuple[list[list], list[list]]:
        """Split a GPU list into prefill / decode TP groups."""


@runtime_checkable
class FleetControlPolicy(Protocol):
    """The fleet controller's decision surface (one level above shards).

    Consulted by :class:`repro.fleet.controller.FleetController` on
    every control tick (and on every admission rejection, for
    spillover) with a :class:`~repro.fleet.controller.FleetView` — the
    tick's per-shard telemetry plus the per-model EWMA/slope arrival
    forecasts.  Implementations live in
    :mod:`repro.policy.fleet_control` and are registered by name
    (``"static"``, ``"forecast"``) the same way serving bundles are.
    """

    def plan_migrations(self, view: Any) -> list[tuple[str, int, int]]:
        """Catalog moves to execute this tick: ``(model, src, dst)``.

        The controller re-pins each model on the partitioner (future
        arrivals route to ``dst``; in-flight requests drain on ``src``).
        """

    def spill_target(self, view: Any, shard: int, request: Any) -> Optional[int]:
        """The shard a rejected ``request`` should retry on, or ``None``
        to let the rejection stand.  Called only while the request has
        spill hops left; returning ``shard`` itself is treated as
        ``None``."""

    def scaling_hint(self, view: Any, shard: int) -> Optional[float]:
        """A per-shard load hint (forecast load / fleet mean) fed into
        the shard's :class:`ScalingPolicy` seam via
        ``system.apply_scaling_hint``; ``None`` leaves the shard's hint
        untouched."""


@dataclass(frozen=True)
class PolicyBundle:
    """One choice per decision point, plus the tunables they share."""

    name: str
    #: The serving topology this bundle steers by default — a
    #: :func:`repro.core.build_system` name.
    system: str
    admission: AdmissionPolicy
    dispatch: DispatchPolicy
    decode_turn: DecodeTurnPolicy
    scaling: ScalingPolicy
    placement: PlacementPolicy
    tunables: Tunables = DEFAULT_TUNABLES
    description: str = ""

    def with_tunables(self, tunables: Tunables) -> "PolicyBundle":
        """This bundle with a different tunables set (for env overrides)."""
        from .decode_turn import WeightedRoundPolicy

        if tunables == self.tunables:
            return self
        decode_turn = self.decode_turn
        if type(decode_turn) is WeightedRoundPolicy:
            # The stock turn policy carries its own tunables copy; a
            # custom policy is kept as configured.
            decode_turn = WeightedRoundPolicy(tunables)
        return replace(self, tunables=tunables, decode_turn=decode_turn)
