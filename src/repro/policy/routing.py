"""Cost-constrained model routing and session-affinity dispatch.

The ECCOS framing (PAPERS.md): an agentic stage names the model
*variants* it may run on (a cheap small model and the flagship), carries
a predicted difficulty, and the platform picks the variant per stage so
the session's total spend stays under a budget.  Two policies implement
it on the existing seams:

* :class:`CostConstrainedRouter` — an :class:`~repro.policy.base.
  AdmissionPolicy` that *rewrites the request's model* before dispatch:
  hard stages route to the largest variant, easy ones to the smallest,
  and when the preferred variant would blow the session's remaining
  budget the router walks down to cheaper variants, rejecting the stage
  outright (reason ``"session_budget"``) only when even the cheapest
  does not fit.  Realized spend therefore **never** exceeds the budget —
  the property the contract tests pin.
* :class:`SessionAffinityDispatch` — the Aegaeon dispatch rules plus a
  per-scheduler session→instance memo, so consecutive stages of one
  session land where the session's KV already lives instead of wherever
  the load heuristic points.

Both are no-ops for plain market traffic (no ``variants``/``affinity``
on the trace), which is what lets the ``aegaeon-cost-router`` bundle
pass the generic per-bundle conformance suite unchanged.

Policy objects are shared across systems/shards, so all routing state
lives on the ``system``/``scheduler`` (the rule
:meth:`~repro.core.serving.ServingSystemBase.apply_scaling_hint`
documents), keyed per run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from .base import policy_event
from .dispatch import AegaeonDispatch

__all__ = ["CostConstrainedRouter", "SessionAffinityDispatch", "stage_cost_usd"]

#: FIFO cap on each scheduler's session→instance memo.
_AFFINITY_CAP = 4096


def stage_cost_usd(
    input_tokens: int, output_tokens: int, params_b: float, usd_per_mtok_b: float
) -> float:
    """Marginal cost of one stage on one variant.

    Priced as (total tokens in millions) x (model size in billions of
    parameters) x a $/Mtok/B rate — the standard size-proportional
    API-pricing shape, so a 7B variant is ~10x cheaper than a 72B one
    for the same stage.
    """
    return (input_tokens + output_tokens) / 1e6 * params_b * usd_per_mtok_b


class CostConstrainedRouter:
    """Route each agentic stage across its variants under a session budget.

    Constructor arguments override the bundle's
    :class:`~repro.policy.tunables.Tunables` fields
    (``router_session_budget_usd``, ``router_difficulty_threshold``,
    ``router_usd_per_mtok_b``) when given; the default reads them from
    ``system.policies.tunables`` so ``REPRO_TUNE_*`` works.
    """

    def __init__(
        self,
        budget_usd: Optional[float] = None,
        difficulty_threshold: Optional[float] = None,
        usd_per_mtok_b: Optional[float] = None,
    ):
        self.budget_usd = budget_usd
        self.difficulty_threshold = difficulty_threshold
        self.usd_per_mtok_b = usd_per_mtok_b

    def _knobs(self, system: Any) -> tuple[float, float, float]:
        tun = system.policies.tunables
        return (
            self.budget_usd
            if self.budget_usd is not None
            else tun.router_session_budget_usd,
            self.difficulty_threshold
            if self.difficulty_threshold is not None
            else tun.router_difficulty_threshold,
            self.usd_per_mtok_b
            if self.usd_per_mtok_b is not None
            else tun.router_usd_per_mtok_b,
        )

    @staticmethod
    def spend_of(system: Any) -> dict[int, float]:
        """This run's realized per-session spend (USD), keyed by session."""
        return system.__dict__.setdefault("_router_spend", {})

    @staticmethod
    def counts_of(system: Any) -> dict[str, int]:
        """This run's routing decision counters."""
        return system.__dict__.setdefault(
            "_router_counts", {"kept": 0, "downgraded": 0, "upgraded": 0, "shed": 0}
        )

    def decide(self, system: Any, request: Any) -> Optional[str]:
        trace = request.trace
        variants = getattr(trace, "variants", ())
        if len(variants) < 2:
            return None  # not routable: plain traffic passes untouched
        specs = [
            system.spec_index[name]
            for name in variants
            if name in system.spec_index
        ]
        if len(specs) < 2:
            return None  # variants unknown to this run; don't guess
        specs.sort(key=lambda spec: (spec.params, spec.name))
        budget, threshold, rate = self._knobs(system)
        spend = self.spend_of(system)
        counts = self.counts_of(system)
        session = getattr(trace, "session", 0)
        spent = spend.get(session, 0.0)

        preferred = (
            len(specs) - 1 if trace.difficulty >= threshold else 0
        )
        chosen = None
        # Walk down from the preferred variant to cheaper ones until the
        # session's remaining budget covers the stage.
        for index in range(preferred, -1, -1):
            spec = specs[index]
            cost = stage_cost_usd(
                trace.input_tokens, trace.output_tokens, spec.params_b, rate
            )
            if spent + cost <= budget + 1e-12:
                chosen = spec
                break
        if chosen is None:
            # Even the cheapest variant does not fit: shed the stage.
            # no_spill tells the fleet controller this rejection is a
            # budget decision, not a capacity problem — re-routing it to
            # another shard would evade the budget.
            request.no_spill = True
            counts["shed"] += 1
            policy_event(
                system.obs.tracer, "route", decision="shed",
                reason="session_budget", request_id=trace.request_id,
                session=session, stage=getattr(trace, "stage", 0),
                spent=spent,
            )
            return "session_budget"

        spend[session] = spent + cost
        if chosen.name != trace.model:
            base = system.spec_index.get(trace.model)
            if base is not None and chosen.params > base.params:
                decision = "upgrade"
                counts["upgraded"] += 1
            else:
                decision = "downgrade"
                counts["downgraded"] += 1
            # Rewrite the request in place: Request.model/spec follow the
            # trace, and token budgets were already copied at admission.
            request.trace = replace(trace, model=chosen.name)
            request.spec = chosen
        else:
            counts["kept"] += 1
            decision = "keep"
        policy_event(
            system.obs.tracer, "route", decision=decision,
            model=chosen.name, request_id=trace.request_id,
            session=session, stage=getattr(trace, "stage", 0),
            cost=cost, spent=spend[session],
        )
        return None


class SessionAffinityDispatch(AegaeonDispatch):
    """Aegaeon's dispatch rules, plus stickiness for session KV.

    Each scheduler keeps a bounded session→instance memo.  A stage whose
    trace carries an ``affinity`` tag prefers the memoized instance —
    joining an open same-model group/batch there, else opening one — and
    falls back to the stock rules (which then seed the memo) when the
    tag is unknown or the instance left the pool.  Market requests (no
    tag) take the stock path untouched.
    """

    @staticmethod
    def _table(scheduler: Any) -> dict[str, Any]:
        return scheduler.__dict__.setdefault("_session_affinity", {})

    @staticmethod
    def _remember(table: dict[str, Any], tag: str, instance: Any) -> None:
        if tag not in table and len(table) >= _AFFINITY_CAP:
            table.pop(next(iter(table)))
        table[tag] = instance

    def place_prefill(self, scheduler: Any, request: Any) -> tuple[Any, Any, str]:
        tag = getattr(request.trace, "affinity", "")
        if not tag:
            return super().place_prefill(scheduler, request)
        table = self._table(scheduler)
        instance = table.get(tag)
        if instance is not None and instance in scheduler.instances:
            for group in instance.groups:
                if (
                    group.spec.name == request.spec.name
                    and group.accumulated < scheduler.max_group_size
                ):
                    return instance, group, "affinity-join"
            return instance, None, "affinity-open"
        instance, group, how = super().place_prefill(scheduler, request)
        self._remember(table, tag, instance)
        return instance, group, how

    def place_decode(self, scheduler: Any, request: Any) -> tuple[Any, Any, str]:
        tag = getattr(request.trace, "affinity", "")
        if not tag:
            return super().place_decode(scheduler, request)
        table = self._table(scheduler)
        instance = table.get(tag)
        if instance is not None and instance in scheduler.instances:
            for batch in instance.work_list:
                if batch.spec.name == request.spec.name and batch.has_room:
                    return instance, batch, "affinity-join"
            return instance, None, "affinity-open"
        instance, batch, how = super().place_decode(scheduler, request)
        self._remember(table, tag, instance)
        return instance, batch, how
