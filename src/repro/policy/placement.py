"""Placement policies: model → GPU and GPU → pool assignment.

* :class:`MemoryConstrainedPlacement` — MuxServe's optimizer rule
  (§2.3, §7.2): first-fit in popularity order, refusing to colocate
  models whose weights plus a minimum KV reservation exceed VRAM.  Its
  :meth:`partition` is the contiguous TP-group cursor Aegaeon uses to
  split a cluster into prefill/decode partitions.
* :class:`CostAwarePlacement` — **new**: heterogeneity-aware variant
  that scores every GPU type by *market cost per generated token*
  (hourly price over sustained decode bandwidth) and fills the
  cheapest-per-token slots first, so popular models land where their
  tokens are cheapest.  On a homogeneous cluster it degrades exactly to
  first-fit; on a mixed pool it shifts traffic off overpriced devices.
  Each decision is emitted as a ``policy.placement`` trace event.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .base import policy_event

__all__ = [
    "MIN_KV_BYTES",
    "MARKET_HOURLY_USD",
    "MemoryConstrainedPlacement",
    "CostAwarePlacement",
]

GiB = 1024**3

# Per-model reservation the placement optimizer demands beyond weights:
# a minimum KV pool plus engine runtime overhead (activations, CUDA
# context, allocator headroom).  With the paper's 25.1 GB average
# weights this caps placement at two models per 80 GB GPU — the "at
# most 32 models on 16 GPUs" observation of §7.2.
MIN_KV_BYTES = 16 * GiB

# Representative on-demand market rates (USD/hour) for the paper's
# device families — the denominator of the cost-per-token score.  A
# device missing from the table is priced proportionally to its HBM
# bandwidth so unknown hardware sorts neutrally rather than free.
MARKET_HOURLY_USD: dict[str, float] = {
    "H800": 12.00,
    "H20": 6.50,
    "A100": 4.10,
    "A10": 0.75,
}


class MemoryConstrainedPlacement:
    """Greedy first-fit placement under a hard VRAM cap; contiguous pools."""

    def __init__(
        self, min_kv_bytes: int = MIN_KV_BYTES, usable_fraction: float = 0.9
    ):
        self.min_kv_bytes = min_kv_bytes
        self.usable_fraction = usable_fraction

    # -- model -> GPU slots --------------------------------------------------
    def slot_order(self, slots: Sequence) -> list[int]:
        """The order slots are filled in (first-fit: as given)."""
        return list(range(len(slots)))

    def plan(
        self, models: Sequence, slots: Sequence, tracer=None
    ) -> tuple[list[list], list]:
        """Place ``models`` (most-popular first) onto GPU-spec ``slots``.

        Returns ``(per-slot model lists, unplaced models)``; the outer
        list aligns with the input slot order regardless of the policy's
        fill order.
        """
        order = self.slot_order(slots)
        placements: list[list] = [[] for _ in slots]
        used = [0] * len(slots)
        unplaced: list = []
        for spec in models:
            need = spec.weight_bytes + self.min_kv_bytes
            for index in order:
                budget = int(slots[index].vram_bytes * self.usable_fraction)
                if used[index] + need <= budget:
                    placements[index].append(spec)
                    used[index] += need
                    self._note(tracer, spec, index, slots[index])
                    break
            else:
                unplaced.append(spec)
                policy_event(
                    tracer, "placement", decision="unplaced", model=spec.name
                )
        return placements, unplaced

    def _note(self, tracer, spec, slot: int, gpu_spec) -> None:
        policy_event(
            tracer, "placement", decision="place",
            model=spec.name, slot=slot, gpu=gpu_spec.name,
        )

    # -- GPU -> pool partitions ----------------------------------------------
    def partition(
        self, gpus: Sequence, tp: int, prefill_instances: int, decode_instances: int
    ) -> tuple[list[list], list[list]]:
        """Contiguous TP-group cursor: prefill groups first, then decode."""
        groups = []
        cursor = 0
        for _ in range(prefill_instances + decode_instances):
            groups.append(list(gpus[cursor : cursor + tp]))
            cursor += tp
        return groups[:prefill_instances], groups[prefill_instances:]


class CostAwarePlacement(MemoryConstrainedPlacement):
    """Fill the cheapest cost-per-token GPUs first on mixed pools."""

    def __init__(
        self,
        hourly_usd: Optional[dict[str, float]] = None,
        min_kv_bytes: int = MIN_KV_BYTES,
        usable_fraction: float = 0.9,
    ):
        super().__init__(min_kv_bytes=min_kv_bytes, usable_fraction=usable_fraction)
        self.hourly_usd = dict(MARKET_HOURLY_USD if hourly_usd is None else hourly_usd)

    def score(self, gpu_spec: Any) -> float:
        """Market cost per token-throughput unit: USD/h per sustained GB/s.

        Decoding is HBM-bandwidth-bound (Appendix A.2), so a device's
        token throughput scales with its effective HBM bandwidth; the
        hourly price over that bandwidth ranks devices by what one
        generated token actually costs on the market.
        """
        bandwidth_gbs = gpu_spec.effective_hbm_bandwidth / 1e9
        hourly = self.hourly_usd.get(gpu_spec.name)
        if hourly is None:
            # Neutral default: priced like the table's median $/GB/s.
            reference = sorted(self.hourly_usd.values())
            hourly = reference[len(reference) // 2] if reference else 1.0
        return hourly / max(bandwidth_gbs, 1e-9)

    def slot_order(self, slots: Sequence) -> list[int]:
        """Cheapest cost-per-token first; ties keep the input order."""
        return sorted(range(len(slots)), key=lambda i: (self.score(slots[i]), i))

    def _note(self, tracer, spec, slot: int, gpu_spec) -> None:
        policy_event(
            tracer, "placement", decision="place",
            model=spec.name, slot=slot, gpu=gpu_spec.name,
            usd_per_gbs=round(self.score(gpu_spec), 6),
        )
