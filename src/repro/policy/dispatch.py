"""Dispatch policies: request → instance / batch grouping decisions.

Each policy answers *where an admitted request goes* for one family of
serving topologies.  The pool mutations (adding to a group, kicking an
instance loop, counters) stay with the executing scheduler/server; the
policy only returns the decision, so a Chrome-trace ``policy.dispatch``
event can always say what was decided and why.

* :class:`GroupedPrefillDispatch` / :class:`BatchedDecodeDispatch` —
  Algorithms 1 and 2's placement rules, consumed by the Aegaeon phase
  schedulers.
* :class:`AffinityBacklogDispatch` — ServerlessLLM's request-level
  routing: model affinity, then any idle instance, then least estimated
  backlog.
* :class:`AffinityLeastLoadedDispatch` — model affinity then least
  queued+running load; MuxServe (restricted to hosting instances) and
  the unified foils share it.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "GroupedPrefillDispatch",
    "BatchedDecodeDispatch",
    "AegaeonDispatch",
    "AffinityBacklogDispatch",
    "AffinityLeastLoadedDispatch",
]


class GroupedPrefillDispatch:
    """Algorithm 1, lines 4-13: join an open group or open a new one."""

    def place_prefill(self, scheduler: Any, request: Any) -> tuple[Any, Any, str]:
        # Lines 4-8: prioritize an existing group for this model.
        for instance in scheduler.instances:
            for group in instance.groups:
                if (
                    group.spec.name == request.spec.name
                    and group.accumulated < scheduler.max_group_size
                ):
                    return instance, group, "join"
        # Lines 9-13: open a new group on the least-loaded instance.
        target = min(scheduler.instances, key=scheduler.estimate_load)
        return target, None, "open"


class BatchedDecodeDispatch:
    """Algorithm 2's dispatch side: join a same-model batch with room,
    else open a batch on the instance with the shortest work list."""

    def place_decode(self, scheduler: Any, request: Any) -> tuple[Any, Any, str]:
        # Prefer an existing batch of the same model with room.
        for instance in scheduler.instances:
            for batch in instance.work_list:
                if batch.spec.name == request.spec.name and batch.has_room:
                    return instance, batch, "join"
        # Otherwise open a batch on the least-loaded instance, where
        # load is the work-list size (Algorithm 2, line 2).
        target = min(scheduler.instances, key=lambda inst: len(inst.work_list))
        return target, None, "open"


class AegaeonDispatch(GroupedPrefillDispatch, BatchedDecodeDispatch):
    """Both phase rules in one policy object (the Aegaeon default)."""


class AffinityBacklogDispatch:
    """ServerlessLLM routing: affinity → idle → least estimated backlog."""

    def place(self, system: Any, request: Any) -> Any:
        # Affinity first: an instance already serving this model.
        for instance in system.instances:
            current = instance.current_model
            if (
                current is not None
                and current.name == request.spec.name
                and instance.active
            ):
                return instance
        # Otherwise any idle instance (request-level scale-up).
        for instance in system.instances:
            if not instance.active:
                return instance
        # All busy: queue on the least-loaded instance (HOL blocking
        # territory — the behaviour §3.1 analyzes).
        return min(system.instances, key=lambda inst: inst.estimated_backlog())


class AffinityLeastLoadedDispatch:
    """Affinity then least queued+running load, over eligible instances.

    ``hosts_only=True`` restricts candidates to instances whose static
    placement includes the request's model (MuxServe); the unified foils
    consider the whole pool and additionally require the affinity hit to
    be active.
    """

    def __init__(self, hosts_only: bool = False):
        self.hosts_only = hosts_only

    def place(self, system: Any, request: Any) -> Optional[Any]:
        if self.hosts_only:
            candidates = [
                instance
                for instance in system.instances
                if instance.hosts(request.model)
            ]
            if not candidates:
                return None
            return min(candidates, key=lambda instance: instance.load())
        for instance in system.instances:
            current = instance.engine.current_model
            if (
                current is not None
                and current.name == request.spec.name
                and instance.active
            ):
                return instance
        return min(system.instances, key=lambda inst: inst.load())
