"""The pluggable policy layer: every control-plane decision, swappable.

Five protocols name the decision points the serving systems share
(:class:`AdmissionPolicy`, :class:`DispatchPolicy`,
:class:`DecodeTurnPolicy`, :class:`ScalingPolicy`,
:class:`PlacementPolicy`); a :class:`PolicyBundle` packages one choice
per point plus the :class:`Tunables` they share, and the registry's
named bundles turn Aegaeon, ServerlessLLM(+), MuxServe and the unified
foils into configurations of one serving core.  See DESIGN.md
("The policy layer") for the bundle table and how to add a policy.
"""

from .admission import AlwaysAdmit, PlacedModelsAdmission, SloAwareAdmission
from .base import (
    AdmissionPolicy,
    DecodeTurnPolicy,
    DispatchPolicy,
    FleetControlPolicy,
    PlacementPolicy,
    PolicyBundle,
    ScalingPolicy,
    policy_event,
)
from .fleet_control import (
    ForecastFleetControl,
    StaticFleetControl,
    available_fleet_policies,
    get_fleet_policy,
    register_fleet_policy,
)
from .decode_turn import (
    WeightedRoundPolicy,
    compute_quotas,
    estimate_round_attainment,
    reorder_work_list,
)
from .dispatch import (
    AegaeonDispatch,
    AffinityBacklogDispatch,
    AffinityLeastLoadedDispatch,
    BatchedDecodeDispatch,
    GroupedPrefillDispatch,
)
from .placement import (
    MARKET_HOURLY_USD,
    MIN_KV_BYTES,
    CostAwarePlacement,
    MemoryConstrainedPlacement,
)
from .registry import (
    available_bundles,
    get_bundle,
    register_bundle,
    resolve_bundle,
)
from .routing import CostConstrainedRouter, SessionAffinityDispatch, stage_cost_usd
from .scaling import RequestLevelScaling, TokenLevelScaling
from .tunables import DEFAULT_TUNABLES, Tunables

__all__ = [
    "AdmissionPolicy",
    "AegaeonDispatch",
    "AffinityBacklogDispatch",
    "AffinityLeastLoadedDispatch",
    "AlwaysAdmit",
    "BatchedDecodeDispatch",
    "CostAwarePlacement",
    "CostConstrainedRouter",
    "DEFAULT_TUNABLES",
    "DecodeTurnPolicy",
    "DispatchPolicy",
    "FleetControlPolicy",
    "ForecastFleetControl",
    "GroupedPrefillDispatch",
    "MARKET_HOURLY_USD",
    "MIN_KV_BYTES",
    "MemoryConstrainedPlacement",
    "PlacedModelsAdmission",
    "PlacementPolicy",
    "PolicyBundle",
    "RequestLevelScaling",
    "ScalingPolicy",
    "SessionAffinityDispatch",
    "SloAwareAdmission",
    "StaticFleetControl",
    "TokenLevelScaling",
    "Tunables",
    "WeightedRoundPolicy",
    "available_bundles",
    "available_fleet_policies",
    "compute_quotas",
    "estimate_round_attainment",
    "get_bundle",
    "get_fleet_policy",
    "policy_event",
    "register_bundle",
    "register_fleet_policy",
    "reorder_work_list",
    "resolve_bundle",
    "stage_cost_usd",
]
