"""Named policy bundles: each serving system as a configuration.

The registry is what makes Aegaeon, ServerlessLLM(+), MuxServe and the
unified foils *policy bundles over one serving core*: the default
bundles reproduce each system's pre-policy-layer behaviour byte for
byte, and the two non-default bundles (``aegaeon-slo-admission``,
``muxserve-cost-placement``) prove the seam by swapping exactly one
decision point.

Select a bundle by name through :func:`get_bundle`,
``build_system(..., policies="name")``, or the ``REPRO_POLICIES``
environment variable via :meth:`repro.core.RunSettings.from_env`.
"""

from __future__ import annotations

from typing import Optional, Union

from .admission import AlwaysAdmit, PlacedModelsAdmission, SloAwareAdmission
from .base import PolicyBundle
from .decode_turn import WeightedRoundPolicy
from .dispatch import (
    AegaeonDispatch,
    AffinityBacklogDispatch,
    AffinityLeastLoadedDispatch,
)
from .placement import CostAwarePlacement, MemoryConstrainedPlacement
from .routing import CostConstrainedRouter, SessionAffinityDispatch
from .scaling import RequestLevelScaling, TokenLevelScaling
from .tunables import Tunables

__all__ = [
    "register_bundle",
    "get_bundle",
    "resolve_bundle",
    "available_bundles",
]

_BUNDLES: dict[str, PolicyBundle] = {}


def register_bundle(bundle: PolicyBundle) -> PolicyBundle:
    """Add a bundle to the registry (overwrites an existing name)."""
    _BUNDLES[bundle.name] = bundle
    return bundle


def available_bundles() -> list[str]:
    """Registered bundle names, sorted."""
    return sorted(_BUNDLES)


def get_bundle(name: str) -> PolicyBundle:
    """Look up a registered bundle by name."""
    key = name.strip().lower()
    try:
        return _BUNDLES[key]
    except KeyError:
        raise ValueError(
            f"unknown policy bundle {name!r}; known: {available_bundles()}"
        ) from None


def resolve_bundle(
    policies: Union[PolicyBundle, str, None],
    default: str,
    tunables: Optional[Tunables] = None,
) -> PolicyBundle:
    """Turn a config's ``policies`` value into a concrete bundle.

    ``None`` resolves to the system's ``default`` bundle name; a string
    is looked up in the registry; a :class:`PolicyBundle` passes
    through.  ``tunables`` (from ``RunSettings``/env) overrides the
    bundle's tunables when given.
    """
    if policies is None:
        bundle = get_bundle(default)
    elif isinstance(policies, str):
        bundle = get_bundle(policies)
    else:
        bundle = policies
    if tunables is not None:
        bundle = bundle.with_tunables(tunables)
    return bundle


# -- the default bundles (behaviour-preserving) -------------------------------
register_bundle(
    PolicyBundle(
        name="aegaeon",
        system="aegaeon",
        admission=AlwaysAdmit(),
        dispatch=AegaeonDispatch(),
        decode_turn=WeightedRoundPolicy(),
        scaling=TokenLevelScaling(),
        placement=MemoryConstrainedPlacement(),
        description="Token-level preemptive scheduling: grouped prefill "
        "(Alg. 1), weighted decode rounds (Alg. 2), contiguous pools.",
    )
)

register_bundle(
    PolicyBundle(
        name="serverless-llm",
        system="serverless-llm",
        admission=AlwaysAdmit(),
        dispatch=AffinityBacklogDispatch(),
        decode_turn=WeightedRoundPolicy(),
        scaling=RequestLevelScaling(order="fcfs"),
        placement=MemoryConstrainedPlacement(),
        description="Request-level auto-scaling, FCFS queues (§2.3).",
    )
)

register_bundle(
    PolicyBundle(
        name="serverless-llm+",
        system="serverless-llm+",
        admission=AlwaysAdmit(),
        dispatch=AffinityBacklogDispatch(),
        decode_turn=WeightedRoundPolicy(),
        scaling=RequestLevelScaling(order="sjf"),
        placement=MemoryConstrainedPlacement(),
        description="ServerlessLLM with oracle SJF queueing (§7.1).",
    )
)

register_bundle(
    PolicyBundle(
        name="muxserve",
        system="muxserve",
        admission=PlacedModelsAdmission(),
        dispatch=AffinityLeastLoadedDispatch(hosts_only=True),
        decode_turn=WeightedRoundPolicy(),
        scaling=TokenLevelScaling(),
        placement=MemoryConstrainedPlacement(),
        description="Static multiplexing: memory-capped placement, "
        "requests for unplaced models shed at admission (§7.2).",
    )
)

for _policy in ("prefill-first", "decode-first"):
    register_bundle(
        PolicyBundle(
            name=f"unified-{_policy}",
            system=f"unified-{_policy}",
            admission=AlwaysAdmit(),
            dispatch=AffinityLeastLoadedDispatch(),
            decode_turn=WeightedRoundPolicy(),
            scaling=TokenLevelScaling(),
            placement=MemoryConstrainedPlacement(),
            description=f"Unified token-level scheduling, {_policy} (§4.1).",
        )
    )

# -- the new, non-default bundles (the seam's proof) --------------------------
register_bundle(
    PolicyBundle(
        name="aegaeon-slo-admission",
        system="aegaeon",
        admission=SloAwareAdmission(headroom=1.0),
        dispatch=AegaeonDispatch(),
        decode_turn=WeightedRoundPolicy(),
        scaling=TokenLevelScaling(),
        placement=MemoryConstrainedPlacement(),
        description="Aegaeon with SLO-aware load shedding: rejects at "
        "the proxy once queue pressure dooms the TTFT deadline, instead "
        "of only when pools empty-reject.",
    )
)

register_bundle(
    PolicyBundle(
        name="aegaeon-cost-router",
        system="aegaeon",
        admission=CostConstrainedRouter(),
        dispatch=SessionAffinityDispatch(),
        decode_turn=WeightedRoundPolicy(),
        scaling=TokenLevelScaling(),
        placement=MemoryConstrainedPlacement(),
        description="Aegaeon with ECCOS-style cost-constrained routing: "
        "agentic stages pick a model variant by predicted difficulty "
        "under a per-session budget, and dispatch keeps a session's "
        "stages on the instance holding its KV.",
    )
)

register_bundle(
    PolicyBundle(
        name="muxserve-cost-placement",
        system="muxserve",
        admission=PlacedModelsAdmission(),
        dispatch=AffinityLeastLoadedDispatch(hosts_only=True),
        decode_turn=WeightedRoundPolicy(),
        scaling=TokenLevelScaling(),
        placement=CostAwarePlacement(),
        description="MuxServe with heterogeneity-aware placement: GPU "
        "types scored by market cost per token, cheapest filled first.",
    )
)
