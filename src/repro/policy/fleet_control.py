"""Fleet-control policies: what the controller loop decides each tick.

Two registered policies bracket the design space the way the serving
bundles do:

* :class:`StaticFleetControl` (``"static"``) — the no-op foil: never
  migrates, never spills, never hints.  A controller running this
  policy observes telemetry (and emits ``fleet.controller.tick``
  events) but leaves the data path byte-identical to a controller-less
  run — the baseline every forecast-driven improvement is measured
  against.
* :class:`ForecastFleetControl` (``"forecast"``) — the DeepServe-style
  active loop: feeds the per-model EWMA/slope arrival forecasts into
  the partitioner's load-aware ``rebalance()`` to migrate hot models
  off overloaded shards live, redirects admission-rejected requests to
  the currently least-pressured shard (bounded hops enforced by the
  controller), and publishes each shard's forecast-load share as its
  scaling hint.

Both are plain objects satisfying the duck-typed
:class:`~repro.policy.base.FleetControlPolicy` protocol; register your
own with :func:`register_fleet_policy`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = [
    "StaticFleetControl",
    "ForecastFleetControl",
    "register_fleet_policy",
    "get_fleet_policy",
    "available_fleet_policies",
]


class StaticFleetControl:
    """Observe-only control: no migrations, no spillover, no hints."""

    name = "static"

    def plan_migrations(self, view: Any) -> list[tuple[str, int, int]]:
        return []

    def spill_target(self, view: Any, shard: int, request: Any) -> Optional[int]:
        return None

    def scaling_hint(self, view: Any, shard: int) -> Optional[float]:
        return None


class ForecastFleetControl:
    """Forecast-driven control: live rebalance + spillover + hints.

    ``tolerance`` and ``max_moves_per_tick`` bound migration churn the
    same way the pre-replay ``rebalance()`` hook does; ``min_rate``
    drops models whose forecast is effectively zero from the load map so
    a long tail of idle models cannot mask a hot head.
    """

    name = "forecast"

    def __init__(
        self,
        *,
        tolerance: float = 0.10,
        max_moves_per_tick: int = 2,
        min_rate: float = 1e-6,
    ):
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if max_moves_per_tick < 0:
            raise ValueError("max_moves_per_tick must be non-negative")
        self.tolerance = tolerance
        self.max_moves_per_tick = max_moves_per_tick
        self.min_rate = min_rate

    def plan_migrations(self, view: Any) -> list[tuple[str, int, int]]:
        loads = {
            name: forecast.predicted
            for name, forecast in view.forecasts.items()
            if forecast.predicted > self.min_rate
        }
        if not loads or not self.max_moves_per_tick:
            return []
        # The partitioner's rebalance both *plans* and *pins*: returned
        # moves are already in effect for future pump routing, which is
        # exactly the live-migration semantics (in-flight work drains on
        # the old shard untouched).
        return view.partitioner.rebalance(
            loads, tolerance=self.tolerance, max_moves=self.max_moves_per_tick
        )

    def spill_target(self, view: Any, shard: int, request: Any) -> Optional[int]:
        here = view.pressure_of(shard)
        best: Optional[int] = None
        best_pressure = here
        for telemetry in view.shards:
            if telemetry.index == shard:
                continue
            pressure = view.pressure_of(telemetry.index)
            # Strictly-better targets only (ties break on shard index by
            # iteration order): spilling to an equally loaded shard just
            # moves the rejection somewhere else.
            if pressure < best_pressure:
                best = telemetry.index
                best_pressure = pressure
        return best

    def scaling_hint(self, view: Any, shard: int) -> Optional[float]:
        loads = view.forecast_shard_loads()
        mean = sum(loads) / len(loads) if loads else 0.0
        if mean <= 0.0:
            return None
        return loads[shard] / mean


_FLEET_POLICIES: dict[str, Callable[[], Any]] = {}


def register_fleet_policy(name: str, factory: Callable[[], Any]) -> None:
    """Register a :class:`FleetControlPolicy` factory under ``name``."""
    key = name.strip().lower()
    if not key:
        raise ValueError("fleet policy name must be non-empty")
    _FLEET_POLICIES[key] = factory


def get_fleet_policy(name: str) -> Any:
    """Construct the fleet-control policy registered under ``name``."""
    key = name.strip().lower()
    try:
        factory = _FLEET_POLICIES[key]
    except KeyError:
        raise ValueError(
            f"unknown fleet control policy {name!r}; "
            f"known: {available_fleet_policies()}"
        ) from None
    return factory()


def available_fleet_policies() -> list[str]:
    """Names accepted by :func:`get_fleet_policy`."""
    return sorted(_FLEET_POLICIES)


register_fleet_policy("static", StaticFleetControl)
register_fleet_policy("forecast", ForecastFleetControl)
