"""The tuning constants of the control plane, centralized.

Before the policy layer these lived as module-level magic numbers
scattered across the codebase: ``QMAX = 4.0`` and the 0.5 alpha floor in
``core/decode_sched.py``, ``MAX_GPSIZE`` in ``core/prefill_sched.py``,
the orphan-requeue grace period in ``core/server.py``, the allocation
retry pacing in ``core/instance.py``, and the checkpoint-fetch
retry/backoff parameters in ``transfer/loader.py``.  They are now fields
of one frozen :class:`Tunables` dataclass carried by every
:class:`~repro.policy.PolicyBundle` and resolvable from the environment
through :meth:`Tunables.from_env` (wired into
:meth:`repro.core.RunSettings.from_env`).

The defaults reproduce the paper's published settings exactly; the old
module-level names survive as aliases of these fields so existing
imports keep working.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Mapping, Optional

__all__ = ["Tunables", "DEFAULT_TUNABLES"]


@dataclass(frozen=True)
class Tunables:
    """Every scalar knob the scheduling/scaling policies depend on."""

    #: Maximum per-turn decode quota, seconds (§4.3; the paper sets 4 s
    #: empirically and reports robustness to alternative settings).
    qmax: float = 4.0
    #: Floor on Eq. 3's alpha: keeps turns short (hence responsive to
    #: new batches) when SLOs are comfortably met.
    alpha_floor: float = 0.5
    #: Algorithm 1's MAX_GPSIZE: accumulative cap on a prefill group.
    max_prefill_group: int = 8
    #: Grace period before a failed instance's orphans are requeued —
    #: the timeout half of timeout-and-requeue.
    orphan_requeue_delay: float = 0.01
    #: Retry pacing for transient KV-cache pressure (alloc/swap retries).
    alloc_retry_delay: float = 0.005
    #: Max retries after a failed remote checkpoint fetch before the
    #: loader raises ``CheckpointFetchError``.
    fetch_max_retries: int = 4
    #: Base of the loader's exponential fetch backoff (doubles per retry).
    fetch_backoff_base: float = 0.05
    #: Cost-router budget: max realized USD spend per agentic session
    #: (see :class:`repro.policy.routing.CostConstrainedRouter`).
    router_session_budget_usd: float = 0.001
    #: Stages at or above this predicted difficulty prefer the largest
    #: model variant; easier stages prefer the smallest.
    router_difficulty_threshold: float = 0.6
    #: Price rate for the router's cost model: USD per million tokens
    #: per billion parameters (size-proportional API pricing).
    router_usd_per_mtok_b: float = 0.02

    def __post_init__(self) -> None:
        if self.qmax <= 0:
            raise ValueError("qmax must be positive")
        if self.alpha_floor <= 0:
            raise ValueError("alpha_floor must be positive")
        if self.max_prefill_group <= 0:
            raise ValueError("max_prefill_group must be positive")
        if self.orphan_requeue_delay < 0 or self.alloc_retry_delay < 0:
            raise ValueError("grace/retry delays must be non-negative")
        if self.fetch_max_retries < 0 or self.fetch_backoff_base < 0:
            raise ValueError("fetch retry parameters must be non-negative")
        if self.router_session_budget_usd <= 0:
            raise ValueError("router_session_budget_usd must be positive")
        if not 0.0 <= self.router_difficulty_threshold <= 1.0:
            raise ValueError("router_difficulty_threshold must be in [0, 1]")
        if self.router_usd_per_mtok_b <= 0:
            raise ValueError("router_usd_per_mtok_b must be positive")

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "Tunables":
        """Resolve tunables from ``REPRO_TUNE_<FIELD>`` variables.

        Example: ``REPRO_TUNE_QMAX=2.0 REPRO_TUNE_MAX_PREFILL_GROUP=4``.
        Unset fields keep their paper defaults.
        """
        environ = os.environ if environ is None else environ
        overrides = {}
        for spec in fields(cls):
            raw = environ.get(f"REPRO_TUNE_{spec.name.upper()}")
            if raw is not None:
                cast = int if spec.type in (int, "int") else float
                overrides[spec.name] = cast(raw)
        return cls(**overrides)


DEFAULT_TUNABLES = Tunables()
