"""Admission policies: accept or shed a request at the proxy tier.

The serving core consults the bundle's admission policy once per
arrival, *before* dispatch.  A rejection is final: the request is
recorded as ``REJECTED`` (it still counts against SLO attainment and
the ``finished + failed + rejected == submitted`` identity) and a
``policy.admission`` event explains the decision on the timeline.

* :class:`AlwaysAdmit` — the default everywhere: admission control is
  the dispatch path's problem (a request is only turned away when every
  instance of a pool is dead), reproducing pre-policy-layer behaviour.
* :class:`PlacedModelsAdmission` — MuxServe's implicit rule made
  explicit: a model the static placement optimizer could not fit is
  never served.
* :class:`SloAwareAdmission` — **new**: sheds load once the estimated
  queueing delay ahead of a new request exceeds a multiple of the TTFT
  SLO.  A request that would blow its deadline anyway is cheaper to
  reject at the door than to drag through prefill — and under failures
  this sheds load *before* pools empty-reject.
"""

from __future__ import annotations

from typing import Any, Optional

from .base import policy_event

__all__ = ["AlwaysAdmit", "PlacedModelsAdmission", "SloAwareAdmission"]


class AlwaysAdmit:
    """Admit everything; rejection only ever happens inside dispatch."""

    def decide(self, system: Any, request: Any) -> Optional[str]:
        return None


class PlacedModelsAdmission:
    """Reject models the placement phase left without any capacity."""

    def decide(self, system: Any, request: Any) -> Optional[str]:
        if request.model in getattr(system, "unplaced", ()):
            # No capacity was ever provisioned for this model; the
            # request counts fully against SLO attainment.
            return "model_not_placed"
        return None


class SloAwareAdmission:
    """Shed load when the admission-time queue estimate dooms the TTFT.

    ``headroom`` scales the TTFT budget: with the default 1.0 a request
    is shed as soon as the system's own pressure estimate (seconds of
    queued work ahead of a fresh arrival, via
    ``system.admission_pressure()``) says its first token would miss the
    deadline even if everything downstream were instant.  Emits a
    ``policy.admission`` decision event per shed so timelines show why
    the proxy turned traffic away while GPUs were still up.
    """

    def __init__(self, headroom: float = 1.0):
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        self.headroom = headroom
        self.shed = 0

    def decide(self, system: Any, request: Any) -> Optional[str]:
        pressure_fn = getattr(system, "admission_pressure", None)
        if pressure_fn is None:
            return None
        pressure = pressure_fn()
        budget = system.slo.ttft * self.headroom
        if pressure <= budget:
            return None
        self.shed += 1
        policy_event(
            system.obs.tracer, "admission",
            decision="shed", request_id=request.request_id,
            model=request.model, pressure=round(pressure, 6),
            budget=round(budget, 6),
        )
        return "queue_pressure"
