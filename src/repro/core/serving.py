"""The unified serving-system API: protocol, shared base, configs, factory.

Every serving system in this reproduction — Aegaeon itself, the
ServerlessLLM/MuxServe baselines, and the unified-scheduling foils —
speaks the same :class:`ServingSystem` protocol: ``prepare`` /
``dispatch`` / ``serve`` / ``collect`` / ``scale_records``.  The shared
plumbing (trace replay through the proxy layer, completion tracking,
drain watchdog, result collection, observability attachment) lives in
:class:`ServingSystemBase`; :func:`build_system` constructs any
registered system by name from its config dataclass, so benchmarks,
examples, and the observability layer attach to all of them uniformly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Protocol, runtime_checkable

from ..engine.engine import AegaeonEngine, ScaleRecord
from ..engine.request import Phase, Request
from ..hardware.cluster import Cluster
from ..hardware.gpu import H800
from ..obs import NULL_OBS, ObsConfig, Observability
from ..policy.base import PolicyBundle, policy_event
from ..policy.registry import resolve_bundle
from ..policy.tunables import Tunables
from ..sim import Environment
from ..transfer.kv_transfer import TransferStats
from ..workload.trace import Trace
from .proxy import ProxyLayer, StatusRegistry
from .slo import DEFAULT_SLO, SloSpec

__all__ = [
    "ServingSystem",
    "ServingSystemBase",
    "BaselineServer",
    "SystemConfig",
    "SystemSpec",
    "ServerlessLLMConfig",
    "MuxServeConfig",
    "UnifiedConfig",
    "RunSettings",
    "build_system",
    "available_systems",
    "resolve_cluster",
]

GiB = 1024**3


# -- cluster presets ---------------------------------------------------------
_CLUSTER_PRESETS: dict[str, Callable[[Environment], Cluster]] = {
    "testbed": Cluster.testbed,
    "a10": Cluster.a10_node,
    "h800-node": Cluster.h800_node,
    "h800-quad": lambda env: Cluster.homogeneous(env, H800, 1, 4),
    "h800-pair": lambda env: Cluster.homogeneous(env, H800, 1, 2),
}


def resolve_cluster(preset: str, env: Environment) -> Cluster:
    """Build the cluster named by a config's ``cluster`` preset."""
    try:
        builder = _CLUSTER_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown cluster preset {preset!r}; "
            f"known: {sorted(_CLUSTER_PRESETS)}"
        ) from None
    return builder(env)


# -- the protocol ------------------------------------------------------------
@runtime_checkable
class ServingSystem(Protocol):
    """What every serving system exposes to benchmarks and tooling."""

    label: str
    obs: Observability

    def prepare(self, trace: Trace) -> None:
        """Pre-trace setup (placement, cache warming)."""

    def dispatch(self, request: Request) -> None:
        """Route one arriving request."""

    def serve(self, trace: Trace, until: Optional[float] = None) -> "ServingResult":
        """Replay ``trace`` to completion or the drain deadline."""

    def collect(self, trace: Trace) -> "ServingResult":
        """Assemble the measurement object from current state."""

    def scale_records(self) -> list[ScaleRecord]:
        """Auto-scaling history across the system's engines."""


# -- shared plumbing ---------------------------------------------------------
class ServingSystemBase:
    """Trace replay, completion tracking, result collection, observability.

    Subclasses implement :meth:`dispatch` and usually :meth:`prepare` and
    :meth:`engines`; everything else — the proxy layer, the drain
    watchdog, :class:`~repro.analysis.metrics.ServingResult` assembly,
    and metric attachment — is inherited, so every system is measured
    identically.
    """

    label = "system"
    #: Registry name of the bundle this system runs when none is given.
    default_policies = "aegaeon"

    def __init__(
        self,
        env: Environment,
        slo: SloSpec = DEFAULT_SLO,
        drain_grace: float = 300.0,
        obs: Optional[ObsConfig | Observability] = None,
        policies: Optional[PolicyBundle | str] = None,
    ):
        self.env = env
        self.slo = slo
        self.drain_grace = drain_grace
        if isinstance(obs, Observability):
            self.obs = obs
        else:
            self.obs = Observability(
                obs if obs is not None else ObsConfig(), clock=lambda: env.now
            )
        self.policies = resolve_bundle(policies, self.default_policies)
        self.registry = StatusRegistry()
        self.proxy = ProxyLayer(env, self._ingress, self.registry)
        self.finished: list[Request] = []
        self.failed: list[Request] = []
        self.rejected: list[Request] = []
        self.fault_injector = None
        self.invariant_checker = None
        self.gpu_count = 0
        #: When False, terminally disposed requests are dropped instead of
        #: kept on the ledgers (fleet-scale streaming; see
        #: :meth:`configure_streaming`).
        self.retain_requests = True
        #: Optional callback fired on every terminal disposition — the
        #: fleet rollup folds requests into mergeable stats through this.
        self.request_sink: Optional[Callable[[Request], None]] = None
        #: The fleet controller's latest load hint for this shard
        #: (forecast load / fleet mean; 1.0 == fair share).  See
        #: :meth:`apply_scaling_hint`.
        self.scaling_hint: float = 1.0
        #: Model specs this run knows by name — populated by serve
        #: paths/:meth:`register_models` and added to on every submit.
        #: Routing policies resolve variant names through this.
        self.spec_index: dict[str, object] = {}
        #: Extra drain predicates consulted by the serve watchdogs; a
        #: hook returning False keeps the run alive (e.g. a session
        #: coordinator with stage submissions still pending).
        self.drain_hooks: list[Callable[[], bool]] = []
        #: The attached :class:`~repro.core.sessions.SessionCoordinator`,
        #: if any (see :meth:`attach_sessions`).
        self.sessions = None
        self._disposed = 0
        scope = self.obs.scoped("serving")
        self._failed_counter = scope.counter("requests_failed")
        self._rejected_counter = scope.counter("requests_rejected")
        # REPRO_INVARIANTS=1 turns on continuous invariant checking for
        # every run without touching call sites (used suite-wide in CI).
        if os.environ.get("REPRO_INVARIANTS"):
            self.attach_invariants()
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.gauge("in_flight", scope="proxy").set_fn(
                lambda: self.registry.in_flight
            )
            metrics.gauge("finished", scope="proxy").set_fn(
                lambda: self.registry.finished
            )
            metrics.gauge("steps_executed", scope="sim").set_fn(
                lambda: env.steps_executed
            )
            metrics.gauge("events_scheduled", scope="sim").set_fn(
                lambda: env.events_scheduled
            )

    # -- subclass interface -------------------------------------------------
    def _ingress(self, request: Request) -> None:
        """Proxy entry point: admission first, then the system's dispatch."""
        reason = self.policies.admission.decide(self, request)
        if reason is not None:
            policy_event(
                self.obs.tracer, "admission", decision="reject",
                reason=reason, request_id=request.request_id,
                model=request.model,
            )
            self.note_rejected(request)
            return
        self.dispatch(request)

    def admission_pressure(self) -> float:
        """Seconds of queued work ahead of a fresh arrival (admission's view).

        The base estimate is 0 (no queue model); systems with load
        estimators override this so SLO-aware admission can shed.
        """
        return 0.0

    def apply_scaling_hint(self, hint: float) -> None:
        """Record the fleet controller's load hint for this system.

        The hint is stored on :attr:`scaling_hint` for any policy to
        read, and forwarded to the bundle's scaling policy when it
        implements the optional ``observe_fleet_hint(system, hint)``
        hook.  Bundle policy objects are shared across shards, so
        policies must key any state they keep off ``system``, not
        ``self``.
        """
        self.scaling_hint = float(hint)
        observe = getattr(self.policies.scaling, "observe_fleet_hint", None)
        if observe is not None:
            observe(self, hint)

    def dispatch(self, request: Request) -> None:
        """Route one arriving request (subclasses implement)."""
        raise NotImplementedError

    def prepare(self, trace: Trace) -> None:
        """Pre-trace setup (placement, cache warming); optional."""

    def engines(self) -> list[AegaeonEngine]:
        """The system's engines, for scaling/transfer statistics; optional."""
        return []

    def scale_records(self) -> list[ScaleRecord]:
        """Auto-scaling history, aggregated across :meth:`engines`."""
        return [
            record for engine in self.engines() for record in engine.scale_history
        ]

    def transfer_stats(self) -> list[TransferStats]:
        """KV transfer statistics, aggregated across :meth:`engines`."""
        return [engine.kv.stats for engine in self.engines()]

    # -- chaos attachment ----------------------------------------------------
    def attach_faults(self, plan) -> "object":
        """Arm a :class:`~repro.chaos.FaultPlan` against this run."""
        from ..chaos.injector import FaultInjector

        self.fault_injector = FaultInjector(self, plan, obs=self.obs)
        return self.fault_injector

    def attach_invariants(self, interval: float = 0.5) -> "object":
        """Attach a runtime :class:`~repro.chaos.InvariantChecker`.

        Idempotent; :meth:`serve` runs a final check and raises on any
        recorded violation before collecting results.
        """
        from ..chaos.invariants import InvariantChecker

        if self.invariant_checker is None:
            self.invariant_checker = InvariantChecker(self, interval=interval)
        return self.invariant_checker

    # -- common plumbing ----------------------------------------------------
    def configure_streaming(
        self,
        *,
        retain_requests: bool = True,
        request_sink: Optional[Callable[[Request], None]] = None,
    ) -> None:
        """Choose how terminal requests are kept.

        ``retain_requests=False`` drops each request at its final
        disposition (after folding it through ``request_sink``), so a
        long replay's memory scales with in-flight concurrency rather
        than trace length.  Must be called before any request is
        submitted.
        """
        if self.proxy.submitted:
            raise RuntimeError("configure_streaming must precede submission")
        self.retain_requests = retain_requests
        self.proxy.retain = retain_requests
        self.request_sink = request_sink

    def register_models(self, models) -> None:
        """Index model specs by name for routing policies to resolve."""
        for spec in models:
            self.spec_index.setdefault(spec.name, spec)

    def attach_sessions(self, coordinator) -> None:
        """Wire a :class:`~repro.core.sessions.SessionCoordinator` in.

        Triggered stages submit through :meth:`submit`; the
        coordinator's settle hook is composed *after* any existing
        ``request_sink`` (stats fold first, DAG advance second) and its
        :meth:`~repro.core.sessions.SessionCoordinator.drained`
        predicate keeps the serve watchdogs alive across think-time
        gaps.  Must precede submission, like
        :meth:`configure_streaming`.
        """
        if self.proxy.submitted:
            raise RuntimeError("attach_sessions must precede submission")
        self.sessions = coordinator
        coordinator.bind(self.submit)
        inner = self.request_sink

        def sink(request: Request) -> None:
            if inner is not None:
                inner(request)
            coordinator.on_settled(request)

        self.request_sink = sink
        self.drain_hooks.append(coordinator.drained)

    def _drained(self) -> bool:
        """True when every attached drain hook agrees the run is idle."""
        return all(hook() for hook in self.drain_hooks)

    def submit(self, trace_request, spec) -> Request:
        """Admit one externally driven request (the fleet-runner path)."""
        self.spec_index.setdefault(spec.name, spec)
        request = Request(trace=trace_request, spec=spec)
        self.proxy.admit(request)
        return request

    def _dispose(self, request: Request, ledger: list[Request]) -> None:
        """Final accounting shared by every terminal disposition."""
        self._disposed += 1
        if self.request_sink is not None:
            self.request_sink(request)
        if self.retain_requests:
            ledger.append(request)
        else:
            if self.invariant_checker is not None:
                self.invariant_checker.vet_terminal(request)
            self.proxy.drop(request)
            self.registry.forget(request.request_id)

    def note_finished(self, request: Request) -> None:
        """Record a completed request."""
        self.registry.update(request)
        self._dispose(request, self.finished)
        self.obs.tracer.instant(
            "request_finished",
            cat="lifecycle",
            track="proxy",
            request_id=request.request_id,
            model=request.model,
        )

    def note_failed(self, request: Request) -> None:
        """Record a request given up on mid-flight (degraded mode)."""
        request.phase = Phase.FAILED
        self.registry.update(request)
        self._dispose(request, self.failed)
        self._failed_counter.inc()
        self.obs.tracer.instant(
            "request_failed",
            cat="lifecycle",
            track="proxy",
            request_id=request.request_id,
            model=request.model,
        )

    def note_rejected(self, request: Request) -> None:
        """Record a request turned away at admission (no live capacity)."""
        request.phase = Phase.REJECTED
        self.registry.update(request)
        self._dispose(request, self.rejected)
        self._rejected_counter.inc()
        self.obs.tracer.instant(
            "request_rejected",
            cat="lifecycle",
            track="proxy",
            request_id=request.request_id,
            model=request.model,
        )

    @property
    def accounted(self) -> int:
        """Requests with a final disposition: finished, failed, rejected."""
        return self._disposed

    def serve(self, trace: Trace, until: Optional[float] = None) -> "ServingResult":
        """Replay ``trace`` to completion or the drain deadline."""
        self.register_models(trace.models)
        self.prepare(trace)
        self.env.process(self.proxy.replay(trace))
        deadline = until if until is not None else trace.horizon + self.drain_grace

        def watchdog():
            while not (
                self.accounted >= len(trace.requests) and self._drained()
            ):
                if self.env.now >= deadline:
                    return
                yield self.env.timeout(1.0)

        self.env.run(until=self.env.process(watchdog()))
        if self.invariant_checker is not None:
            self.invariant_checker.check_now()
            self.invariant_checker.assert_clean()
        return self.collect(trace)

    def serve_stream(self, stream, until: Optional[float] = None) -> "ServingResult":
        """Replay a :class:`~repro.workload.stream.RequestStream` lazily.

        The stream is pulled one request at a time (bounded lookahead);
        with ``configure_streaming(retain_requests=False)`` the run's
        memory is bounded by concurrency, not request count.  ``prepare``
        receives the stream itself, which quacks enough like a trace
        (``models``, ``horizon``) for cache warming.
        """
        self.register_models(stream.models)
        self.prepare(stream)
        self.env.process(self.proxy.replay_stream(stream))
        deadline = until if until is not None else stream.horizon + self.drain_grace

        def watchdog():
            while not (
                self.proxy.all_submitted.triggered
                and self.accounted >= self.proxy.submitted
                and self._drained()
            ):
                if self.env.now >= deadline:
                    return
                yield self.env.timeout(1.0)

        self.env.run(until=self.env.process(watchdog()))
        if self.invariant_checker is not None:
            self.invariant_checker.check_now()
            self.invariant_checker.assert_clean()
        return self.collect(stream)

    def collect(self, trace: Trace) -> "ServingResult":
        """Assemble the measurement object."""
        # Imported here to avoid a core <-> analysis import cycle.
        from ..analysis.metrics import ServingResult

        return ServingResult(
            requests=list(self.proxy.requests),
            slo=self.slo,
            horizon=trace.horizon,
            end_time=self.env.now,
            scale_records=self.scale_records(),
            transfer_stats=self.transfer_stats(),
            gpu_count=self.gpu_count,
            label=self.label,
            metrics=self.obs.metrics.snapshot(),
            obs=self.obs,
        )


class BaselineServer(ServingSystemBase):
    """Base for the baseline systems (kept as their import point)."""

    label = "baseline"


# -- config surface ----------------------------------------------------------
@dataclass(frozen=True)
class SystemConfig:
    """Deployment knobs shared by every baseline serving system."""

    slo: SloSpec = DEFAULT_SLO
    cluster: str = "testbed"
    drain_grace: float = 300.0
    obs: ObsConfig = ObsConfig()
    #: Policy bundle name (or None for the system's default bundle).
    policies: Optional[str] = None


@dataclass(frozen=True)
class ServerlessLLMConfig(SystemConfig):
    """Deployment shape for ServerlessLLM (``sjf=True`` for the + variant)."""

    tp: int = 1
    instance_count: Optional[int] = None
    max_batch_size: int = 32
    model_cache_bytes: int = 1280 * GiB
    sjf: bool = False


@dataclass(frozen=True)
class MuxServeConfig(SystemConfig):
    """Deployment shape for the MuxServe static-multiplexing baseline."""

    tp: int = 1
    max_batch_size: int = 32


@dataclass(frozen=True)
class UnifiedConfig(SystemConfig):
    """Deployment shape for the unified token-level scheduling foils."""

    policy: str = "prefill_first"  # or "decode_first"
    model_cache_bytes: int = 640 * GiB


def _default_config(name: str):
    """The config dataclass a system gets when none is supplied."""
    key = _ALIASES.get(name.strip().lower(), name.strip().lower())
    if key == "aegaeon":
        from .server import AegaeonConfig

        return AegaeonConfig()
    if key == "serverless-llm":
        return ServerlessLLMConfig()
    if key == "serverless-llm+":
        return ServerlessLLMConfig(sjf=True)
    if key == "muxserve":
        return MuxServeConfig()
    if key == "unified-prefill-first":
        return UnifiedConfig(policy="prefill_first")
    if key == "unified-decode-first":
        return UnifiedConfig(policy="decode_first")
    raise ValueError(
        f"unknown serving system {name!r}; known: {available_systems()}"
    )


@dataclass(frozen=True)
class SystemSpec:
    """Declarative recipe for one serving system.

    Consolidates what used to be loose :func:`build_system` keyword
    arguments — cluster preset, policy bundle, observability level, and
    chaos attachments — into one value that can be stored, compared,
    and replicated across fleet shards.  This is the canonical
    constructor path: ``build_system(spec)`` (or ``spec.build(env)``)
    replaces the old positional ``build_system(name, env, config, ...)``
    form, which now warns once per call site.
    """

    system: str = "aegaeon"
    #: Full config dataclass; None uses the system's defaults as the base.
    config: Optional[object] = None
    #: Override the config's cluster preset (e.g. ``"h800-quad"``).
    cluster: Optional[str] = None
    #: Policy bundle (registry name or :class:`PolicyBundle` object);
    #: None keeps the config's / system's default.
    policies: Optional[PolicyBundle | str] = None
    #: Override the config's observability level.
    obs: Optional[ObsConfig] = None
    #: Optional :class:`~repro.chaos.FaultPlan` armed against the run.
    faults: Optional[object] = None
    invariants: bool = False

    def resolve_config(self):
        """The effective config after applying the spec's overrides."""
        config = self.config if self.config is not None else _default_config(self.system)
        overrides: dict[str, object] = {}
        if self.cluster is not None:
            overrides["cluster"] = self.cluster
        if self.obs is not None:
            overrides["obs"] = self.obs
        if self.policies is not None:
            overrides["policies"] = self.policies
        return replace(config, **overrides) if overrides else config

    def build(self, env: Optional[Environment] = None) -> "ServingSystem":
        """Construct the system this spec describes (fresh clock if
        ``env`` is omitted)."""
        return _build_system(
            self.system,
            env if env is not None else Environment(),
            self.resolve_config(),
            faults=self.faults,
            invariants=self.invariants,
        )


@dataclass(frozen=True)
class RunSettings:
    """Run-level knobs shared by the benchmark harness and CI smoke runs.

    This is the single home of the ``REPRO_BENCH_*`` environment
    handling that used to be scattered through ``benchmarks/_common.py``,
    with the observability level (``REPRO_OBS``) hanging off it.
    """

    horizon: float = 150.0
    scale: float = 1.0
    seed: int = 2025
    obs: ObsConfig = field(default_factory=ObsConfig)
    #: Policy bundle name (``REPRO_POLICIES``); None picks each system's
    #: default bundle.
    policies: Optional[str] = None
    #: Shared tuning constants (``REPRO_TUNE_*`` overrides).
    tunables: Tunables = field(default_factory=Tunables)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "RunSettings":
        """Resolve settings from ``REPRO_BENCH_{HORIZON,SCALE,SEED}``,
        ``REPRO_OBS``, ``REPRO_POLICIES``, and ``REPRO_TUNE_*``.

        The full ``REPRO_*`` surface lives in :mod:`repro.envkeys` (one
        registry shared with ``FleetConfig.from_env``, which consumes
        the ``REPRO_FLEET_*`` family); any unrecognized ``REPRO_*`` key
        draws a :class:`RuntimeWarning` naming the nearest valid key — a
        typo'd knob silently doing nothing is worse than noise.
        """
        from ..envkeys import warn_unknown_env_keys

        environ = os.environ if environ is None else environ
        warn_unknown_env_keys(environ)
        defaults = cls()
        policies = environ.get("REPRO_POLICIES", "").strip() or None
        return cls(
            horizon=float(environ.get("REPRO_BENCH_HORIZON", defaults.horizon)),
            scale=float(environ.get("REPRO_BENCH_SCALE", defaults.scale)),
            seed=int(environ.get("REPRO_BENCH_SEED", defaults.seed)),
            obs=ObsConfig.from_env(environ),
            policies=policies,
            tunables=Tunables.from_env(environ),
        )


# -- factory -----------------------------------------------------------------
def _build_aegaeon(env: Environment, config, policies):
    from .server import AegaeonConfig, AegaeonServer

    config = config if config is not None else AegaeonConfig()
    return AegaeonServer(
        env, resolve_cluster(config.cluster, env), config, policies=policies
    )


def _build_serverless(env: Environment, config, policies):
    from ..baselines.serverless_llm import ServerlessLLM, ServerlessLLMPlus

    config = config if config is not None else ServerlessLLMConfig()
    cls = ServerlessLLMPlus if config.sjf else ServerlessLLM
    return cls(
        env,
        resolve_cluster(config.cluster, env),
        instance_count=config.instance_count,
        tp=config.tp,
        slo=config.slo,
        max_batch_size=config.max_batch_size,
        model_cache_bytes=config.model_cache_bytes,
        obs=config.obs,
        policies=policies,
    )


def _build_serverless_plus(env: Environment, config, policies):
    config = config if config is not None else ServerlessLLMConfig()
    return _build_serverless(env, replace(config, sjf=True), policies)


def _build_muxserve(env: Environment, config, policies):
    from ..baselines.muxserve import MuxServe

    config = config if config is not None else MuxServeConfig()
    return MuxServe(
        env,
        resolve_cluster(config.cluster, env),
        tp=config.tp,
        slo=config.slo,
        max_batch_size=config.max_batch_size,
        obs=config.obs,
        policies=policies,
    )


def _build_unified(policy: str):
    def build(env: Environment, config, policies):
        from .unified import UnifiedServer

        config = config if config is not None else UnifiedConfig(policy=policy)
        return UnifiedServer(
            env,
            resolve_cluster(config.cluster, env),
            policy=config.policy if config.policy else policy,
            slo=config.slo,
            model_cache_bytes=config.model_cache_bytes,
            obs=config.obs,
            policies=policies,
        )

    return build


_BUILDERS: dict[str, Callable[[Environment, object, object], "ServingSystem"]] = {
    "aegaeon": _build_aegaeon,
    "serverless-llm": _build_serverless,
    "serverless-llm+": _build_serverless_plus,
    "muxserve": _build_muxserve,
    "unified-prefill-first": _build_unified("prefill_first"),
    "unified-decode-first": _build_unified("decode_first"),
}

_ALIASES = {
    "serverlessllm": "serverless-llm",
    "serverlessllm+": "serverless-llm+",
}


def available_systems() -> list[str]:
    """Names accepted by :func:`build_system`."""
    return sorted(_BUILDERS)


def _build_system(
    name: str,
    env: Environment,
    config=None,
    *,
    policies: Optional[PolicyBundle | str] = None,
    faults=None,
    invariants: bool = False,
) -> "ServingSystem":
    """The factory proper (no deprecation machinery): name + config in,
    system out.  :meth:`SystemSpec.build` and the legacy keyword shim
    both land here."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        builder = _BUILDERS[key]
    except KeyError:
        raise ValueError(
            f"unknown serving system {name!r}; known: {available_systems()}"
        ) from None
    if policies is None:
        policies = getattr(config, "policies", None)
    system = builder(env, config, policies)
    if faults is not None:
        system.attach_faults(faults)
    if invariants:
        system.attach_invariants()
    return system


def build_system(
    spec: "SystemSpec | str",
    env: Optional[Environment] = None,
    config=None,
    *,
    policies: Optional[PolicyBundle | str] = None,
    faults=None,
    invariants: bool = False,
) -> "ServingSystem":
    """Construct a serving system from a :class:`SystemSpec`.

    ``build_system(spec)`` (optionally with an ``env`` to share a clock)
    and ``build_fleet(FleetConfig(...))`` are the two blessed
    constructor paths — a spec is one storable, comparable value naming
    the system, config, cluster, policy bundle, observability level,
    and chaos attachments.

    The loose keyword form ``build_system("aegaeon", env, config,
    policies=..., faults=..., invariants=...)`` still works but is
    deprecated: it warns once per call site and will be removed a
    release after the in-repo callers are gone.  Migrate with::

        build_system(SystemSpec(system="aegaeon", config=config,
                                policies=..., faults=..., invariants=...),
                     env)
    """
    if isinstance(spec, SystemSpec):
        if config is not None or policies is not None or faults is not None or invariants:
            raise TypeError(
                "build_system(spec) takes no loose keywords; put config/"
                "policies/faults/invariants on the SystemSpec itself"
            )
        return spec.build(env)
    from .._compat import warn_deprecated

    warn_deprecated(
        "build_system(name, env, config, ...) is deprecated; pass a "
        "SystemSpec — build_system(SystemSpec(system=name, config=config, "
        "...), env)"
    )
    if env is None:
        raise TypeError("the legacy build_system(name, ...) form requires env")
    return _build_system(
        spec,
        env,
        config,
        policies=policies,
        faults=faults,
        invariants=invariants,
    )
