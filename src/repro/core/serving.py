"""Shared serving-system machinery (trace replay, result collection).

Every serving system other than :class:`~repro.core.server.AegaeonServer`
— the baselines and the unified-scheduling foils — derives from
:class:`BaselineServer`: it replays the same trace format through the
same proxy layer and returns the same
:class:`~repro.analysis.metrics.ServingResult`, so every system is
measured identically.
"""

from __future__ import annotations

from typing import Optional

from .proxy import ProxyLayer, StatusRegistry
from .slo import DEFAULT_SLO, SloSpec
from ..engine.engine import ScaleRecord
from ..engine.request import Request
from ..sim import Environment
from ..workload.trace import Trace

__all__ = ["BaselineServer"]


class BaselineServer:
    """Trace replay, completion tracking, and result collection."""

    label = "baseline"

    def __init__(self, env: Environment, slo: SloSpec = DEFAULT_SLO, drain_grace: float = 300.0):
        self.env = env
        self.slo = slo
        self.drain_grace = drain_grace
        self.registry = StatusRegistry()
        self.proxy = ProxyLayer(env, self.dispatch, self.registry)
        self.finished: list[Request] = []
        self.gpu_count = 0

    # -- subclass interface -----------------------------------------------------
    def dispatch(self, request: Request) -> None:
        """Route one arriving request (subclasses implement)."""
        raise NotImplementedError

    def prepare(self, trace: Trace) -> None:
        """Pre-trace setup (placement, cache warming); optional."""

    def scale_records(self) -> list[ScaleRecord]:
        """Auto-scaling history; optional."""
        return []

    # -- common plumbing -----------------------------------------------------
    def note_finished(self, request: Request) -> None:
        """Record a completed request."""
        self.registry.update(request)
        self.finished.append(request)

    def serve(self, trace: Trace, until: Optional[float] = None) -> "ServingResult":
        """Replay ``trace`` to completion or the drain deadline."""
        self.prepare(trace)
        self.env.process(self.proxy.replay(trace))
        deadline = until if until is not None else trace.horizon + self.drain_grace

        def watchdog():
            while len(self.finished) < len(trace.requests):
                if self.env.now >= deadline:
                    return
                yield self.env.timeout(1.0)

        self.env.run(until=self.env.process(watchdog()))
        return self.collect(trace)

    def collect(self, trace: Trace) -> "ServingResult":
        """Assemble the measurement object."""
        # Imported here to avoid a baselines <-> analysis import cycle.
        from ..analysis.metrics import ServingResult

        return ServingResult(
            requests=list(self.proxy.requests),
            slo=self.slo,
            horizon=trace.horizon,
            end_time=self.env.now,
            scale_records=self.scale_records(),
            transfer_stats=[],
            gpu_count=self.gpu_count,
            label=self.label,
        )
