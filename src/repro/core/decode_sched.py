"""Batched decoding-phase scheduling (§4.3, Algorithm 2).

Decoding exploits a unique slack: for target TBT ``d`` and step time
``t``, every ``n = d/t`` decoded steps tolerate ``n*(d - t)`` of delay
without violating per-token deadlines, because the output stream can be
buffered.  Aegaeon therefore rotates decode batches in *rounds* of
weighted turns, sizing each batch's time quota so that the whole round's
auto-scaling cost ``c`` fits inside the earned slack:

    q_i = c / (n_i * (alpha - sum_k 1/n_k))                     (Eq. 2)
    alpha = max(c / (min_k n_k * QMAX) + sum_k 1/n_k, floor)    (Eq. 3)

``1/alpha`` is the round's estimated SLO attainment; the alpha floor
keeps turns short (hence responsive to new batches) when SLOs are
comfortably met.

The quota mathematics and the placement rule live in
:mod:`repro.policy` (``WeightedRoundPolicy`` / ``BatchedDecodeDispatch``
are the defaults); this module keeps the executing scheduler plus
compatibility re-exports of the math under their historical names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..engine.request import Request
from ..models.catalog import ModelSpec
from ..obs import NULL_OBS, Observability
from ..policy.decode_turn import (
    compute_quotas,
    estimate_round_attainment,
    reorder_work_list,
)
from ..policy.dispatch import BatchedDecodeDispatch
from ..policy.tunables import DEFAULT_TUNABLES
from .slo import SloSpec

__all__ = [
    "QMAX",
    "BatchedDecodeScheduler",
    "DecodeBatch",
    "DecodeInstanceLike",
    "compute_quotas",
    "estimate_round_attainment",
    "reorder_work_list",
]

# Maximum per-turn quota, seconds; the paper sets 4 s empirically and
# reports robustness to alternative settings.  Canonically a field of
# :class:`repro.policy.Tunables`; this alias keeps old imports working.
QMAX = DEFAULT_TUNABLES.qmax


@dataclass
class DecodeBatch:
    """Same-model requests decoded together in one turn."""

    spec: ModelSpec
    requests: list[Request] = field(default_factory=list)
    max_size: int = 32
    quota: float = 0.0

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def has_room(self) -> bool:
        return self.size < self.max_size

    @property
    def context_tokens(self) -> int:
        """Total KV tokens the batch attends over this step."""
        return sum(request.context_tokens for request in self.requests)

    @property
    def exhausted(self) -> bool:
        return not self.requests


class DecodeInstanceLike(Protocol):
    """What the scheduler needs from a decode instance."""

    work_list: list[DecodeBatch]

    def batch_capacity(self, spec: ModelSpec) -> int:
        ...

    def kick(self) -> None:
        ...


class BatchedDecodeScheduler:
    """Algorithm 2's dispatch side: place prefilled requests in batches.

    The placement *decision* comes from the bundle's
    :class:`~repro.policy.DispatchPolicy` (default:
    :class:`~repro.policy.BatchedDecodeDispatch`); the scheduler
    executes it against its own copy of the instance list — the
    policy-facing view — so callers' pool lists are never mutated and a
    failed instance can be removed without touching them.
    """

    def __init__(
        self,
        instances: list[DecodeInstanceLike],
        obs: Observability = NULL_OBS,
        policy: Optional[BatchedDecodeDispatch] = None,
    ):
        if not instances:
            raise ValueError("need at least one decode instance")
        # The scheduler owns its dispatch list (the policy's view);
        # removing a failed instance must not mutate the caller's pool.
        self.instances = list(instances)
        self.policy = policy if policy is not None else BatchedDecodeDispatch()
        self._tracer = obs.tracer
        scope = obs.scoped("decode_sched")
        self._joined_counter = scope.counter("batches_joined")
        self._opened_counter = scope.counter("batches_opened")

    def dispatch(self, request: Request) -> DecodeInstanceLike:
        """Place a prefilled request; returns the chosen instance.

        Raises ``LookupError`` when every decode instance has been
        removed (failed) — the server turns that into a failure.
        """
        if not self.instances:
            raise LookupError("no live decode instances")
        instance, batch, decision = self.policy.place_decode(self, request)
        if batch is not None:
            batch.requests.append(request)
            self._joined_counter.inc()
        else:
            batch = DecodeBatch(
                spec=request.spec,
                requests=[request],
                max_size=instance.batch_capacity(request.spec),
            )
            instance.work_list.append(batch)
            self._opened_counter.inc()
        instance.kick()
        self._note_dispatch(request, decision)
        return instance

    def _note_dispatch(self, request: Request, decision: str) -> None:
        if self._tracer.enabled:
            self._tracer.instant(
                "decode_dispatch", cat="sched", track="decode_sched",
                request_id=request.request_id, model=request.model,
                decision=decision,
            )
