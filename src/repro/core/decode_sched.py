"""Batched decoding-phase scheduling (§4.3, Algorithm 2).

Decoding exploits a unique slack: for target TBT ``d`` and step time
``t``, every ``n = d/t`` decoded steps tolerate ``n*(d - t)`` of delay
without violating per-token deadlines, because the output stream can be
buffered.  Aegaeon therefore rotates decode batches in *rounds* of
weighted turns, sizing each batch's time quota so that the whole round's
auto-scaling cost ``c`` fits inside the earned slack:

    q_i = c / (n_i * (alpha - sum_k 1/n_k))                     (Eq. 2)
    alpha = max(c / (min_k n_k * QMAX) + sum_k 1/n_k, 0.5)      (Eq. 3)

``1/alpha`` is the round's estimated SLO attainment; the 0.5 floor keeps
turns short (hence responsive to new batches) when SLOs are comfortably
met.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..engine.request import Request
from ..models.catalog import ModelSpec
from ..obs import NULL_OBS, Observability
from .slo import SloSpec

__all__ = [
    "QMAX",
    "BatchedDecodeScheduler",
    "DecodeBatch",
    "DecodeInstanceLike",
    "compute_quotas",
    "estimate_round_attainment",
    "reorder_work_list",
]

# Maximum per-turn quota, seconds; the paper sets 4 s empirically and
# reports robustness to alternative settings.
QMAX = 4.0


@dataclass
class DecodeBatch:
    """Same-model requests decoded together in one turn."""

    spec: ModelSpec
    requests: list[Request] = field(default_factory=list)
    max_size: int = 32
    quota: float = 0.0

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def has_room(self) -> bool:
        return self.size < self.max_size

    @property
    def context_tokens(self) -> int:
        """Total KV tokens the batch attends over this step."""
        return sum(request.context_tokens for request in self.requests)

    @property
    def exhausted(self) -> bool:
        return not self.requests


class DecodeInstanceLike(Protocol):
    """What the scheduler needs from a decode instance."""

    work_list: list[DecodeBatch]

    def batch_capacity(self, spec: ModelSpec) -> int:
        ...

    def kick(self) -> None:
        ...


class BatchedDecodeScheduler:
    """Algorithm 2's dispatch side: place prefilled requests in batches."""

    def __init__(
        self,
        instances: list[DecodeInstanceLike],
        obs: Observability = NULL_OBS,
    ):
        if not instances:
            raise ValueError("need at least one decode instance")
        self.instances = instances
        self._tracer = obs.tracer
        scope = obs.scoped("decode_sched")
        self._joined_counter = scope.counter("batches_joined")
        self._opened_counter = scope.counter("batches_opened")

    def dispatch(self, request: Request) -> DecodeInstanceLike:
        """Place a prefilled request; returns the chosen instance.

        Raises ``LookupError`` when every decode instance has been
        removed (failed) — the server turns that into a failure.
        """
        if not self.instances:
            raise LookupError("no live decode instances")
        # Prefer an existing batch of the same model with room.
        for instance in self.instances:
            for batch in instance.work_list:
                if batch.spec.name == request.spec.name and batch.has_room:
                    batch.requests.append(request)
                    instance.kick()
                    self._joined_counter.inc()
                    self._note_dispatch(request, "join")
                    return instance
        # Otherwise open a batch on the least-loaded instance, where
        # load is the work-list size (Algorithm 2, line 2).
        target = min(self.instances, key=lambda inst: len(inst.work_list))
        batch = DecodeBatch(
            spec=request.spec,
            requests=[request],
            max_size=target.batch_capacity(request.spec),
        )
        target.work_list.append(batch)
        target.kick()
        self._opened_counter.inc()
        self._note_dispatch(request, "open")
        return target

    def _note_dispatch(self, request: Request, decision: str) -> None:
        if self._tracer.enabled:
            self._tracer.instant(
                "decode_dispatch", cat="sched", track="decode_sched",
                request_id=request.request_id, model=request.model,
                decision=decision,
            )


def reorder_work_list(work_list: list[DecodeBatch]) -> list[DecodeBatch]:
    """Group batches of the same model adjacently, preserving first-seen order.

    Same-model batches occur when one batch's KV needs exceed the GPU
    cache; placing them adjacently avoids pointless switches.  When the
    list is already grouped — the overwhelmingly common case — the input
    list itself is returned, letting callers skip the copy-back.
    """
    order: dict[str, int] = {}
    sorted_already = True
    last_index = -1
    for batch in work_list:
        index = order.setdefault(batch.spec.name, len(order))
        if index < last_index:
            sorted_already = False
        last_index = index
    if sorted_already:
        return work_list
    indexed = sorted(
        enumerate(work_list),
        key=lambda item: (order[item[1].spec.name], item[0]),
    )
    return [batch for _, batch in indexed]


def compute_quotas(
    batches: list[DecodeBatch],
    step_times: list[float],
    total_switch_cost: float,
    slo: SloSpec,
    qmax: float = QMAX,
) -> list[float]:
    """Assign the Eq. 2 time quota to every batch in a round.

    ``step_times`` are the estimated per-step decode times ``t_k``;
    ``total_switch_cost`` is ``c``, the summed auto-scaling overhead of
    the round's model switches.
    """
    if len(batches) != len(step_times):
        raise ValueError("need one step-time estimate per batch")
    if not batches:
        return []
    # n_k = d / t_k, the tokens one TBT period buys.
    slack_ratios = [max(slo.tbt / max(t, 1e-9), 1.0 + 1e-9) for t in step_times]
    inverse_sum = sum(1.0 / n for n in slack_ratios)
    if total_switch_cost <= 0.0 or len(batches) == 1:
        # No scaling cost to amortize: turns default to the maximum
        # quota (a single batch simply keeps decoding).
        return [qmax] * len(batches)
    alpha = max(
        total_switch_cost / (min(slack_ratios) * qmax) + inverse_sum,
        0.5,
    )
    quotas = []
    for n in slack_ratios:
        quota = total_switch_cost / (n * (alpha - inverse_sum))
        quotas.append(min(max(quota, 0.0), qmax))
    return quotas


def estimate_round_attainment(
    step_times: list[float], total_switch_cost: float, slo: SloSpec, qmax: float = QMAX
) -> float:
    """The scheduler's own 1/alpha attainment estimate for a round."""
    if not step_times:
        return 1.0
    slack_ratios = [max(slo.tbt / max(t, 1e-9), 1.0 + 1e-9) for t in step_times]
    inverse_sum = sum(1.0 / n for n in slack_ratios)
    if total_switch_cost <= 0.0:
        return 1.0
    alpha = max(
        total_switch_cost / (min(slack_ratios) * qmax) + inverse_sum, 0.5
    )
    return min(1.0, 1.0 / alpha)
