"""Completion-triggered submission of agentic session DAGs.

A :class:`~repro.workload.agentic.SessionPlan` only puts its *root*
stages on the wire; every dependent stage must be submitted when its
dependencies finish, after the stage's think time.  The
:class:`SessionCoordinator` is that trigger loop, and it is deliberately
an ordinary simulation actor: stage submissions are ``env.process``
events on the shared clock, scheduled from the same terminal-disposition
hook (``request_sink``) the rollup already folds through.  Nothing here
consults wall time or private RNG state, so an agentic replay is exactly
as byte-reproducible as the stream that seeds it.

Accounting contract (the conservation property the tests pin): for every
session, ``stages_submitted == stages_finished + stages_failed +
stages_rejected`` once the run drains.  A failed or rejected stage
aborts its *downstream* — successors of a stage that never finished are
never submitted — so sessions complete iff every stage finished.  The
coordinator's :meth:`drained` hook keeps serve watchdogs alive across
think-time gaps where the system itself looks idle but a stage
submission is still pending.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..workload.agentic import SessionPlan, StagePlan
from ..workload.stream import RequestStream

__all__ = ["SessionStats", "SessionCoordinator"]


@dataclass
class _LiveSession:
    """Mutable tracking state for one in-flight session."""

    plan: SessionPlan
    #: Stage indices whose requests have been put on the wire.
    submitted: set[int] = field(default_factory=set)
    #: Stage indices scheduled for submission (supersets ``submitted``
    #: while a think-time timeout is pending).
    triggered: set[int] = field(default_factory=set)
    #: Stage indices that finished successfully.
    done: set[int] = field(default_factory=set)
    #: Terminal dispositions seen so far (finished + failed + rejected).
    settled: int = 0
    #: Trigger processes scheduled but not yet submitted.
    pending: int = 0
    aborted: bool = False
    finalized: bool = False


@dataclass
class SessionStats:
    """Mergeable per-run session accounting (the conservation ledger)."""

    sessions_started: int = 0
    sessions_completed: int = 0
    sessions_aborted: int = 0
    stages_submitted: int = 0
    stages_finished: int = 0
    stages_failed: int = 0
    stages_rejected: int = 0
    #: Stages whose dependencies never all finished (pruned downstream
    #: of a failure/rejection) — the complement that makes per-plan
    #: accounting total: submitted + skipped == sum(len(plan.stages)).
    stages_skipped: int = 0

    def as_dict(self) -> dict:
        """Plain-dict form for rollups and digesting."""
        return {
            "sessions_started": self.sessions_started,
            "sessions_completed": self.sessions_completed,
            "sessions_aborted": self.sessions_aborted,
            "stages_submitted": self.stages_submitted,
            "stages_finished": self.stages_finished,
            "stages_failed": self.stages_failed,
            "stages_rejected": self.stages_rejected,
            "stages_skipped": self.stages_skipped,
        }


class SessionCoordinator:
    """Drives session DAGs to completion over any submission channel.

    One coordinator serves one run.  ``spec_of`` resolves a model name
    to its :class:`~repro.models.catalog.ModelSpec` (usually the
    stream's ``spec_of``); the submission channel is bound late via
    :meth:`bind` because a single-system run submits through
    ``system.submit`` while a fleet run routes through the pump
    (``FleetRunner.submit_routed``).

    Wiring order matters and is enforced by the attach points:
    ``system.attach_sessions(coordinator)`` composes the coordinator's
    :meth:`on_settled` *after* any stats-folding sink, then the stream
    is wrapped with :meth:`wrap_stream` so root submissions are counted
    as they leave the pump.
    """

    def __init__(
        self,
        env,
        spec_of: Callable[[str], object],
        *,
        obs=None,
    ):
        self.env = env
        self.spec_of = spec_of
        self.obs = obs
        self.stats = SessionStats()
        #: Finalized per-session rows, keyed by session id.
        self.per_session: dict[int, dict] = {}
        self._live: dict[int, _LiveSession] = {}
        self._submit: Optional[Callable[[object, object], None]] = None
        #: Trigger processes scheduled but not yet submitted, run-wide.
        #: Non-zero means the run is *not* drained even if every
        #: submitted request has settled.
        self.outstanding = 0

    # -- wiring --------------------------------------------------------------
    def bind(self, submit: Callable[[object, object], None]) -> None:
        """Set the submission channel for triggered stages."""
        self._submit = submit

    def drained(self) -> bool:
        """False while any triggered stage has not been submitted yet."""
        return self.outstanding == 0

    def wrap_stream(self, stream: RequestStream) -> RequestStream:
        """A stream that notifies this coordinator of each pumped root.

        The wrapper is **single-use**: iterating it twice would count
        root submissions twice.  Wrap immediately before the serve call.
        """

        def _iterate():
            for request in stream:
                self.note_submitted(request)
                yield request

        return RequestStream(
            stream.models, stream.horizon, _iterate,
            rates=stream.rates, name=f"{stream.name}+sessions",
        )

    # -- event hooks ---------------------------------------------------------
    def note_submitted(self, trace_request) -> None:
        """Record one stage hitting the wire (root or triggered)."""
        plan = getattr(trace_request, "plan", None)
        if plan is None:
            return  # market traffic riding the same stream
        sess = self._live.get(plan.session)
        if sess is None:
            sess = self._live[plan.session] = _LiveSession(plan=plan)
            self.stats.sessions_started += 1
            self._instant(
                "session.start", session=plan.session,
                stages=len(plan.stages), arrival=plan.arrival,
            )
        stage = trace_request.stage
        sess.triggered.add(stage)
        sess.submitted.add(stage)
        self.stats.stages_submitted += 1
        self._instant(
            "session.stage.submit", session=plan.session, stage=stage,
            model=trace_request.model,
        )

    def on_settled(self, request) -> None:
        """Terminal-disposition hook: advance the session's DAG.

        Composed after the rollup sink, so stats folding sees the
        request first.  Called with the live :class:`Request`; market
        requests (no ``plan`` on their trace) pass through untouched.
        """
        trace = request.trace
        plan = getattr(trace, "plan", None)
        if plan is None:
            return
        sess = self._live.get(plan.session)
        if sess is None:
            return  # already finalized (defensive; dispositions are unique)
        from ..engine.request import Phase

        stage = trace.stage
        sess.settled += 1
        phase = request.phase
        if phase is Phase.FINISHED:
            self.stats.stages_finished += 1
            sess.done.add(stage)
            for nxt in plan.successors(stage):
                if nxt.index in sess.triggered:
                    continue
                if not all(dep in sess.done for dep in nxt.deps):
                    continue
                sess.triggered.add(nxt.index)
                sess.pending += 1
                self.outstanding += 1
                self.env.process(self._trigger(sess, nxt))
        else:
            if phase is Phase.REJECTED:
                self.stats.stages_rejected += 1
            else:
                self.stats.stages_failed += 1
            sess.aborted = True
        self._instant(
            "session.stage.settle", session=plan.session, stage=stage,
            phase=phase.name.lower(),
        )
        self._maybe_finalize(sess)

    # -- internals -----------------------------------------------------------
    def _trigger(self, sess: _LiveSession, stage: StagePlan):
        """Submit one dependent stage after its think time (a sim event)."""
        yield self.env.timeout(stage.think_time)
        request = sess.plan.request_for(stage, self.env.now)
        sess.pending -= 1
        self.outstanding -= 1
        if self._submit is None:
            raise RuntimeError(
                "SessionCoordinator.bind() must precede stage completion"
            )
        # Count the submission *before* handing it to the channel: an
        # admission rejection can settle synchronously inside _submit,
        # and on_settled must see the stage on the submitted ledger.
        self.note_submitted(request)
        self._submit(request, self.spec_of(request.model))
        self._maybe_finalize(sess)

    def _maybe_finalize(self, sess: _LiveSession) -> None:
        # _trigger holds a direct reference, so a synchronous settle
        # inside its submit can reach here twice for the same session.
        if sess.finalized or sess.pending or sess.settled < len(sess.submitted):
            return
        # A multi-root plan's roots are pumped back to back at the same
        # arrival; don't finalize between them if the first settles
        # synchronously (admission rejection).
        if any(
            stage.index not in sess.submitted for stage in sess.plan.roots()
        ):
            return
        sess.finalized = True
        plan = sess.plan
        completed = len(sess.done) == len(plan.stages)
        if completed:
            self.stats.sessions_completed += 1
        else:
            self.stats.sessions_aborted += 1
        self.stats.stages_skipped += len(plan.stages) - len(sess.submitted)
        self.per_session[plan.session] = {
            "stages": len(plan.stages),
            "submitted": len(sess.submitted),
            "finished": len(sess.done),
            "completed": completed,
            "end": self.env.now,
        }
        # Drop the live entry so coordinator memory is bounded by
        # in-flight sessions, not the run's session count.
        del self._live[plan.session]
        self._instant(
            "session.end", session=plan.session, completed=completed,
        )

    def _instant(self, name: str, **fields) -> None:
        if self.obs is not None and self.obs.enabled:
            self.obs.tracer.instant(name, cat="session", track="sessions", **fields)

    def summary(self) -> dict:
        """The run's session rollup (stats + per-session rows)."""
        return {
            "stats": self.stats.as_dict(),
            "sessions": {
                str(k): dict(v) for k, v in sorted(self.per_session.items())
            },
            "live": len(self._live),
        }
