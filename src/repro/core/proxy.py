"""Proxy layer: request dispatch and status synchronization (Figure 5).

The production system fronts the instance pool with a proxy/load-balancer
that synchronizes request metadata through a shared in-memory store
(Redis).  Here the :class:`StatusRegistry` plays that role — a single
source of truth for request state that instances and the server update —
and :class:`ProxyLayer` replays a trace into the prefill scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..engine.request import Phase, Request
from ..sim import Environment, Event
from ..workload.trace import Trace

__all__ = ["StatusRegistry", "ProxyLayer"]


@dataclass
class StatusRegistry:
    """Shared request-status store (the paper's Redis role)."""

    statuses: dict[int, str] = field(default_factory=dict)
    submitted: int = 0
    finished: int = 0
    failed: int = 0
    rejected: int = 0

    def update(self, request: Request) -> None:
        """Record a request's current phase."""
        if request.request_id not in self.statuses:
            self.submitted += 1
        previous = self.statuses.get(request.request_id)
        self.statuses[request.request_id] = request.phase.value
        if request.phase is Phase.FINISHED and previous != Phase.FINISHED.value:
            self.finished += 1
        elif request.phase is Phase.FAILED and previous != Phase.FAILED.value:
            self.failed += 1
        elif request.phase is Phase.REJECTED and previous != Phase.REJECTED.value:
            self.rejected += 1

    def forget(self, request_id: int) -> None:
        """Purge a terminal request's status entry; counters keep its tally."""
        self.statuses.pop(request_id, None)

    @property
    def in_flight(self) -> int:
        return self.submitted - self.finished - self.failed - self.rejected


class ProxyLayer:
    """Replays a workload, dispatching each arrival to the serving system.

    In the default *retaining* mode every submitted :class:`Request` is
    kept in ``requests`` for end-of-run analysis.  Fleet-scale streaming
    runs set ``retain=False``: only in-flight requests are tracked (in
    ``live``), and the serving system drops each request as soon as it
    reaches a terminal disposition — peak memory then scales with
    concurrency, not trace length.
    """

    def __init__(
        self,
        env: Environment,
        dispatch: Callable[[Request], None],
        registry: Optional[StatusRegistry] = None,
        retain: bool = True,
    ):
        self.env = env
        self.dispatch = dispatch
        self.registry = registry if registry is not None else StatusRegistry()
        self.retain = retain
        self.requests: list[Request] = []
        #: In-flight requests when ``retain`` is off (id -> request).
        self.live: dict[int, Request] = {}
        #: Total requests ever admitted (== len(requests) when retaining).
        self.submitted = 0
        self.all_submitted: Event = env.event()

    def admit(self, request: Request) -> None:
        """Record one arriving request and hand it to the dispatcher."""
        if self.retain:
            self.requests.append(request)
        else:
            self.live[request.request_id] = request
        self.submitted += 1
        self.registry.update(request)
        self.dispatch(request)

    def drop(self, request: Request) -> None:
        """Forget a terminally disposed request (non-retaining mode)."""
        self.live.pop(request.request_id, None)

    def tracked_requests(self):
        """Every request the proxy still knows about (analysis/invariants)."""
        return self.requests if self.retain else self.live.values()

    def replay(self, trace: Trace) -> Generator:
        """Process: submit every trace request at its arrival time."""
        for trace_request in trace.requests:
            delay = trace_request.arrival - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            request = Request(
                trace=trace_request, spec=trace.spec_of(trace_request.model)
            )
            self.admit(request)
        self.all_submitted.succeed()

    def replay_stream(self, stream) -> Generator:
        """Process: pull a :class:`~repro.workload.stream.RequestStream`.

        Requests are drawn lazily from the stream at simulation time, so
        lookahead stays bounded by the stream's own contract (one pending
        request per model).
        """
        spec_of = stream.spec_of
        for trace_request in stream:
            delay = trace_request.arrival - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            request = Request(
                trace=trace_request, spec=spec_of(trace_request.model)
            )
            self.admit(request)
        self.all_submitted.succeed()
