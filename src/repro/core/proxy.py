"""Proxy layer: request dispatch and status synchronization (Figure 5).

The production system fronts the instance pool with a proxy/load-balancer
that synchronizes request metadata through a shared in-memory store
(Redis).  Here the :class:`StatusRegistry` plays that role — a single
source of truth for request state that instances and the server update —
and :class:`ProxyLayer` replays a trace into the prefill scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..engine.request import Phase, Request
from ..sim import Environment, Event
from ..workload.trace import Trace

__all__ = ["StatusRegistry", "ProxyLayer"]


@dataclass
class StatusRegistry:
    """Shared request-status store (the paper's Redis role)."""

    statuses: dict[int, str] = field(default_factory=dict)
    submitted: int = 0
    finished: int = 0
    failed: int = 0
    rejected: int = 0

    def update(self, request: Request) -> None:
        """Record a request's current phase."""
        if request.request_id not in self.statuses:
            self.submitted += 1
        previous = self.statuses.get(request.request_id)
        self.statuses[request.request_id] = request.phase.value
        if request.phase is Phase.FINISHED and previous != Phase.FINISHED.value:
            self.finished += 1
        elif request.phase is Phase.FAILED and previous != Phase.FAILED.value:
            self.failed += 1
        elif request.phase is Phase.REJECTED and previous != Phase.REJECTED.value:
            self.rejected += 1

    @property
    def in_flight(self) -> int:
        return self.submitted - self.finished - self.failed - self.rejected


class ProxyLayer:
    """Replays a trace, dispatching each arrival to the prefill scheduler."""

    def __init__(
        self,
        env: Environment,
        dispatch: Callable[[Request], None],
        registry: Optional[StatusRegistry] = None,
    ):
        self.env = env
        self.dispatch = dispatch
        self.registry = registry if registry is not None else StatusRegistry()
        self.requests: list[Request] = []
        self.all_submitted: Event = env.event()

    def replay(self, trace: Trace) -> Generator:
        """Process: submit every trace request at its arrival time."""
        for trace_request in trace.requests:
            delay = trace_request.arrival - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            request = Request(
                trace=trace_request, spec=trace.spec_of(trace_request.model)
            )
            self.requests.append(request)
            self.registry.update(request)
            self.dispatch(request)
        self.all_submitted.succeed()
