"""Aegaeon core: token-level scheduling, instances, and the serving API."""

from .decode_sched import (
    BatchedDecodeScheduler,
    DecodeBatch,
    QMAX,
    compute_quotas,
    estimate_round_attainment,
    reorder_work_list,
)
from .instance import DecodeInstance, PrefillInstance
from .prefill_sched import (
    GroupedPrefillScheduler,
    MAX_GPSIZE,
    PrefillGroup,
)
from .proxy import ProxyLayer, StatusRegistry
from .server import AegaeonConfig, AegaeonServer
from .sessions import SessionCoordinator, SessionStats
from .serving import (
    BaselineServer,
    MuxServeConfig,
    RunSettings,
    ServerlessLLMConfig,
    ServingSystem,
    ServingSystemBase,
    SystemConfig,
    SystemSpec,
    UnifiedConfig,
    available_systems,
    build_system,
    resolve_cluster,
)
from .slo import DEFAULT_SLO, SloSpec, token_deadlines, tokens_met
from .unified import DECODE_FIRST, PREFILL_FIRST, UnifiedInstance, UnifiedServer

__all__ = [
    "AegaeonConfig",
    "AegaeonServer",
    "BaselineServer",
    "BatchedDecodeScheduler",
    "DEFAULT_SLO",
    "DecodeBatch",
    "DecodeInstance",
    "GroupedPrefillScheduler",
    "MAX_GPSIZE",
    "MuxServeConfig",
    "PrefillGroup",
    "PrefillInstance",
    "ProxyLayer",
    "QMAX",
    "RunSettings",
    "ServerlessLLMConfig",
    "ServingSystem",
    "ServingSystemBase",
    "SessionCoordinator",
    "SessionStats",
    "SloSpec",
    "StatusRegistry",
    "SystemConfig",
    "SystemSpec",
    "UnifiedConfig",
    "DECODE_FIRST",
    "PREFILL_FIRST",
    "UnifiedInstance",
    "UnifiedServer",
    "available_systems",
    "build_system",
    "compute_quotas",
    "estimate_round_attainment",
    "reorder_work_list",
    "resolve_cluster",
    "token_deadlines",
    "tokens_met",
]
