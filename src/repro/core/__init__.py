"""Aegaeon core: token-level scheduling, instances, and the server."""

from .decode_sched import (
    BatchedDecodeScheduler,
    DecodeBatch,
    QMAX,
    compute_quotas,
    estimate_round_attainment,
    reorder_work_list,
)
from .instance import DecodeInstance, PrefillInstance
from .prefill_sched import (
    GroupedPrefillScheduler,
    MAX_GPSIZE,
    PrefillGroup,
)
from .proxy import ProxyLayer, StatusRegistry
from .server import AegaeonConfig, AegaeonServer
from .slo import DEFAULT_SLO, SloSpec, token_deadlines, tokens_met
from .unified import DECODE_FIRST, PREFILL_FIRST, UnifiedInstance, UnifiedServer

__all__ = [
    "AegaeonConfig",
    "AegaeonServer",
    "BatchedDecodeScheduler",
    "DEFAULT_SLO",
    "DecodeBatch",
    "DecodeInstance",
    "GroupedPrefillScheduler",
    "MAX_GPSIZE",
    "PrefillGroup",
    "PrefillInstance",
    "ProxyLayer",
    "QMAX",
    "SloSpec",
    "StatusRegistry",
    "DECODE_FIRST",
    "PREFILL_FIRST",
    "UnifiedInstance",
    "UnifiedServer",
    "compute_quotas",
    "estimate_round_attainment",
    "reorder_work_list",
    "token_deadlines",
    "tokens_met",
]
