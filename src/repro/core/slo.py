"""SLO definitions and per-token deadline accounting (§2.1, Figure 3).

The paper quantifies service quality as **per-token SLO attainment**: the
fraction of token generation times that meet their deadlines, where the
first token's deadline is the target TTFT after arrival and each
subsequent token's deadline advances by the target TBT.  Output buffering
is implicit in this definition — a token generated early buys slack for
later stalls, which is exactly the property Aegaeon's decode scheduler
(Algorithm 2) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SloSpec", "DEFAULT_SLO", "token_deadlines", "tokens_met"]


@dataclass(frozen=True)
class SloSpec:
    """Target TTFT and TBT, in seconds."""

    ttft: float = 10.0
    tbt: float = 0.100

    def __post_init__(self) -> None:
        if self.ttft <= 0 or self.tbt <= 0:
            raise ValueError("SLO targets must be positive")

    def scale(self, factor: float) -> "SloSpec":
        """Uniformly stricter/looser SLOs (the paper's 0.5x/0.3x/0.2x)."""
        return SloSpec(ttft=self.ttft * factor, tbt=self.tbt * factor)

    def scale_ttft(self, factor: float) -> "SloSpec":
        """Scale only the TTFT target (§7.4, larger-model study)."""
        return SloSpec(ttft=self.ttft * factor, tbt=self.tbt)

    def scale_tbt(self, factor: float) -> "SloSpec":
        """Scale only the TBT target (§7.4, low-end-hardware study)."""
        return SloSpec(ttft=self.ttft, tbt=self.tbt * factor)

    def __str__(self) -> str:
        return f"TTFT={self.ttft:g}s/TBT={self.tbt * 1e3:g}ms"


# The paper's production targets: 10 s TTFT, 100 ms TBT.
DEFAULT_SLO = SloSpec()


def token_deadlines(arrival: float, token_count: int, slo: SloSpec) -> np.ndarray:
    """Deadline of each output token (token k: arrival + TTFT + (k-1)*TBT)."""
    if token_count < 0:
        raise ValueError("token_count must be non-negative")
    if token_count == 0:
        return np.empty(0)
    return arrival + slo.ttft + slo.tbt * np.arange(token_count)


def tokens_met(
    arrival: float, token_times: list[float] | np.ndarray, slo: SloSpec
) -> tuple[int, int]:
    """(tokens meeting their deadline, tokens generated)."""
    times = np.asarray(token_times, dtype=float)
    if times.size == 0:
        return (0, 0)
    deadlines = token_deadlines(arrival, times.size, slo)
    return (int(np.sum(times <= deadlines)), int(times.size))
