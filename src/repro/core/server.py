"""The Aegaeon serving system (Figure 5), assembled end to end.

:class:`AegaeonServer` wires the whole stack together on a simulated
cluster: per-node host caches, prefill/decoding engines and instances,
the two token-level schedulers, and the proxy layer.  ``serve(trace)``
replays a workload and returns a :class:`~repro.analysis.metrics.ServingResult`.

One simplification versus the production deployment: the unified CPU KV
cache and the model cache are cluster-wide objects rather than per-node
(the paper moves KV between nodes through the network via the proxy
tier; collapsing that tier does not change any scheduling decision —
see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.engine import AegaeonEngine, EngineConfig
from ..engine.request import Request
from ..hardware.cluster import Cluster
from ..memory.model_cache import HostModelCache
from ..memory.slab import SlabAllocator
from ..models.catalog import ModelSpec
from ..sim import Environment
from ..transfer.kv_transfer import MoveList
from ..workload.trace import Trace
from .decode_sched import BatchedDecodeScheduler
from .instance import DecodeInstance, PrefillInstance
from .prefill_sched import GroupedPrefillScheduler
from .proxy import ProxyLayer, StatusRegistry
from .slo import DEFAULT_SLO, SloSpec

__all__ = ["AegaeonConfig", "AegaeonServer"]

GiB = 1024**3


@dataclass(frozen=True)
class AegaeonConfig:
    """Deployment shape and engine features for one Aegaeon pool."""

    prefill_instances: int = 6
    decode_instances: int = 10
    engine: EngineConfig = EngineConfig()
    slo: SloSpec = DEFAULT_SLO
    model_cache_bytes: int = 1280 * GiB  # two nodes x 640 GB
    cpu_kv_cache_bytes: int = 640 * GiB  # two nodes x 320 GB
    cpu_slab_bytes: int = 256 * 1024**2
    max_batch_size: int = 32
    drain_grace: float = 300.0  # extra sim time after the last arrival

    @property
    def gpus_needed(self) -> int:
        return (self.prefill_instances + self.decode_instances) * self.engine.tp


class AegaeonServer:
    """Aegaeon on a cluster: instances, schedulers, proxy."""

    def __init__(self, env: Environment, cluster: Cluster, config: AegaeonConfig = AegaeonConfig()):
        if config.gpus_needed > len(cluster.gpus):
            raise ValueError(
                f"config needs {config.gpus_needed} GPUs, cluster has {len(cluster.gpus)}"
            )
        self.env = env
        self.cluster = cluster
        self.config = config
        self.registry = StatusRegistry()
        self.model_cache = HostModelCache(config.model_cache_bytes)
        self.cpu_kv_cache = SlabAllocator(
            config.cpu_kv_cache_bytes, config.cpu_slab_bytes
        )
        self.move_list = MoveList()
        self.finished: list[Request] = []

        tp = config.engine.tp
        gpus = cluster.gpus
        self.prefill_instances: list[PrefillInstance] = []
        self.decode_instances: list[DecodeInstance] = []
        cursor = 0
        for index in range(config.prefill_instances):
            group = gpus[cursor : cursor + tp]
            cursor += tp
            engine = AegaeonEngine(
                env,
                cluster.node_of(group[0]),
                group,
                self.model_cache,
                self.cpu_kv_cache,
                move_list=self.move_list,
                config=config.engine,
                name=f"prefill{index}",
                pre_initialized=True,
            )
            self.prefill_instances.append(
                PrefillInstance(
                    env, engine, self._on_prefilled, name=f"prefill{index}"
                )
            )
        for index in range(config.decode_instances):
            group = gpus[cursor : cursor + tp]
            cursor += tp
            engine = AegaeonEngine(
                env,
                cluster.node_of(group[0]),
                group,
                self.model_cache,
                self.cpu_kv_cache,
                move_list=self.move_list,
                config=config.engine,
                name=f"decode{index}",
                pre_initialized=True,
            )
            self.decode_instances.append(
                DecodeInstance(
                    env,
                    engine,
                    config.slo,
                    self._on_finished,
                    name=f"decode{index}",
                    max_batch_size=config.max_batch_size,
                )
            )
        self.prefill_scheduler = GroupedPrefillScheduler(self.prefill_instances)
        self.decode_scheduler = BatchedDecodeScheduler(self.decode_instances)
        self.proxy = ProxyLayer(env, self._on_arrival, self.registry)

    # -- plumbing -----------------------------------------------------------
    def _on_arrival(self, request: Request) -> None:
        self.prefill_scheduler.dispatch(request)

    def _on_prefilled(self, request: Request) -> None:
        self.registry.update(request)
        self.decode_scheduler.dispatch(request)

    def _on_finished(self, request: Request) -> None:
        self.registry.update(request)
        self.finished.append(request)

    # -- operation -----------------------------------------------------------
    def warm(self, models: list[ModelSpec]) -> None:
        """Pre-populate the host model cache (the deployment steady state)."""
        tp = self.config.engine.tp
        for spec in models:
            self.model_cache.insert(spec.name, spec.weight_bytes // tp)

    def serve(self, trace: Trace, warm: bool = True) -> "ServingResult":
        """Replay ``trace`` to completion (or the drain deadline)."""
        if warm:
            self.warm(list(trace.models))
        self.env.process(self.proxy.replay(trace))
        deadline = trace.horizon + self.config.drain_grace

        def watchdog():
            while len(self.finished) < len(trace.requests):
                if self.env.now >= deadline:
                    return
                yield self.env.timeout(1.0)

        self.env.run(until=self.env.process(watchdog()))
        return self.collect(trace)

    def collect(self, trace: Trace) -> "ServingResult":
        """Assemble the result object from current state."""
        # Imported here to avoid a core <-> analysis import cycle.
        from ..analysis.metrics import ServingResult

        engines = [
            instance.engine
            for instance in [*self.prefill_instances, *self.decode_instances]
        ]
        return ServingResult(
            requests=list(self.proxy.requests),
            slo=self.config.slo,
            horizon=trace.horizon,
            end_time=self.env.now,
            scale_records=[
                record for engine in engines for record in engine.scale_history
            ],
            transfer_stats=[engine.kv.stats for engine in engines],
            gpu_count=self.config.gpus_needed,
            label="Aegaeon",
        )

    # -- variants -----------------------------------------------------------
    @classmethod
    def paper_testbed(
        cls,
        env: Environment,
        slo: SloSpec = DEFAULT_SLO,
        engine: EngineConfig = EngineConfig(),
    ) -> "AegaeonServer":
        """The §7.2 configuration: 16 H800s, 6 prefill + 10 decode."""
        cluster = Cluster.testbed(env)
        config = AegaeonConfig(
            prefill_instances=6, decode_instances=10, engine=engine, slo=slo
        )
        return cls(env, cluster, config)

    @classmethod
    def a10_testbed(cls, env: Environment, slo: SloSpec = DEFAULT_SLO) -> "AegaeonServer":
        """The §7.4 low-end setup: 4 A10s, 2 prefill + 2 decode, no prefetch."""
        cluster = Cluster.a10_node(env)
        engine = EngineConfig(
            prefetch=False, weight_buffer_bytes=16 * GiB
        )
        config = AegaeonConfig(
            prefill_instances=2,
            decode_instances=2,
            engine=engine,
            slo=slo,
            model_cache_bytes=256 * GiB,
            cpu_kv_cache_bytes=128 * GiB,
        )
        return cls(env, cluster, config)

    @classmethod
    def tp4_testbed(cls, env: Environment, slo: SloSpec = DEFAULT_SLO) -> "AegaeonServer":
        """The §7.4 large-model setup: 8 H800s, TP=4, 1 prefill + 1 decode."""
        cluster = Cluster.h800_node(env)
        engine = EngineConfig(tp=4, weight_buffer_bytes=48 * GiB)
        config = AegaeonConfig(
            prefill_instances=1, decode_instances=1, engine=engine, slo=slo
        )
        return cls(env, cluster, config)
