"""The Aegaeon serving system (Figure 5), assembled end to end.

:class:`AegaeonServer` wires the whole stack together on a simulated
cluster: per-node host caches, prefill/decoding engines and instances,
the two token-level schedulers, and the proxy layer.  It speaks the same
:class:`~repro.core.serving.ServingSystem` protocol as every baseline —
``serve(trace)`` replays a workload and returns a
:class:`~repro.analysis.metrics.ServingResult` — and threads one
:class:`~repro.obs.Observability` through every component it builds.

One simplification versus the production deployment: the unified CPU KV
cache and the model cache are cluster-wide objects rather than per-node
(the paper moves KV between nodes through the network via the proxy
tier; collapsing that tier does not change any scheduling decision —
see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.engine import AegaeonEngine, EngineConfig
from ..engine.request import Phase, Request
from ..hardware.cluster import Cluster
from ..memory.model_cache import HostModelCache
from ..memory.slab import SlabAllocator
from typing import Optional

from ..models.catalog import ModelSpec
from ..obs import ObsConfig
from ..policy.base import PolicyBundle
from ..policy.tunables import DEFAULT_TUNABLES
from ..sim import Environment
from ..transfer.kv_transfer import MoveList
from ..workload.trace import Trace
from .decode_sched import BatchedDecodeScheduler
from .instance import DecodeInstance, PrefillInstance
from .prefill_sched import GroupedPrefillScheduler
from .serving import ServingSystemBase
from .slo import DEFAULT_SLO, SloSpec

__all__ = ["AegaeonConfig", "AegaeonServer"]

GiB = 1024**3

# Grace period before a failed instance's orphans are requeued — the
# timeout half of timeout-and-requeue (the proxy tier would take this
# long to notice the instance stopped heartbeating).  Canonically
# ``Tunables.orphan_requeue_delay``; alias kept for old imports.
ORPHAN_REQUEUE_DELAY = DEFAULT_TUNABLES.orphan_requeue_delay


@dataclass(frozen=True)
class AegaeonConfig:
    """Deployment shape, engine features, and observability for one pool."""

    prefill_instances: int = 6
    decode_instances: int = 10
    engine: EngineConfig = EngineConfig()
    slo: SloSpec = DEFAULT_SLO
    model_cache_bytes: int = 1280 * GiB  # two nodes x 640 GB
    cpu_kv_cache_bytes: int = 640 * GiB  # two nodes x 320 GB
    cpu_slab_bytes: int = 256 * 1024**2
    max_batch_size: int = 32
    drain_grace: float = 300.0  # extra sim time after the last arrival
    cluster: str = "testbed"  # preset used by build_system()
    obs: ObsConfig = field(default_factory=ObsConfig)
    policies: Optional[str] = None  # bundle name; None = "aegaeon"

    @property
    def gpus_needed(self) -> int:
        """GPUs this deployment shape occupies."""
        return (self.prefill_instances + self.decode_instances) * self.engine.tp


class AegaeonServer(ServingSystemBase):
    """Aegaeon on a cluster: instances, schedulers, proxy."""

    label = "Aegaeon"
    default_policies = "aegaeon"

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        config: AegaeonConfig = AegaeonConfig(),
        policies: Optional[PolicyBundle | str] = None,
    ):
        if config.gpus_needed > len(cluster.gpus):
            raise ValueError(
                f"config needs {config.gpus_needed} GPUs, cluster has {len(cluster.gpus)}"
            )
        super().__init__(
            env, slo=config.slo, drain_grace=config.drain_grace, obs=config.obs,
            policies=policies if policies is not None else config.policies,
        )
        self.cluster = cluster
        self.config = config
        self.gpu_count = config.gpus_needed
        self._warm_on_prepare = True
        self.model_cache = HostModelCache(
            config.model_cache_bytes, name="model_cache", obs=self.obs
        )
        self.cpu_kv_cache = SlabAllocator(
            config.cpu_kv_cache_bytes, config.cpu_slab_bytes,
            name="cpu_kv", obs=self.obs,
        )
        self.move_list = MoveList()

        tp = config.engine.tp
        bundle = self.policies
        tunables = bundle.tunables
        # The placement policy owns the GPU → pool assignment (the
        # default cursor is contiguous TP groups, prefill first).
        prefill_groups, decode_groups = bundle.placement.partition(
            cluster.gpus, tp, config.prefill_instances, config.decode_instances
        )
        self.prefill_instances: list[PrefillInstance] = []
        self.decode_instances: list[DecodeInstance] = []
        for index, group in enumerate(prefill_groups):
            engine = AegaeonEngine(
                env,
                cluster.node_of(group[0]),
                group,
                self.model_cache,
                self.cpu_kv_cache,
                move_list=self.move_list,
                config=config.engine,
                name=f"prefill{index}",
                pre_initialized=True,
                obs=self.obs,
            )
            self.prefill_instances.append(
                PrefillInstance(
                    env, engine, self._on_prefilled, name=f"prefill{index}",
                    on_failed=self.note_failed, obs=self.obs,
                    scaling=bundle.scaling, tunables=tunables,
                )
            )
        for index, group in enumerate(decode_groups):
            engine = AegaeonEngine(
                env,
                cluster.node_of(group[0]),
                group,
                self.model_cache,
                self.cpu_kv_cache,
                move_list=self.move_list,
                config=config.engine,
                name=f"decode{index}",
                pre_initialized=True,
                obs=self.obs,
            )
            self.decode_instances.append(
                DecodeInstance(
                    env,
                    engine,
                    config.slo,
                    self.note_finished,
                    name=f"decode{index}",
                    max_batch_size=config.max_batch_size,
                    on_failed=self.note_failed,
                    obs=self.obs,
                    turn_policy=bundle.decode_turn,
                    scaling=bundle.scaling,
                    tunables=tunables,
                )
            )
        # The schedulers copy the pool lists into their own dispatch
        # views: a failed instance leaves the dispatch view but stays in
        # the pool lists, so engines()/statistics keep covering it.
        self.prefill_scheduler = GroupedPrefillScheduler(
            self.prefill_instances,
            max_group_size=tunables.max_prefill_group,
            obs=self.obs,
            policy=bundle.dispatch,
        )
        self.decode_scheduler = BatchedDecodeScheduler(
            self.decode_instances, obs=self.obs, policy=bundle.dispatch
        )
        # Loader retry/backoff are bundle tunables too.
        for instance in [*self.prefill_instances, *self.decode_instances]:
            loader = instance.engine.quick_loader
            loader.max_fetch_retries = tunables.fetch_max_retries
            loader.fetch_backoff_base = tunables.fetch_backoff_base
        self._orphan_requeue_delay = tunables.orphan_requeue_delay
        self.instance_failures = 0
        self.orphans_requeued = 0
        scope = self.obs.scoped("server")
        self._failures_counter = scope.counter("instance_failures")
        self._requeue_counter = scope.counter("orphans_requeued")

    # -- plumbing -----------------------------------------------------------
    def admission_pressure(self) -> float:
        """Least-loaded prefill backlog, in seconds of estimated work.

        This is what a fresh arrival would wait before its prefill even
        starts; SLO-aware admission compares it against the TTFT budget.
        An empty dispatch view (every prefill instance failed) reads as
        infinite pressure.
        """
        scheduler = self.prefill_scheduler
        if not scheduler.instances:
            return float("inf")
        return min(
            scheduler.estimate_load(instance) for instance in scheduler.instances
        )

    def dispatch(self, request: Request) -> None:
        """Route one arriving request into the prefill phase."""
        try:
            self.prefill_scheduler.dispatch(request)
        except LookupError:
            # Every prefill instance is gone: shed load at admission.
            self.note_rejected(request)

    def _on_prefilled(self, request: Request) -> None:
        self.registry.update(request)
        try:
            self.decode_scheduler.dispatch(request)
        except LookupError:
            # No decode pool left; the prefilled KV cannot be consumed.
            engine = self.prefill_instances[0].engine if self.prefill_instances else None
            if request.kv is not None and engine is not None:
                engine.kv.abort_request(request.kv)
                request.kv = None
            self.note_failed(request)

    def engines(self) -> list[AegaeonEngine]:
        """Every engine in the pool, prefill partition first."""
        return [
            instance.engine
            for instance in [*self.prefill_instances, *self.decode_instances]
        ]

    # -- degraded mode -------------------------------------------------------
    def fail_instance(self, name: str) -> None:
        """Take one named instance (its TP group of GPUs) offline.

        The instance leaves its scheduler's dispatch list immediately;
        its orphaned requests are requeued after a short grace period
        (timeout-and-requeue).  The instance object stays in the pool
        lists so per-engine statistics survive the failure.

        Raises ``KeyError`` for an unknown instance name.
        """
        for instance in [*self.prefill_instances, *self.decode_instances]:
            if instance.name == name:
                break
        else:
            raise KeyError(f"no instance named {name!r}")
        orphans = instance.fail()
        if instance in self.prefill_scheduler.instances:
            self.prefill_scheduler.instances.remove(instance)
        if instance in self.decode_scheduler.instances:
            self.decode_scheduler.instances.remove(instance)
        self.instance_failures += 1
        self._failures_counter.inc()
        self.obs.tracer.instant(
            "instance_failure", cat="chaos", track="server",
            instance=name, orphans=len(orphans),
        )
        if orphans:
            self.env.process(self._requeue_orphans(instance, orphans))

    def _requeue_orphans(self, instance, orphans: list[Request]):
        """Process: reschedule a dead instance's requests after a grace."""
        yield self.env.timeout(self._orphan_requeue_delay)
        for request in orphans:
            self._reschedule(instance, request)

    def _reschedule(self, instance, request: Request) -> None:
        """Route one orphaned request back into the pipeline.

        A request whose KV sits in the shared CPU cache rejoins decoding
        directly; anything else lost its KV with the device and restarts
        from prefill.
        """
        kv = request.kv
        if kv is not None and kv.location == "cpu":
            try:
                self.decode_scheduler.dispatch(request)
            except LookupError:
                instance.engine.kv.abort_request(kv)
                request.kv = None
                self.note_failed(request)
                return
            self.orphans_requeued += 1
            self._requeue_counter.inc()
            return
        if kv is not None:
            instance.engine.kv.abort_request(kv)
            request.kv = None
        request.reset_progress()
        request.phase = Phase.QUEUED
        request.prefill_start = None
        request.prefill_end = None
        request.decode_enqueue = None
        request.decode_exec_time = 0.0
        self.registry.update(request)
        try:
            self.prefill_scheduler.dispatch(request)
        except LookupError:
            self.note_failed(request)
            return
        self.orphans_requeued += 1
        self._requeue_counter.inc()

    # -- operation -----------------------------------------------------------
    def warm(self, models: list[ModelSpec]) -> None:
        """Pre-populate the host model cache (the deployment steady state)."""
        tp = self.config.engine.tp
        for spec in models:
            self.model_cache.insert(spec.name, spec.weight_bytes // tp)

    def prepare(self, trace: Trace) -> None:
        """Warm the model cache unless ``serve(..., warm=False)`` asked not to."""
        if self._warm_on_prepare:
            self.warm(list(trace.models))

    def serve(self, trace: Trace, warm: bool = True, until: float | None = None) -> "ServingResult":
        """Replay ``trace`` to completion (or the drain deadline)."""
        self._warm_on_prepare = warm
        return super().serve(trace, until=until)

    # -- variants -----------------------------------------------------------
    @classmethod
    def paper_testbed(
        cls,
        env: Environment,
        slo: SloSpec = DEFAULT_SLO,
        engine: EngineConfig = EngineConfig(),
        obs: ObsConfig = ObsConfig(),
    ) -> "AegaeonServer":
        """The §7.2 configuration: 16 H800s, 6 prefill + 10 decode."""
        cluster = Cluster.testbed(env)
        config = AegaeonConfig(
            prefill_instances=6, decode_instances=10, engine=engine, slo=slo, obs=obs
        )
        return cls(env, cluster, config)

    @classmethod
    def a10_testbed(cls, env: Environment, slo: SloSpec = DEFAULT_SLO) -> "AegaeonServer":
        """The §7.4 low-end setup: 4 A10s, 2 prefill + 2 decode, no prefetch."""
        cluster = Cluster.a10_node(env)
        engine = EngineConfig(
            prefetch=False, weight_buffer_bytes=16 * GiB
        )
        config = AegaeonConfig(
            prefill_instances=2,
            decode_instances=2,
            engine=engine,
            slo=slo,
            model_cache_bytes=256 * GiB,
            cpu_kv_cache_bytes=128 * GiB,
            cluster="a10",
        )
        return cls(env, cluster, config)

    @classmethod
    def tp4_testbed(cls, env: Environment, slo: SloSpec = DEFAULT_SLO) -> "AegaeonServer":
        """The §7.4 large-model setup: 8 H800s, TP=4, 1 prefill + 1 decode."""
        cluster = Cluster.h800_node(env)
        engine = EngineConfig(tp=4, weight_buffer_bytes=48 * GiB)
        config = AegaeonConfig(
            prefill_instances=1, decode_instances=1, engine=engine, slo=slo,
            cluster="h800-node",
        )
        return cls(env, cluster, config)
