"""The Aegaeon serving system (Figure 5), assembled end to end.

:class:`AegaeonServer` wires the whole stack together on a simulated
cluster: per-node host caches, prefill/decoding engines and instances,
the two token-level schedulers, and the proxy layer.  It speaks the same
:class:`~repro.core.serving.ServingSystem` protocol as every baseline —
``serve(trace)`` replays a workload and returns a
:class:`~repro.analysis.metrics.ServingResult` — and threads one
:class:`~repro.obs.Observability` through every component it builds.

One simplification versus the production deployment: the unified CPU KV
cache and the model cache are cluster-wide objects rather than per-node
(the paper moves KV between nodes through the network via the proxy
tier; collapsing that tier does not change any scheduling decision —
see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.engine import AegaeonEngine, EngineConfig
from ..engine.request import Request
from ..hardware.cluster import Cluster
from ..memory.model_cache import HostModelCache
from ..memory.slab import SlabAllocator
from ..models.catalog import ModelSpec
from ..obs import ObsConfig
from ..sim import Environment
from ..transfer.kv_transfer import MoveList
from ..workload.trace import Trace
from .decode_sched import BatchedDecodeScheduler
from .instance import DecodeInstance, PrefillInstance
from .prefill_sched import GroupedPrefillScheduler
from .serving import ServingSystemBase
from .slo import DEFAULT_SLO, SloSpec

__all__ = ["AegaeonConfig", "AegaeonServer"]

GiB = 1024**3


@dataclass(frozen=True)
class AegaeonConfig:
    """Deployment shape, engine features, and observability for one pool."""

    prefill_instances: int = 6
    decode_instances: int = 10
    engine: EngineConfig = EngineConfig()
    slo: SloSpec = DEFAULT_SLO
    model_cache_bytes: int = 1280 * GiB  # two nodes x 640 GB
    cpu_kv_cache_bytes: int = 640 * GiB  # two nodes x 320 GB
    cpu_slab_bytes: int = 256 * 1024**2
    max_batch_size: int = 32
    drain_grace: float = 300.0  # extra sim time after the last arrival
    cluster: str = "testbed"  # preset used by build_system()
    obs: ObsConfig = field(default_factory=ObsConfig)

    @property
    def gpus_needed(self) -> int:
        """GPUs this deployment shape occupies."""
        return (self.prefill_instances + self.decode_instances) * self.engine.tp


class AegaeonServer(ServingSystemBase):
    """Aegaeon on a cluster: instances, schedulers, proxy."""

    label = "Aegaeon"

    def __init__(self, env: Environment, cluster: Cluster, config: AegaeonConfig = AegaeonConfig()):
        if config.gpus_needed > len(cluster.gpus):
            raise ValueError(
                f"config needs {config.gpus_needed} GPUs, cluster has {len(cluster.gpus)}"
            )
        super().__init__(
            env, slo=config.slo, drain_grace=config.drain_grace, obs=config.obs
        )
        self.cluster = cluster
        self.config = config
        self.gpu_count = config.gpus_needed
        self._warm_on_prepare = True
        self.model_cache = HostModelCache(
            config.model_cache_bytes, name="model_cache", obs=self.obs
        )
        self.cpu_kv_cache = SlabAllocator(
            config.cpu_kv_cache_bytes, config.cpu_slab_bytes,
            name="cpu_kv", obs=self.obs,
        )
        self.move_list = MoveList()

        tp = config.engine.tp
        gpus = cluster.gpus
        self.prefill_instances: list[PrefillInstance] = []
        self.decode_instances: list[DecodeInstance] = []
        cursor = 0
        for index in range(config.prefill_instances):
            group = gpus[cursor : cursor + tp]
            cursor += tp
            engine = AegaeonEngine(
                env,
                cluster.node_of(group[0]),
                group,
                self.model_cache,
                self.cpu_kv_cache,
                move_list=self.move_list,
                config=config.engine,
                name=f"prefill{index}",
                pre_initialized=True,
                obs=self.obs,
            )
            self.prefill_instances.append(
                PrefillInstance(
                    env, engine, self._on_prefilled, name=f"prefill{index}",
                    obs=self.obs,
                )
            )
        for index in range(config.decode_instances):
            group = gpus[cursor : cursor + tp]
            cursor += tp
            engine = AegaeonEngine(
                env,
                cluster.node_of(group[0]),
                group,
                self.model_cache,
                self.cpu_kv_cache,
                move_list=self.move_list,
                config=config.engine,
                name=f"decode{index}",
                pre_initialized=True,
                obs=self.obs,
            )
            self.decode_instances.append(
                DecodeInstance(
                    env,
                    engine,
                    config.slo,
                    self.note_finished,
                    name=f"decode{index}",
                    max_batch_size=config.max_batch_size,
                    obs=self.obs,
                )
            )
        self.prefill_scheduler = GroupedPrefillScheduler(
            self.prefill_instances, obs=self.obs
        )
        self.decode_scheduler = BatchedDecodeScheduler(
            self.decode_instances, obs=self.obs
        )

    # -- plumbing -----------------------------------------------------------
    def dispatch(self, request: Request) -> None:
        """Route one arriving request into the prefill phase."""
        self.prefill_scheduler.dispatch(request)

    def _on_prefilled(self, request: Request) -> None:
        self.registry.update(request)
        self.decode_scheduler.dispatch(request)

    def engines(self) -> list[AegaeonEngine]:
        """Every engine in the pool, prefill partition first."""
        return [
            instance.engine
            for instance in [*self.prefill_instances, *self.decode_instances]
        ]

    # -- operation -----------------------------------------------------------
    def warm(self, models: list[ModelSpec]) -> None:
        """Pre-populate the host model cache (the deployment steady state)."""
        tp = self.config.engine.tp
        for spec in models:
            self.model_cache.insert(spec.name, spec.weight_bytes // tp)

    def prepare(self, trace: Trace) -> None:
        """Warm the model cache unless ``serve(..., warm=False)`` asked not to."""
        if self._warm_on_prepare:
            self.warm(list(trace.models))

    def serve(self, trace: Trace, warm: bool = True, until: float | None = None) -> "ServingResult":
        """Replay ``trace`` to completion (or the drain deadline)."""
        self._warm_on_prepare = warm
        return super().serve(trace, until=until)

    # -- variants -----------------------------------------------------------
    @classmethod
    def paper_testbed(
        cls,
        env: Environment,
        slo: SloSpec = DEFAULT_SLO,
        engine: EngineConfig = EngineConfig(),
        obs: ObsConfig = ObsConfig(),
    ) -> "AegaeonServer":
        """The §7.2 configuration: 16 H800s, 6 prefill + 10 decode."""
        cluster = Cluster.testbed(env)
        config = AegaeonConfig(
            prefill_instances=6, decode_instances=10, engine=engine, slo=slo, obs=obs
        )
        return cls(env, cluster, config)

    @classmethod
    def a10_testbed(cls, env: Environment, slo: SloSpec = DEFAULT_SLO) -> "AegaeonServer":
        """The §7.4 low-end setup: 4 A10s, 2 prefill + 2 decode, no prefetch."""
        cluster = Cluster.a10_node(env)
        engine = EngineConfig(
            prefetch=False, weight_buffer_bytes=16 * GiB
        )
        config = AegaeonConfig(
            prefill_instances=2,
            decode_instances=2,
            engine=engine,
            slo=slo,
            model_cache_bytes=256 * GiB,
            cpu_kv_cache_bytes=128 * GiB,
            cluster="a10",
        )
        return cls(env, cluster, config)

    @classmethod
    def tp4_testbed(cls, env: Environment, slo: SloSpec = DEFAULT_SLO) -> "AegaeonServer":
        """The §7.4 large-model setup: 8 H800s, TP=4, 1 prefill + 1 decode."""
        cluster = Cluster.h800_node(env)
        engine = EngineConfig(tp=4, weight_buffer_bytes=48 * GiB)
        config = AegaeonConfig(
            prefill_instances=1, decode_instances=1, engine=engine, slo=slo,
            cluster="h800-node",
        )
        return cls(env, cluster, config)
