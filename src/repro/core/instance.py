"""Prefill and decoding instances (§4.1 disaggregation, Figure 6(c)).

Aegaeon splits its GPU pool into a prefill partition and a decoding
partition.  Each instance is one engine (a TP group of GPUs) driven by a
continuation task (:class:`~repro.sim.ContTask`) on the kernel:

* :class:`PrefillInstance` executes grouped prefill jobs front-to-back
  (Algorithm 1's execution side), scaling the engine between groups and
  offloading finished prompts' KV to the unified CPU cache.
* :class:`DecodeInstance` rotates its work list in weighted round-robin
  turns (Algorithm 2's execution side), swapping KV in/out around each
  turn and prefetching the next model during the current turn.

The *decisions* both loops make — when to preempt the resident model,
how to order a round, how big each turn's quota is — are delegated to a
bundle's :class:`~repro.policy.ScalingPolicy` and
:class:`~repro.policy.DecodeTurnPolicy`; the defaults reproduce the
pre-policy-layer behaviour exactly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from ..engine.engine import AegaeonEngine
from ..engine.request import Phase, Request
from ..models.catalog import ModelSpec
from ..models.kv import kv_shape
from ..obs import NULL_OBS, Observability
from ..policy.base import DecodeTurnPolicy, ScalingPolicy, policy_event
from ..policy.decode_turn import WeightedRoundPolicy
from ..policy.scaling import TokenLevelScaling
from ..policy.tunables import DEFAULT_TUNABLES, Tunables
from ..sim import ContTask, Environment, Event, Interrupt
from ..transfer.kv_transfer import RequestKv
from ..transfer.loader import CheckpointFetchError
from .decode_sched import DecodeBatch
from .prefill_sched import PrefillGroup
from .slo import SloSpec

__all__ = ["PrefillInstance", "DecodeInstance"]

# Decode chunking: token timestamps within a chunk are computed
# arithmetically; the chunk size bounds how stale the batch composition
# can get (finished/grown requests are reconciled at chunk boundaries).
DECODE_CHUNK_STEPS = 16
# Retry pacing for transient KV-cache pressure.  Canonically
# ``Tunables.alloc_retry_delay``; alias kept for old imports.
ALLOC_RETRY_DELAY = DEFAULT_TUNABLES.alloc_retry_delay


class PrefillInstance:
    """One prefill engine plus its grouped job queue."""

    def __init__(
        self,
        env: Environment,
        engine: AegaeonEngine,
        on_prefilled: Callable[[Request], None],
        name: str = "prefill",
        on_failed: Optional[Callable[[Request], None]] = None,
        obs: Observability = NULL_OBS,
        scaling: Optional[ScalingPolicy] = None,
        tunables: Tunables = DEFAULT_TUNABLES,
    ):
        self.env = env
        self.engine = engine
        self.on_prefilled = on_prefilled
        self.on_failed = on_failed
        self.fetch_aborts = 0
        self.name = name
        self.groups: list[PrefillGroup] = []
        self.dead = False
        self.scaling: ScalingPolicy = scaling if scaling is not None else TokenLevelScaling()
        self._alloc_retry_delay = tunables.alloc_retry_delay
        self._inflight: Optional[Request] = None
        self._wake: Optional[Event] = None
        self._tracer = obs.tracer
        if obs.enabled:
            obs.scoped(name).gauge("queued_requests").set_fn(
                lambda: sum(len(group.requests) for group in self.groups)
            )
        self.process = _PrefillTask(env, self)

    # -- scheduler interface (PrefillInstanceLike) ---------------------------
    def current_model(self) -> Optional[ModelSpec]:
        """The model currently resident on this instance's engine."""
        return self.engine.current_model

    def estimate_group_time(
        self, group: PrefillGroup, previous: Optional[ModelSpec]
    ) -> float:
        """Execution + auto-scaling estimate for one queued group."""
        latency = self.engine.latency_model(group.spec)
        requests = group.requests
        if len(requests) >= 8:
            # One vectorized Eq. 5 pass; accumulate in Python order so the
            # total is byte-identical to the scalar sum it replaces.
            execution = 0.0
            for value in latency.prefill_time_batch(
                [request.input_tokens for request in requests]
            ).tolist():
                execution += value
        else:
            execution = sum(
                latency.prefill_time_single(request.input_tokens)
                for request in requests
            )
        switch = 0.0
        if previous is None or previous.name != group.spec.name:
            switch = self.engine.estimate_switch_time(group.spec)
        return execution + switch

    def kick(self) -> None:
        """Wake the instance loop after new work arrives."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def fail(self) -> list[Request]:
        """Take this instance offline (its GPUs died); returns orphans.

        The in-flight job and every queued request are harvested for the
        server to reschedule; the driver process is interrupted at its
        current wait.  Stream ops already issued complete harmlessly —
        the failure granularity is the host-visible job, not the DMA.
        """
        if self.dead:
            return []
        self.dead = True
        orphans: list[Request] = []
        if self._inflight is not None:
            orphans.append(self._inflight)
            self._inflight = None
        for group in self.groups:
            orphans.extend(group.requests)
            group.requests.clear()
        self.groups.clear()
        for gpu in self.engine.gpus:
            gpu.healthy = False
        if self.process.is_alive and self.process.target is not None:
            self.process.interrupt("instance failure")
        return orphans

    def _prefetch_next(self, current: ModelSpec) -> None:
        for group in self.groups:
            if group.spec.name != current.name and not group.exhausted:
                self.engine.prefetch(group.spec)
                return


class _PrefillTask(ContTask):
    """Algorithm 1's execution loop as a continuation state machine.

    Event-for-event identical to the generator loop it replaces: the
    sleep park, scale/prefill/drain sub-generators (driven through the
    :class:`~repro.sim.ContTask` bridge), and the alloc/swap retry
    timeouts all consume the same kernel events in the same order.  The
    single-timeout prefill execution is inlined when the tracer is off,
    so the hottest wake pays one state-function call instead of a
    ``generator.send`` through two frames.
    """

    __slots__ = ("_inst", "_spec", "_request", "_span", "_duration")

    def __init__(self, env: Environment, inst: "PrefillInstance") -> None:
        self._inst = inst
        self._spec = None
        self._request = None
        self._span = None
        self._duration = 0.0
        ContTask.__init__(self, env)

    def _start(self, value: object) -> Event:
        return self._main()

    def _main(self) -> Event:
        inst = self._inst
        while True:
            if not inst.groups:
                inst._wake = self.env.event()
                self._send = self._woken
                return inst._wake
            group = inst.groups[0]
            if group.exhausted:
                inst.groups.pop(0)
                continue
            request = group.requests.popleft()
            inst._inflight = request
            self._spec = group.spec
            self._request = request
            return self._begin_job()

    def _woken(self, value: object) -> Event:
        self._inst._wake = None
        return self._main()

    def _begin_job(self) -> Event:
        inst = self._inst
        request = self._request
        spec = self._spec
        tracer = inst._tracer
        if tracer.enabled:
            self._span = tracer.span(
                "prefill_job", cat="lifecycle", track=inst.name,
                request_id=request.request_id, model=request.model,
            )
            self._span.__enter__()
        engine = inst.engine
        if inst.scaling.should_switch(engine, spec):
            current = engine.current_model
            policy_event(
                tracer, "scale", instance=inst.name, phase="prefill",
                model=spec.name, evicted=None if current is None else current.name,
            )
            # Look ahead: start prefetching the following group's model
            # while this scale-up runs its non-load stages.
            return self._run_gen(engine.scale_to(spec), self._after_scale)
        return self._after_scale(None)

    def _after_scale(self, value: object) -> Event:
        inst = self._inst
        request = self._request
        inst._prefetch_next(self._spec)
        # KV for the prompt; retried under transient cache pressure
        # (swap-outs free blocks asynchronously).
        request.kv = RequestKv(
            request_id=request.request_id,
            shape=kv_shape(request.spec, inst.engine.config.tp),
            tokens=request.input_tokens,
            block_tokens=inst.engine.config.block_tokens,
        )
        return self._alloc_kv()

    def _alloc_kv(self) -> Event:
        inst = self._inst
        try:
            inst.engine.kv.alloc_gpu(self._request.kv)
        except MemoryError:
            self._send = self._alloc_retry
            return self.env.timeout(inst._alloc_retry_delay)
        return self._start_prefill()

    def _alloc_retry(self, value: object) -> Event:
        return self._alloc_kv()

    def _start_prefill(self) -> Event:
        inst = self._inst
        engine = inst.engine
        request = self._request
        spec = self._spec
        request.phase = Phase.PREFILLING
        request.prefill_start = self.env.now
        if engine._tracer.enabled:
            return self._run_gen(
                engine.prefill(spec, [request.input_tokens]), self._after_prefill
            )
        # Tracer off: the prefill is one timeout; run it without the
        # engine's generator frame (same event, same busy accounting).
        engine._require_active(spec)
        duration = (
            engine.latency_model(spec).prefill_time([request.input_tokens])
            * engine.perf_factor
        )
        self._duration = duration
        self._send = self._prefill_done
        return self.env.timeout(duration)

    def _prefill_done(self, value: object) -> Event:
        self._inst.engine.busy_time += self._duration
        return self._after_prefill(None)

    def _after_prefill(self, value: object) -> Event:
        request = self._request
        now = self.env.now
        request.prefill_end = now
        request.record_tokens([now])  # the first output token
        return self._swap_out()

    def _swap_out(self) -> Event:
        # Offload the prompt KV to the unified CPU cache.  Under
        # fine-grained sync this overlaps with the next prefill; the
        # unoptimized path must drain before proceeding.
        inst = self._inst
        try:
            inst.engine.kv.swap_out(self._request.kv)
        except MemoryError:
            self._send = self._swap_retry
            return self.env.timeout(inst._alloc_retry_delay)
        if not inst.engine.config.fine_grained_sync:
            return self._run_gen(inst.engine.kv.drain(), self._job_done)
        return self._job_done(None)

    def _swap_retry(self, value: object) -> Event:
        return self._swap_out()

    def _job_done(self, value: object) -> Event:
        inst = self._inst
        request = self._request
        request.phase = Phase.DECODING
        request.decode_enqueue = self.env.now
        inst.on_prefilled(request)
        self._close_span()
        self._request = None
        self._spec = None
        inst._inflight = None
        return self._main()

    def _close_span(self) -> None:
        span = self._span
        if span is not None:
            self._span = None
            span.__exit__(None, None, None)

    def _on_throw(self, exc: BaseException) -> Event:
        # Mirrors the generator loop's unwinding: the job span closes as
        # the exception propagates, then the loop either exits quietly
        # (instance failure) or fails the wedged request and moves on.
        self._close_span()
        if isinstance(exc, Interrupt):
            raise StopIteration(None)
        if isinstance(exc, CheckpointFetchError):
            # Retry budget exhausted: the registry is persistently
            # unreachable for this model.  Fail the request rather
            # than wedging the whole queue behind it.
            inst = self._inst
            request = self._request
            inst.fetch_aborts += 1
            if request.kv is not None:
                inst.engine.kv.abort_request(request.kv)
                request.kv = None
            request.reset_progress()
            if inst.on_failed is not None:
                inst.on_failed(request)
            self._request = None
            self._spec = None
            inst._inflight = None
            return self._main()
        raise exc


class DecodeInstance:
    """One decoding engine plus its rotating work list."""

    def __init__(
        self,
        env: Environment,
        engine: AegaeonEngine,
        slo: SloSpec,
        on_finished: Callable[[Request], None],
        name: str = "decode",
        max_batch_size: int = 32,
        qmax: Optional[float] = None,
        on_failed: Optional[Callable[[Request], None]] = None,
        obs: Observability = NULL_OBS,
        turn_policy: Optional[DecodeTurnPolicy] = None,
        scaling: Optional[ScalingPolicy] = None,
        tunables: Tunables = DEFAULT_TUNABLES,
    ):
        self.env = env
        self.engine = engine
        self.slo = slo
        self.on_finished = on_finished
        self.on_failed = on_failed
        self.name = name
        self.max_batch_size = max_batch_size
        if qmax is not None and qmax != tunables.qmax:
            # The explicit ctor arg wins (ablation harness compatibility).
            tunables = replace(tunables, qmax=qmax)
        self._tunables = tunables
        self.turn_policy: DecodeTurnPolicy = (
            turn_policy if turn_policy is not None else WeightedRoundPolicy(tunables)
        )
        self.scaling: ScalingPolicy = scaling if scaling is not None else TokenLevelScaling()
        self._alloc_retry_delay = tunables.alloc_retry_delay
        self.work_list: list[DecodeBatch] = []
        self.dead = False
        self.fetch_aborts = 0
        self._wake: Optional[Event] = None
        self.rounds = 0
        self.turns = 0
        self._tracer = obs.tracer
        scope = obs.scoped(name)
        self._round_counter = scope.counter("rounds")
        self._turn_counter = scope.counter("turns")
        if obs.enabled:
            scope.gauge("work_list_batches").set_fn(lambda: len(self.work_list))
            scope.gauge("queued_requests").set_fn(
                lambda: sum(batch.size for batch in self.work_list)
            )
        self.process = _DecodeTask(env, self)

    @property
    def qmax(self) -> float:
        """The per-turn quota cap the turn policy currently applies."""
        return getattr(self.turn_policy, "qmax", self._tunables.qmax)

    @qmax.setter
    def qmax(self, value: float) -> None:
        # Ablation hook: rebuild the default turn policy around the new
        # cap (a custom policy set via the ctor is replaced on purpose).
        self._tunables = replace(self._tunables, qmax=value)
        self.turn_policy = WeightedRoundPolicy(self._tunables)

    # -- scheduler interface (DecodeInstanceLike) ---------------------------
    def batch_capacity(self, spec: ModelSpec) -> int:
        """Max batch size derived from the GPU KV capacity (Alg. 2, line 2)."""
        shape = kv_shape(spec, self.engine.config.tp)
        capacity_tokens = (
            self.engine.gpu_kv_cache.region_bytes // shape.bytes_per_token
        )
        # Leave headroom for context growth and a second batch in
        # flight; ShareGPT-like requests average ~1k context tokens.
        typical_context = 1024
        return max(1, min(self.max_batch_size, capacity_tokens // (2 * typical_context)))

    def kick(self) -> None:
        """Wake the instance loop after new work arrives."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def fail(self) -> list[Request]:
        """Take this instance offline (its GPUs died); returns orphans.

        Finished requests still sitting in a batch complete normally;
        every other request is harvested for the server to reschedule.
        """
        if self.dead:
            return []
        self.dead = True
        orphans: list[Request] = []
        for batch in self.work_list:
            for request in list(batch.requests):
                if request.finished:
                    if request.kv is not None and request.kv.location == "gpu":
                        self.engine.kv.free_gpu(request.kv)
                    request.complete(self.env.now)
                    self.on_finished(request)
                else:
                    orphans.append(request)
            batch.requests.clear()
        self.work_list.clear()
        for gpu in self.engine.gpus:
            gpu.healthy = False
        if self.process.is_alive and self.process.target is not None:
            self.process.interrupt("instance failure")
        return orphans

    def _issue_swap_in_async(self, batches: list[DecodeBatch], index: int) -> None:
        """Start the next non-empty batch's KV swap-in without waiting."""
        for other in batches[index + 1 :]:
            if other.exhausted:
                continue
            for request in other.requests:
                if request.kv is not None and request.kv.location == "cpu":
                    try:
                        self.engine.kv.swap_in(request.kv)
                    except MemoryError:
                        return  # cache pressure: its own turn will retry
            return

    def _distinct_models(self) -> int:
        return len({batch.spec.name for batch in self.work_list if not batch.exhausted})

    def _round_switch_cost(self, batches: list[DecodeBatch]) -> float:
        """``c``: the round's scaling overhead, per the scaling policy."""
        return self.scaling.round_switch_cost(self.engine, batches)

    def _prefetch_after(self, batch: DecodeBatch) -> None:
        """Prefetch the next distinct model while this turn decodes."""
        names = [b.spec.name for b in self.work_list]
        try:
            index = names.index(batch.spec.name)
        except ValueError:
            return
        for other in self.work_list[index + 1 :] + self.work_list[:index]:
            if other.spec.name != batch.spec.name and not other.exhausted:
                self.engine.prefetch(other.spec)
                return

    def _abort_batch(self, batch: DecodeBatch) -> None:
        """Fail every request in ``batch`` (checkpoint unreachable)."""
        for request in list(batch.requests):
            if request.kv is not None:
                self.engine.kv.abort_request(request.kv)
                request.kv = None
            if self.on_failed is not None:
                self.on_failed(request)
        batch.requests.clear()

    def _retire_finished(self, batch: DecodeBatch) -> None:
        finished = None
        for r in batch.requests:
            if r.generated_tokens >= r.output_tokens:
                if finished is None:
                    finished = []
                finished.append(r)
        if finished is None:
            return
        for request in finished:
            batch.requests.remove(request)
            if request.kv is not None and request.kv.location == "gpu":
                self.engine.kv.free_gpu(request.kv)
            request.complete(self.env.now)
            self.on_finished(request)

    def _prune(self) -> None:
        if any(b.exhausted for b in self.work_list):
            self.work_list[:] = [b for b in self.work_list if not b.exhausted]


class _DecodeTask(ContTask):
    """Algorithm 2's execution loop as a continuation state machine.

    The round/turn/chunk nesting of the old generator loop becomes flat
    state functions; the per-chunk decode timeout — the single hottest
    wake in the whole simulation — resumes directly into
    :meth:`_chunk_done` instead of unwinding four generator frames.
    Swap-in scans snapshot ``batch.requests`` while swap-out scans the
    live list by position, exactly like the ``for`` loops they replace
    (a Python list iterator is itself position-based), and each retry
    re-attempts the same request without re-checking its location.
    """

    __slots__ = (
        "_inst", "_batches", "_quotas", "_turn_index", "_cur_index",
        "_batch", "_quota", "_turn_start", "_round_span", "_turn_span",
        "_ready", "_chunk_steps", "_chunk_step", "_chunk_start",
        "_duration", "_stall_start", "_swap_list", "_swap_pos",
        "_swap_req", "_swap_cont",
    )

    def __init__(self, env: Environment, inst: "DecodeInstance") -> None:
        self._inst = inst
        self._batches = None
        self._quotas = None
        self._turn_index = 0
        self._cur_index = 0
        self._batch = None
        self._quota = 0.0
        self._turn_start = 0.0
        self._round_span = None
        self._turn_span = None
        self._ready = None
        self._chunk_steps = 0
        self._chunk_step = 0.0
        self._chunk_start = 0.0
        self._duration = 0.0
        self._stall_start = 0.0
        self._swap_list = None
        self._swap_pos = 0
        self._swap_req = None
        self._swap_cont = None
        ContTask.__init__(self, env)

    def _start(self, value: object) -> Event:
        return self._main()

    def _main(self) -> Event:
        inst = self._inst
        inst._prune()
        if not inst.work_list:
            inst._wake = self.env.event()
            self._send = self._woken
            return inst._wake
        return self._round_begin()

    def _woken(self, value: object) -> Event:
        self._inst._wake = None
        return self._main()

    # -- one full rotation of the work list (Algorithm 2, lines 4-11) ------
    def _round_begin(self) -> Event:
        inst = self._inst
        inst.rounds += 1
        inst._round_counter.inc()
        reordered = inst.turn_policy.order(inst.work_list)
        if reordered is not inst.work_list:
            inst.work_list[:] = reordered
        batches = list(inst.work_list)
        engine = inst.engine
        if len(batches) >= 4:
            # Vectorized Eq. 6 for the whole round: one numpy pass per
            # distinct model, scattered back into work-list order.
            step_times = [0.0] * len(batches)
            by_spec: dict[str, list[int]] = {}
            for index, batch in enumerate(batches):
                by_spec.setdefault(batch.spec.name, []).append(index)
            for indices in by_spec.values():
                spec = batches[indices[0]].spec
                times = engine.decode_time_batch(
                    spec,
                    [batches[i].size or 1 for i in indices],
                    [batches[i].context_tokens or 1 for i in indices],
                ).tolist()
                for i, value in zip(indices, times):
                    step_times[i] = value
        else:
            step_times = [
                engine.decode_step_time(
                    batch.spec, batch.size or 1, batch.context_tokens or 1
                )
                for batch in batches
            ]
        switch_cost = inst._round_switch_cost(batches)
        quotas = inst.turn_policy.quotas(batches, step_times, switch_cost, inst.slo)
        tracer = inst._tracer
        if tracer.enabled:
            self._round_span = tracer.span(
                "decode_round", cat="sched", track=inst.name, batches=len(batches)
            )
            self._round_span.__enter__()
        self._batches = batches
        self._quotas = quotas
        self._turn_index = 0
        return self._next_turn()

    def _next_turn(self) -> Event:
        inst = self._inst
        batches = self._batches
        quotas = self._quotas
        index = self._turn_index
        count = min(len(batches), len(quotas))  # zip() semantics
        while index < count:
            batch = batches[index]
            quota = quotas[index]
            self._turn_index = index + 1
            if batch.exhausted:
                index += 1
                continue
            inst.turns += 1
            inst._turn_counter.inc()
            tracer = inst._tracer
            if tracer.enabled:
                self._turn_span = tracer.span(
                    "decode_turn", cat="sched", track=inst.name,
                    model=batch.spec.name, quota=quota, batch=batch.size,
                )
                self._turn_span.__enter__()
            self._cur_index = index
            self._batch = batch
            self._quota = quota
            return self._turn_begin()
        self._close_round_span()
        self._batches = None
        self._quotas = None
        inst._prune()
        return self._main()

    # -- one weighted turn: scale, swap in, decode, swap out ---------------
    def _turn_begin(self) -> Event:
        inst = self._inst
        engine = inst.engine
        batch = self._batch
        if inst.scaling.should_switch(engine, batch.spec):
            current = engine.current_model
            policy_event(
                inst._tracer, "scale", instance=inst.name, phase="decode",
                model=batch.spec.name,
                evicted=None if current is None else current.name,
            )
            return self._run_gen(
                engine.scale_to(batch.spec), self._after_scale, self._scale_failed
            )
        return self._after_scale(None)

    def _scale_failed(self, exc: BaseException) -> Event:
        if isinstance(exc, CheckpointFetchError):
            # Persistently unreachable checkpoint: fail this model's
            # batch instead of wedging the rotation behind it.
            inst = self._inst
            inst.fetch_aborts += 1
            inst._abort_batch(self._batch)
            return self._end_turn()
        return self._on_throw(exc)

    def _after_scale(self, value: object) -> Event:
        inst = self._inst
        inst._prefetch_after(self._batch)
        return self._swap_in_start(self._after_swap_in)

    def _after_swap_in(self, value: object) -> Event:
        # Figure 10's overlap: while this turn decodes, the *next*
        # batch's KV streams in on the kv_in stream, guarded by
        # per-request events — by its turn, rule ❶ is already met.
        self._inst._issue_swap_in_async(self._batches, self._cur_index)
        self._turn_start = self.env.now
        return self._chunk_loop()

    # -- the decode chunk loop (old _decode_for) ---------------------------
    def _chunk_loop(self) -> Event:
        env = self.env
        inst = self._inst
        engine = inst.engine
        batch = self._batch
        quota = self._quota
        while env.now - self._turn_start < quota and not batch.exhausted:
            # One pass: requests that joined the batch mid-round still
            # sit in the CPU cache and must be pulled in before the turn
            # decodes (gathering is side-effect free, so bailing out
            # mid-scan is equivalent to the old separate cpu-scan); the
            # same pass gathers the ready set (rule ❶, inlined
            # ``ready_on_gpu``) plus the context total and the minimum
            # remaining tokens it implies.  This loop runs once per
            # decode chunk across every running batch.
            ready = []
            ready_append = ready.append
            context_total = 0
            min_remaining = 0
            for r in batch.requests:
                kv = r.kv
                if kv is None:
                    continue
                location = kv.location
                if location == "cpu":
                    return self._swap_in_start(self._chunk_resume)
                if location == "gpu":
                    transfer = kv.last_transfer
                    if (
                        transfer is None
                        or transfer.completed_at is not None
                        or not transfer.recorded
                    ):
                        ready_append(r)
                        generated = r.generated_tokens
                        context_total += r.input_tokens + generated
                        remaining = r.output_tokens - generated
                        if remaining < min_remaining or len(ready) == 1:
                            min_remaining = remaining
            if not ready:
                return self._stall_begin()
            step = engine.decode_step_time(batch.spec, len(ready), context_total)
            remaining_time = quota - (env.now - self._turn_start)
            steps = max(1, min(
                DECODE_CHUNK_STEPS,
                int(remaining_time // step) if step > 0 else DECODE_CHUNK_STEPS,
                min_remaining,
            ))
            self._ready = ready
            self._chunk_step = step
            self._chunk_steps = steps
            self._chunk_start = env.now
            duration = steps * step
            if engine._tracer.enabled:
                return self._run_gen(
                    engine.decode_for(batch.spec, duration), self._chunk_done
                )
            # Tracer off: the chunk is one timeout; skip the engine's
            # generator frame (same event, same busy accounting).
            engine._require_active(batch.spec)
            self._duration = duration
            self._send = self._chunk_done_fast
            return env.timeout(duration)
        return self._after_decode()

    def _chunk_resume(self, value: object) -> Event:
        return self._chunk_loop()

    def _chunk_done_fast(self, value: object) -> Event:
        self._inst.engine.busy_time += self._duration
        return self._chunk_done(None)

    def _chunk_done(self, value: object) -> Event:
        inst = self._inst
        engine = inst.engine
        steps = self._chunk_steps
        step = self._chunk_step
        chunk_start = self._chunk_start
        # One timestamp list shared across the batch: record_tokens
        # copies via extend(), so the shared list is never aliased.
        times = [chunk_start + (i + 1) * step for i in range(steps)]
        chunk_time = steps * step
        gpu_cache = engine.gpu_kv_cache
        for request in self._ready:
            request.record_tokens(times)
            request.decode_exec_time += chunk_time
            try:
                request.kv.grow(steps, gpu_cache)
            except MemoryError:
                # Cache pressure: demote this request until space frees.
                engine.kv.swap_out(request.kv)
        self._ready = None
        inst._retire_finished(self._batch)
        return self._chunk_loop()

    def _stall_begin(self) -> Event:
        """Rule ❶ stall: no request's KV is usable yet."""
        inst = self._inst
        batch = self._batch
        pending = [
            r.kv.last_transfer.wait()
            for r in batch.requests
            if r.kv is not None and r.kv.last_transfer is not None
            and not r.kv.last_transfer.query()
        ]
        self._stall_start = self.env.now
        self._send = self._stall_done
        if pending:
            return self.env.any_of(pending)
        return self.env.timeout(inst._alloc_retry_delay)

    def _stall_done(self, value: object) -> Event:
        inst = self._inst
        batch = self._batch
        if batch.requests:
            inst.engine.kv.stats.charge_wait(
                batch.requests[0].request_id, self.env.now - self._stall_start
            )
        return self._chunk_loop()

    def _after_decode(self) -> Event:
        inst = self._inst
        if inst._distinct_models() > 1:
            return self._swap_out_start(self._end_turn_cb)
        return self._end_turn()

    def _end_turn_cb(self, value: object) -> Event:
        return self._end_turn()

    def _end_turn(self) -> Event:
        self._close_turn_span()
        self._batch = None
        return self._next_turn()

    # -- swap-in over a snapshot of batch.requests -------------------------
    def _swap_in_start(self, cont: Callable[[object], Event]) -> Event:
        self._swap_list = list(self._batch.requests)
        self._swap_pos = 0
        self._swap_cont = cont
        return self._swap_in_step()

    def _swap_in_step(self) -> Event:
        inst = self._inst
        lst = self._swap_list
        pos = self._swap_pos
        while pos < len(lst):
            request = lst[pos]
            kv = request.kv
            if kv is not None and kv.location == "cpu":
                try:
                    inst.engine.kv.swap_in(kv)
                except MemoryError:
                    self._swap_pos = pos
                    self._swap_req = request
                    self._send = self._swap_in_retry
                    return self.env.timeout(inst._alloc_retry_delay)
            pos += 1
        self._swap_list = None
        if not inst.engine.config.fine_grained_sync:
            cont = self._swap_cont
            self._swap_cont = None
            return self._run_gen(inst.engine.kv.drain(), cont)
        cont = self._swap_cont
        self._swap_cont = None
        return cont(None)

    def _swap_in_retry(self, value: object) -> Event:
        inst = self._inst
        try:
            inst.engine.kv.swap_in(self._swap_req.kv)
        except MemoryError:
            return self.env.timeout(inst._alloc_retry_delay)
        self._swap_req = None
        self._swap_pos += 1
        return self._swap_in_step()

    # -- swap-out over the live batch.requests list ------------------------
    def _swap_out_start(self, cont: Callable[[object], Event]) -> Event:
        self._swap_pos = 0
        self._swap_cont = cont
        return self._swap_out_step()

    def _swap_out_step(self) -> Event:
        inst = self._inst
        lst = self._batch.requests
        pos = self._swap_pos
        while pos < len(lst):
            request = lst[pos]
            kv = request.kv
            if kv is not None and kv.location == "gpu":
                try:
                    inst.engine.kv.swap_out(kv)
                except MemoryError:
                    self._swap_pos = pos
                    self._swap_req = request
                    self._send = self._swap_out_retry
                    return self.env.timeout(inst._alloc_retry_delay)
            pos += 1
        if not inst.engine.config.fine_grained_sync:
            cont = self._swap_cont
            self._swap_cont = None
            return self._run_gen(inst.engine.kv.drain(), cont)
        cont = self._swap_cont
        self._swap_cont = None
        return cont(None)

    def _swap_out_retry(self, value: object) -> Event:
        inst = self._inst
        try:
            inst.engine.kv.swap_out(self._swap_req.kv)
        except MemoryError:
            return self.env.timeout(inst._alloc_retry_delay)
        self._swap_req = None
        self._swap_pos += 1
        return self._swap_out_step()

    # -- unwinding ---------------------------------------------------------
    def _close_turn_span(self) -> None:
        span = self._turn_span
        if span is not None:
            self._turn_span = None
            span.__exit__(None, None, None)

    def _close_round_span(self) -> None:
        span = self._round_span
        if span is not None:
            self._round_span = None
            span.__exit__(None, None, None)

    def _on_throw(self, exc: BaseException) -> Event:
        # Mirrors the with-block unwinding of the generator loop: open
        # spans close innermost-first, then the loop exits quietly on
        # instance failure or crashes the task like the old process.
        self._close_turn_span()
        self._close_round_span()
        if isinstance(exc, Interrupt):
            raise StopIteration(None)
        raise exc
