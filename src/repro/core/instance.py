"""Prefill and decoding instances (§4.1 disaggregation, Figure 6(c)).

Aegaeon splits its GPU pool into a prefill partition and a decoding
partition.  Each instance is one engine (a TP group of GPUs) driven by a
simulation process:

* :class:`PrefillInstance` executes grouped prefill jobs front-to-back
  (Algorithm 1's execution side), scaling the engine between groups and
  offloading finished prompts' KV to the unified CPU cache.
* :class:`DecodeInstance` rotates its work list in weighted round-robin
  turns (Algorithm 2's execution side), swapping KV in/out around each
  turn and prefetching the next model during the current turn.

The *decisions* both loops make — when to preempt the resident model,
how to order a round, how big each turn's quota is — are delegated to a
bundle's :class:`~repro.policy.ScalingPolicy` and
:class:`~repro.policy.DecodeTurnPolicy`; the defaults reproduce the
pre-policy-layer behaviour exactly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Generator, Optional

from ..engine.engine import AegaeonEngine
from ..engine.request import Phase, Request
from ..models.catalog import ModelSpec
from ..models.kv import kv_shape
from ..obs import NULL_OBS, Observability
from ..policy.base import DecodeTurnPolicy, ScalingPolicy, policy_event
from ..policy.decode_turn import WeightedRoundPolicy
from ..policy.scaling import TokenLevelScaling
from ..policy.tunables import DEFAULT_TUNABLES, Tunables
from ..sim import Environment, Event, Interrupt
from ..transfer.kv_transfer import RequestKv
from ..transfer.loader import CheckpointFetchError
from .decode_sched import DecodeBatch
from .prefill_sched import PrefillGroup
from .slo import SloSpec

__all__ = ["PrefillInstance", "DecodeInstance"]

# Decode chunking: token timestamps within a chunk are computed
# arithmetically; the chunk size bounds how stale the batch composition
# can get (finished/grown requests are reconciled at chunk boundaries).
DECODE_CHUNK_STEPS = 16
# Retry pacing for transient KV-cache pressure.  Canonically
# ``Tunables.alloc_retry_delay``; alias kept for old imports.
ALLOC_RETRY_DELAY = DEFAULT_TUNABLES.alloc_retry_delay


class PrefillInstance:
    """One prefill engine plus its grouped job queue."""

    def __init__(
        self,
        env: Environment,
        engine: AegaeonEngine,
        on_prefilled: Callable[[Request], None],
        name: str = "prefill",
        on_failed: Optional[Callable[[Request], None]] = None,
        obs: Observability = NULL_OBS,
        scaling: Optional[ScalingPolicy] = None,
        tunables: Tunables = DEFAULT_TUNABLES,
    ):
        self.env = env
        self.engine = engine
        self.on_prefilled = on_prefilled
        self.on_failed = on_failed
        self.fetch_aborts = 0
        self.name = name
        self.groups: list[PrefillGroup] = []
        self.dead = False
        self.scaling: ScalingPolicy = scaling if scaling is not None else TokenLevelScaling()
        self._alloc_retry_delay = tunables.alloc_retry_delay
        self._inflight: Optional[Request] = None
        self._wake: Optional[Event] = None
        self._tracer = obs.tracer
        if obs.enabled:
            obs.scoped(name).gauge("queued_requests").set_fn(
                lambda: sum(len(group.requests) for group in self.groups)
            )
        self.process = env.process(self._run())

    # -- scheduler interface (PrefillInstanceLike) ---------------------------
    def current_model(self) -> Optional[ModelSpec]:
        """The model currently resident on this instance's engine."""
        return self.engine.current_model

    def estimate_group_time(
        self, group: PrefillGroup, previous: Optional[ModelSpec]
    ) -> float:
        """Execution + auto-scaling estimate for one queued group."""
        latency = self.engine.latency_model(group.spec)
        requests = group.requests
        if len(requests) >= 8:
            # One vectorized Eq. 5 pass; accumulate in Python order so the
            # total is byte-identical to the scalar sum it replaces.
            execution = 0.0
            for value in latency.prefill_time_batch(
                [request.input_tokens for request in requests]
            ).tolist():
                execution += value
        else:
            execution = sum(
                latency.prefill_time_single(request.input_tokens)
                for request in requests
            )
        switch = 0.0
        if previous is None or previous.name != group.spec.name:
            switch = self.engine.estimate_switch_time(group.spec)
        return execution + switch

    def kick(self) -> None:
        """Wake the instance loop after new work arrives."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def fail(self) -> list[Request]:
        """Take this instance offline (its GPUs died); returns orphans.

        The in-flight job and every queued request are harvested for the
        server to reschedule; the driver process is interrupted at its
        current wait.  Stream ops already issued complete harmlessly —
        the failure granularity is the host-visible job, not the DMA.
        """
        if self.dead:
            return []
        self.dead = True
        orphans: list[Request] = []
        if self._inflight is not None:
            orphans.append(self._inflight)
            self._inflight = None
        for group in self.groups:
            orphans.extend(group.requests)
            group.requests.clear()
        self.groups.clear()
        for gpu in self.engine.gpus:
            gpu.healthy = False
        if self.process.is_alive and self.process.target is not None:
            self.process.interrupt("instance failure")
        return orphans

    # -- main loop -------------------------------------------------------------
    def _run(self) -> Generator:
        try:
            while True:
                if not self.groups:
                    yield from self._sleep()
                    continue
                group = self.groups[0]
                if group.exhausted:
                    self.groups.pop(0)
                    continue
                request = group.requests.popleft()
                self._inflight = request
                try:
                    yield from self._execute(group.spec, request)
                except CheckpointFetchError:
                    # Retry budget exhausted: the registry is persistently
                    # unreachable for this model.  Fail the request rather
                    # than wedging the whole queue behind it.
                    self.fetch_aborts += 1
                    if request.kv is not None:
                        self.engine.kv.abort_request(request.kv)
                        request.kv = None
                    request.reset_progress()
                    if self.on_failed is not None:
                        self.on_failed(request)
                self._inflight = None
        except Interrupt:
            return  # instance failure: fail() already harvested state

    def _sleep(self) -> Generator:
        self._wake = self.env.event()
        if not self.groups:
            yield self._wake
        self._wake = None

    def _execute(self, spec: ModelSpec, request: Request) -> Generator:
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span(
                "prefill_job", cat="lifecycle", track=self.name,
                request_id=request.request_id, model=request.model,
            ):
                yield from self._execute_inner(spec, request)
        else:
            yield from self._execute_inner(spec, request)

    def _execute_inner(self, spec: ModelSpec, request: Request) -> Generator:
        if self.scaling.should_switch(self.engine, spec):
            current = self.engine.current_model
            policy_event(
                self._tracer, "scale", instance=self.name, phase="prefill",
                model=spec.name, evicted=None if current is None else current.name,
            )
            # Look ahead: start prefetching the following group's model
            # while this scale-up runs its non-load stages.
            yield from self.engine.scale_to(spec)
        self._prefetch_next(spec)
        # KV for the prompt; retried under transient cache pressure
        # (swap-outs free blocks asynchronously).
        request.kv = RequestKv(
            request_id=request.request_id,
            shape=kv_shape(request.spec, self.engine.config.tp),
            tokens=request.input_tokens,
            block_tokens=self.engine.config.block_tokens,
        )
        while True:
            try:
                self.engine.kv.alloc_gpu(request.kv)
                break
            except MemoryError:
                yield self.env.timeout(self._alloc_retry_delay)
        request.phase = Phase.PREFILLING
        request.prefill_start = self.env.now
        yield from self.engine.prefill(spec, [request.input_tokens])
        request.prefill_end = self.env.now
        request.record_tokens([self.env.now])  # the first output token
        # Offload the prompt KV to the unified CPU cache.  Under
        # fine-grained sync this overlaps with the next prefill; the
        # unoptimized path must drain before proceeding.
        while True:
            try:
                self.engine.kv.swap_out(request.kv)
                break
            except MemoryError:
                yield self.env.timeout(self._alloc_retry_delay)
        if not self.engine.config.fine_grained_sync:
            yield from self.engine.kv.drain()
        request.phase = Phase.DECODING
        request.decode_enqueue = self.env.now
        self.on_prefilled(request)

    def _prefetch_next(self, current: ModelSpec) -> None:
        for group in self.groups:
            if group.spec.name != current.name and not group.exhausted:
                self.engine.prefetch(group.spec)
                return


class DecodeInstance:
    """One decoding engine plus its rotating work list."""

    def __init__(
        self,
        env: Environment,
        engine: AegaeonEngine,
        slo: SloSpec,
        on_finished: Callable[[Request], None],
        name: str = "decode",
        max_batch_size: int = 32,
        qmax: Optional[float] = None,
        on_failed: Optional[Callable[[Request], None]] = None,
        obs: Observability = NULL_OBS,
        turn_policy: Optional[DecodeTurnPolicy] = None,
        scaling: Optional[ScalingPolicy] = None,
        tunables: Tunables = DEFAULT_TUNABLES,
    ):
        self.env = env
        self.engine = engine
        self.slo = slo
        self.on_finished = on_finished
        self.on_failed = on_failed
        self.name = name
        self.max_batch_size = max_batch_size
        if qmax is not None and qmax != tunables.qmax:
            # The explicit ctor arg wins (ablation harness compatibility).
            tunables = replace(tunables, qmax=qmax)
        self._tunables = tunables
        self.turn_policy: DecodeTurnPolicy = (
            turn_policy if turn_policy is not None else WeightedRoundPolicy(tunables)
        )
        self.scaling: ScalingPolicy = scaling if scaling is not None else TokenLevelScaling()
        self._alloc_retry_delay = tunables.alloc_retry_delay
        self.work_list: list[DecodeBatch] = []
        self.dead = False
        self.fetch_aborts = 0
        self._wake: Optional[Event] = None
        self.rounds = 0
        self.turns = 0
        self._tracer = obs.tracer
        scope = obs.scoped(name)
        self._round_counter = scope.counter("rounds")
        self._turn_counter = scope.counter("turns")
        if obs.enabled:
            scope.gauge("work_list_batches").set_fn(lambda: len(self.work_list))
            scope.gauge("queued_requests").set_fn(
                lambda: sum(batch.size for batch in self.work_list)
            )
        self.process = env.process(self._run())

    @property
    def qmax(self) -> float:
        """The per-turn quota cap the turn policy currently applies."""
        return getattr(self.turn_policy, "qmax", self._tunables.qmax)

    @qmax.setter
    def qmax(self, value: float) -> None:
        # Ablation hook: rebuild the default turn policy around the new
        # cap (a custom policy set via the ctor is replaced on purpose).
        self._tunables = replace(self._tunables, qmax=value)
        self.turn_policy = WeightedRoundPolicy(self._tunables)

    # -- scheduler interface (DecodeInstanceLike) ---------------------------
    def batch_capacity(self, spec: ModelSpec) -> int:
        """Max batch size derived from the GPU KV capacity (Alg. 2, line 2)."""
        shape = kv_shape(spec, self.engine.config.tp)
        capacity_tokens = (
            self.engine.gpu_kv_cache.region_bytes // shape.bytes_per_token
        )
        # Leave headroom for context growth and a second batch in
        # flight; ShareGPT-like requests average ~1k context tokens.
        typical_context = 1024
        return max(1, min(self.max_batch_size, capacity_tokens // (2 * typical_context)))

    def kick(self) -> None:
        """Wake the instance loop after new work arrives."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def fail(self) -> list[Request]:
        """Take this instance offline (its GPUs died); returns orphans.

        Finished requests still sitting in a batch complete normally;
        every other request is harvested for the server to reschedule.
        """
        if self.dead:
            return []
        self.dead = True
        orphans: list[Request] = []
        for batch in self.work_list:
            for request in list(batch.requests):
                if request.finished:
                    if request.kv is not None and request.kv.location == "gpu":
                        self.engine.kv.free_gpu(request.kv)
                    request.complete(self.env.now)
                    self.on_finished(request)
                else:
                    orphans.append(request)
            batch.requests.clear()
        self.work_list.clear()
        for gpu in self.engine.gpus:
            gpu.healthy = False
        if self.process.is_alive and self.process.target is not None:
            self.process.interrupt("instance failure")
        return orphans

    # -- main loop -------------------------------------------------------------
    def _run(self) -> Generator:
        try:
            while True:
                self._prune()
                if not self.work_list:
                    yield from self._sleep()
                    continue
                yield from self._round()
        except Interrupt:
            return  # instance failure: fail() already harvested state

    def _sleep(self) -> Generator:
        self._wake = self.env.event()
        if not self.work_list:
            yield self._wake
        self._wake = None

    def _round(self) -> Generator:
        """One full rotation of the work list (Algorithm 2, lines 4-11)."""
        self.rounds += 1
        self._round_counter.inc()
        reordered = self.turn_policy.order(self.work_list)
        if reordered is not self.work_list:
            self.work_list[:] = reordered
        batches = list(self.work_list)
        engine = self.engine
        if len(batches) >= 4:
            # Vectorized Eq. 6 for the whole round: one numpy pass per
            # distinct model, scattered back into work-list order.
            step_times = [0.0] * len(batches)
            by_spec: dict[str, list[int]] = {}
            for index, batch in enumerate(batches):
                by_spec.setdefault(batch.spec.name, []).append(index)
            for indices in by_spec.values():
                spec = batches[indices[0]].spec
                times = engine.decode_time_batch(
                    spec,
                    [batches[i].size or 1 for i in indices],
                    [batches[i].context_tokens or 1 for i in indices],
                ).tolist()
                for i, value in zip(indices, times):
                    step_times[i] = value
        else:
            step_times = [
                engine.decode_step_time(
                    batch.spec, batch.size or 1, batch.context_tokens or 1
                )
                for batch in batches
            ]
        switch_cost = self._round_switch_cost(batches)
        quotas = self.turn_policy.quotas(batches, step_times, switch_cost, self.slo)
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span(
                "decode_round", cat="sched", track=self.name, batches=len(batches)
            ):
                yield from self._run_turns(batches, quotas)
        else:
            yield from self._run_turns(batches, quotas)
        self._prune()

    def _run_turns(self, batches: list[DecodeBatch], quotas: list[float]) -> Generator:
        tracer = self._tracer
        for index, (batch, quota) in enumerate(zip(batches, quotas)):
            if batch.exhausted:
                continue
            self.turns += 1
            self._turn_counter.inc()
            if tracer.enabled:
                with tracer.span(
                    "decode_turn", cat="sched", track=self.name,
                    model=batch.spec.name, quota=quota, batch=batch.size,
                ):
                    yield from self._turn(batches, index, batch, quota)
            else:
                yield from self._turn(batches, index, batch, quota)

    def _turn(
        self, batches: list[DecodeBatch], index: int, batch: DecodeBatch, quota: float
    ) -> Generator:
        """One weighted turn: scale, swap in, decode, swap out."""
        engine = self.engine
        if self.scaling.should_switch(engine, batch.spec):
            current = engine.current_model
            policy_event(
                self._tracer, "scale", instance=self.name, phase="decode",
                model=batch.spec.name,
                evicted=None if current is None else current.name,
            )
            try:
                yield from engine.scale_to(batch.spec)
            except CheckpointFetchError:
                # Persistently unreachable checkpoint: fail this model's
                # batch instead of wedging the rotation behind it.
                self.fetch_aborts += 1
                self._abort_batch(batch)
                return
        self._prefetch_after(batch)
        yield from self._swap_in_batch(batch)
        # Figure 10's overlap: while this turn decodes, the *next*
        # batch's KV streams in on the kv_in stream, guarded by
        # per-request events — by its turn, rule ❶ is already met.
        self._issue_swap_in_async(batches, index)
        yield from self._decode_for(batch, quota)
        if self._distinct_models() > 1:
            yield from self._swap_out_batch(batch)

    def _issue_swap_in_async(self, batches: list[DecodeBatch], index: int) -> None:
        """Start the next non-empty batch's KV swap-in without waiting."""
        for other in batches[index + 1 :]:
            if other.exhausted:
                continue
            for request in other.requests:
                if request.kv is not None and request.kv.location == "cpu":
                    try:
                        self.engine.kv.swap_in(request.kv)
                    except MemoryError:
                        return  # cache pressure: its own turn will retry
            return

    def _distinct_models(self) -> int:
        return len({batch.spec.name for batch in self.work_list if not batch.exhausted})

    def _round_switch_cost(self, batches: list[DecodeBatch]) -> float:
        """``c``: the round's scaling overhead, per the scaling policy."""
        return self.scaling.round_switch_cost(self.engine, batches)

    def _prefetch_after(self, batch: DecodeBatch) -> None:
        """Prefetch the next distinct model while this turn decodes."""
        names = [b.spec.name for b in self.work_list]
        try:
            index = names.index(batch.spec.name)
        except ValueError:
            return
        for other in self.work_list[index + 1 :] + self.work_list[:index]:
            if other.spec.name != batch.spec.name and not other.exhausted:
                self.engine.prefetch(other.spec)
                return

    def _swap_in_batch(self, batch: DecodeBatch) -> Generator:
        for request in list(batch.requests):
            if request.kv is not None and request.kv.location == "cpu":
                while True:
                    try:
                        self.engine.kv.swap_in(request.kv)
                        break
                    except MemoryError:
                        yield self.env.timeout(self._alloc_retry_delay)
        if not self.engine.config.fine_grained_sync:
            yield from self.engine.kv.drain()

    def _swap_out_batch(self, batch: DecodeBatch) -> Generator:
        for request in batch.requests:
            if request.kv is not None and request.kv.location == "gpu":
                while True:
                    try:
                        self.engine.kv.swap_out(request.kv)
                        break
                    except MemoryError:
                        yield self.env.timeout(self._alloc_retry_delay)
        if not self.engine.config.fine_grained_sync:
            yield from self.engine.kv.drain()

    def _decode_for(self, batch: DecodeBatch, quota: float) -> Generator:
        """Decode ``batch`` for up to ``quota`` seconds (one turn)."""
        env = self.env
        engine = self.engine
        turn_start = env.now
        while env.now - turn_start < quota and not batch.exhausted:
            # Requests that joined the batch mid-round still sit in the
            # CPU cache; pull them in so they decode within this turn.
            for r in batch.requests:
                kv = r.kv
                if kv is not None and kv.location == "cpu":
                    yield from self._swap_in_batch(batch)
                    break
            # One pass gathers the ready set plus the context total and
            # the minimum remaining tokens it implies — this loop runs
            # once per decode chunk across every running batch, so it
            # reads the flattened request fields directly.
            ready = []
            context_total = 0
            min_remaining = 0
            for r in batch.requests:
                kv = r.kv
                if kv is not None and kv.ready_on_gpu():
                    ready.append(r)
                    generated = r.generated_tokens
                    context_total += r.input_tokens + generated
                    remaining = r.output_tokens - generated
                    if remaining < min_remaining or len(ready) == 1:
                        min_remaining = remaining
            if not ready:
                yield from self._wait_for_any_transfer(batch)
                continue
            step = engine.decode_step_time(batch.spec, len(ready), context_total)
            remaining_time = quota - (env.now - turn_start)
            steps = max(1, min(
                DECODE_CHUNK_STEPS,
                int(remaining_time // step) if step > 0 else DECODE_CHUNK_STEPS,
                min_remaining,
            ))
            chunk_start = env.now
            yield from engine.decode_for(batch.spec, steps * step)
            # One timestamp list shared across the batch: record_tokens
            # copies via extend(), so the shared list is never aliased.
            times = [chunk_start + (i + 1) * step for i in range(steps)]
            chunk_time = steps * step
            gpu_cache = engine.gpu_kv_cache
            for request in ready:
                request.record_tokens(times)
                request.decode_exec_time += chunk_time
                try:
                    request.kv.grow(steps, gpu_cache)
                except MemoryError:
                    # Cache pressure: demote this request until space frees.
                    engine.kv.swap_out(request.kv)
            self._retire_finished(batch)

    def _wait_for_any_transfer(self, batch: DecodeBatch) -> Generator:
        """Rule ❶ stall: no request's KV is usable yet."""
        pending = [
            r.kv.last_transfer.wait()
            for r in batch.requests
            if r.kv is not None and r.kv.last_transfer is not None
            and not r.kv.last_transfer.query()
        ]
        start = self.env.now
        if pending:
            yield self.env.any_of(pending)
        else:
            yield self.env.timeout(self._alloc_retry_delay)
        if batch.requests:
            self.engine.kv.stats.charge_wait(
                batch.requests[0].request_id, self.env.now - start
            )

    def _abort_batch(self, batch: DecodeBatch) -> None:
        """Fail every request in ``batch`` (checkpoint unreachable)."""
        for request in list(batch.requests):
            if request.kv is not None:
                self.engine.kv.abort_request(request.kv)
                request.kv = None
            if self.on_failed is not None:
                self.on_failed(request)
        batch.requests.clear()

    def _retire_finished(self, batch: DecodeBatch) -> None:
        finished = None
        for r in batch.requests:
            if r.generated_tokens >= r.output_tokens:
                if finished is None:
                    finished = []
                finished.append(r)
        if finished is None:
            return
        for request in finished:
            batch.requests.remove(request)
            if request.kv is not None and request.kv.location == "gpu":
                self.engine.kv.free_gpu(request.kv)
            request.complete(self.env.now)
            self.on_finished(request)

    def _prune(self) -> None:
        if any(b.exhausted for b in self.work_list):
            self.work_list[:] = [b for b in self.work_list if not b.exhausted]
