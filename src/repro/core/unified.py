"""Unified (non-disaggregated) token-level scheduling (§4.1, Figure 6).

Before settling on prefill/decoding disaggregation, the paper examines
unified policies that run both phases on every GPU and finds them
workload-sensitive: *prefill-first* preempts decoding whenever prompts
arrive (TBT suffers under bursts, Figure 6(a)); *decoding-first* drains
running outputs before queued prompts (TTFT suffers under long outputs,
Figure 6(b)).

These instances exist so the Figure 6 comparison runs real systems:
token-level auto-scaling with real engines and switch costs, just
without the disaggregated partitions and phase-specialized schedulers.
KV stays GPU-resident here (the unified GPU cache is sized for the
illustration scenarios); the full swap machinery is exercised by the
disaggregated instances.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..engine.engine import AegaeonEngine, EngineConfig
from ..engine.request import Phase, Request
from ..hardware.cluster import Cluster
from ..memory.model_cache import HostModelCache
from ..memory.slab import SlabAllocator
from ..models.catalog import ModelSpec
from ..models.kv import kv_shape
from ..obs import ObsConfig, Observability
from ..sim import Environment, Event
from ..transfer.kv_transfer import RequestKv
from ..workload.trace import Trace
from .serving import BaselineServer
from .slo import DEFAULT_SLO, SloSpec

__all__ = ["UnifiedInstance", "UnifiedServer", "PREFILL_FIRST", "DECODE_FIRST"]

GiB = 1024**3

PREFILL_FIRST = "prefill_first"
DECODE_FIRST = "decode_first"

_CHUNK_STEPS = 8


class UnifiedInstance:
    """One engine running prefill and decoding for many models."""

    def __init__(
        self,
        env: Environment,
        engine: AegaeonEngine,
        policy: str,
        on_finished,
        name: str = "unified",
    ):
        if policy not in (PREFILL_FIRST, DECODE_FIRST):
            raise ValueError(f"unknown unified policy {policy!r}")
        self.env = env
        self.engine = engine
        self.policy = policy
        self.on_finished = on_finished
        self.name = name
        self.waiting: list[Request] = []  # prefill queue, FCFS
        self.decoding: list[Request] = []  # running decodes, mixed models
        self._wake: Optional[Event] = None
        self.process = env.process(self._run())

    # -- dispatch ----------------------------------------------------------
    def enqueue(self, request: Request) -> None:
        """Queue one request for prefill on this instance."""
        self.waiting.append(request)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    @property
    def active(self) -> bool:
        return bool(self.waiting or self.decoding)

    def load(self) -> int:
        """Queued plus running requests (for least-loaded dispatch)."""
        return len(self.waiting) + len(self.decoding)

    # -- main loop ------------------------------------------------------------
    def _run(self) -> Generator:
        while True:
            if not self.active:
                self._wake = self.env.event()
                if not self.active:
                    yield self._wake
                self._wake = None
                continue
            if self.policy == PREFILL_FIRST:
                if self.waiting:
                    yield from self._prefill_next()
                else:
                    yield from self._decode_some()
            else:  # decode-first
                if self.decoding:
                    yield from self._decode_some()
                else:
                    yield from self._prefill_next()

    # -- phases -----------------------------------------------------------------
    def _ensure_model(self, spec: ModelSpec) -> Generator:
        if (
            self.engine.current_model is None
            or self.engine.current_model.name != spec.name
        ):
            yield from self.engine.scale_to(spec)

    def _prefill_next(self) -> Generator:
        request = self.waiting.pop(0)
        yield from self._ensure_model(request.spec)
        request.kv = RequestKv(
            request_id=request.request_id,
            shape=kv_shape(request.spec, self.engine.config.tp),
            tokens=request.input_tokens,
            block_tokens=self.engine.config.block_tokens,
        )
        self.engine.kv.alloc_gpu(request.kv)
        request.phase = Phase.PREFILLING
        request.prefill_start = self.env.now
        yield from self.engine.prefill(request.spec, [request.input_tokens])
        request.prefill_end = self.env.now
        request.record_tokens([self.env.now])
        request.phase = Phase.DECODING
        request.decode_enqueue = self.env.now
        if request.finished:
            self._finish(request)
        else:
            self.decoding.append(request)

    def _decode_some(self) -> Generator:
        """Decode one chunk for the next model's batch (round-robin)."""
        spec = self._next_decode_model()
        if spec is None:
            return
        yield from self._ensure_model(spec)
        batch = [r for r in self.decoding if r.spec.name == spec.name]
        step = self.engine.decode_step_time(
            spec, len(batch), sum(r.context_tokens for r in batch)
        )
        steps = max(1, min(_CHUNK_STEPS, min(r.remaining_tokens for r in batch)))
        chunk_start = self.env.now
        yield from self.engine.decode_for(spec, steps * step)
        for request in batch:
            request.record_tokens(
                [chunk_start + (i + 1) * step for i in range(steps)]
            )
            request.decode_exec_time += steps * step
            request.kv.grow(steps, self.engine.gpu_kv_cache)
            if request.finished:
                self.decoding.remove(request)
                self._finish(request)

    def _next_decode_model(self) -> Optional[ModelSpec]:
        if not self.decoding:
            return None
        current = self.engine.current_model
        if current is not None and any(
            r.spec.name == current.name for r in self.decoding
        ):
            # Finish the resident model's chunk before switching; the
            # round-robin advances when it drains or a prefill switches.
            return next(
                r.spec for r in self.decoding if r.spec.name == current.name
            )
        return self.decoding[0].spec

    def _finish(self, request: Request) -> None:
        if request.kv is not None and request.kv.location == "gpu":
            self.engine.kv.free_gpu(request.kv)
        request.complete(self.env.now)
        self.on_finished(request)


class UnifiedServer(BaselineServer):
    """A pool of unified token-level instances (the Figure 6 foils)."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        policy: str,
        slo: SloSpec = DEFAULT_SLO,
        model_cache_bytes: int = 640 * GiB,
        obs: Optional[ObsConfig | Observability] = None,
        policies=None,
    ):
        # Instance attr shadows the class default before the base class
        # resolves the bundle.
        self.default_policies = f"unified-{policy.replace('_', '-')}"
        super().__init__(env, slo, obs=obs, policies=policies)
        self.label = f"unified-{policy}"
        self.model_cache = HostModelCache(
            model_cache_bytes, name="model_cache", obs=self.obs
        )
        cpu_kv = SlabAllocator(
            64 * GiB, 256 * 1024**2, name="cpu_kv", obs=self.obs
        )
        self.instances = []
        for index, gpu in enumerate(cluster.gpus):
            engine = AegaeonEngine(
                env,
                cluster.node_of(gpu),
                [gpu],
                self.model_cache,
                cpu_kv,
                config=EngineConfig(prefetch=False),
                name=f"unified{index}",
                pre_initialized=True,
                obs=self.obs,
            )
            self.instances.append(
                UnifiedInstance(env, engine, policy, self.note_finished, name=f"unified{index}")
            )
        self.gpu_count = len(cluster.gpus)

    def prepare(self, trace: Trace) -> None:
        for spec in trace.models:
            self.model_cache.insert(spec.name, spec.weight_bytes)

    def dispatch(self, request: Request) -> None:
        # Model affinity, then least loaded (the bundle's dispatch policy).
        target = self.policies.dispatch.place(self, request)
        target.enqueue(request)

    def engines(self) -> list[AegaeonEngine]:
        """Every per-instance engine (for scaling/transfer stats)."""
        return [instance.engine for instance in self.instances]
