"""Grouped prefill-phase scheduling (§4.2, Algorithm 1).

Prefill jobs are grouped by model to amortize auto-scaling: a new request
first tries to join an existing group for its model (anywhere in the
pool) provided the group's *accumulative* size is below ``MAX_GPSIZE``;
otherwise it opens a new group on the least-loaded prefill instance,
where load is the estimated time to finish every pending group —
execution plus the auto-scaling between groups (Appendix A.2).

Batch size on prefill instances is one: prefill time grows ~linearly
with tokens, so smaller batches cut waiting time without hurting
throughput and release requests to the decoding phase eagerly.

The placement rule itself lives in :mod:`repro.policy`
(:class:`~repro.policy.GroupedPrefillDispatch` is the default); the
scheduler here executes the decision against its own copy of the
instance list — the policy-facing view.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..engine.request import Request
from ..models.catalog import ModelSpec
from ..obs import NULL_OBS, Observability
from ..policy.dispatch import GroupedPrefillDispatch
from ..policy.tunables import DEFAULT_TUNABLES

__all__ = ["MAX_GPSIZE", "PrefillGroup", "PrefillInstanceLike", "GroupedPrefillScheduler"]

# Grid-searched in the paper; larger values behave identically because
# groups seldom grow past 8, smaller ones re-scale too often under load.
# Canonically ``Tunables.max_prefill_group``; alias for old imports.
MAX_GPSIZE = DEFAULT_TUNABLES.max_prefill_group


@dataclass
class PrefillGroup:
    """A run of same-model prefill jobs executed back to back."""

    spec: ModelSpec
    requests: deque[Request] = field(default_factory=deque)
    # Accumulative: executing a request does NOT decrease this (the
    # Algorithm 1 line 6 check), bounding deviation from FCFS.
    accumulated: int = 0

    def add(self, request: Request) -> None:
        """Append a request, growing the accumulative size."""
        self.requests.append(request)
        self.accumulated += 1

    @property
    def exhausted(self) -> bool:
        return not self.requests


class PrefillInstanceLike(Protocol):
    """What the scheduler needs from a prefill instance."""

    groups: list[PrefillGroup]

    def estimate_group_time(self, group: PrefillGroup, previous: Optional[ModelSpec]) -> float:
        ...

    def current_model(self) -> Optional[ModelSpec]:
        ...

    def kick(self) -> None:
        ...


class GroupedPrefillScheduler:
    """Algorithm 1: grouped FCFS dispatch across prefill instances."""

    def __init__(
        self,
        instances: list[PrefillInstanceLike],
        max_group_size: int = MAX_GPSIZE,
        obs: Observability = NULL_OBS,
        policy: Optional[GroupedPrefillDispatch] = None,
    ):
        if not instances:
            raise ValueError("need at least one prefill instance")
        if max_group_size <= 0:
            raise ValueError("max_group_size must be positive")
        # The scheduler owns its dispatch list (the policy's view);
        # removing a failed instance must not mutate the caller's pool.
        self.instances = list(instances)
        self.max_group_size = max_group_size
        self.policy = policy if policy is not None else GroupedPrefillDispatch()
        self._tracer = obs.tracer
        scope = obs.scoped("prefill_sched")
        self._joined_counter = scope.counter("groups_joined")
        self._opened_counter = scope.counter("groups_opened")

    def dispatch(self, request: Request) -> PrefillInstanceLike:
        """Place one request; returns the instance that received it.

        Raises ``LookupError`` when every prefill instance has been
        removed (failed) — the server turns that into a rejection.
        """
        if not self.instances:
            raise LookupError("no live prefill instances")
        instance, group, decision = self.policy.place_prefill(self, request)
        if group is not None:
            group.add(request)
            self._joined_counter.inc()
        else:
            group = PrefillGroup(spec=request.spec)
            group.add(request)
            instance.groups.append(group)
            self._opened_counter.inc()
        instance.kick()
        self._note_dispatch(request, decision)
        return instance

    def _note_dispatch(self, request: Request, decision: str) -> None:
        if self._tracer.enabled:
            self._tracer.instant(
                "prefill_dispatch", cat="sched", track="prefill_sched",
                request_id=request.request_id, model=request.model,
                decision=decision,
            )

    def estimate_load(self, instance: PrefillInstanceLike) -> float:
        """Time to finish all pending groups: execution + auto-scaling."""
        load = 0.0
        previous = instance.current_model()
        for group in instance.groups:
            load += instance.estimate_group_time(group, previous)
            previous = group.spec
        return load
