"""Aegaeon reproduction: token-level GPU pooling for multi-model LLM serving.

This package reproduces *Aegaeon: Effective GPU Pooling for Concurrent LLM
Serving on the Market* (SOSP 2025) as a complete, simulation-backed
serving system.  See :mod:`repro.core` for the Aegaeon system itself,
:mod:`repro.baselines` for ServerlessLLM/MuxServe comparators, and
``DESIGN.md`` for the full system inventory.
"""

__version__ = "1.0.0"
