"""Simulated CUDA streams and events (§5.3, Table 2).

A :class:`CudaStream` is an in-order execution lane: operations enqueued
on it (copies over a PCIe link direction, compute kernels, event
records, event waits) execute sequentially, while separate streams run
concurrently — exactly the semantics Aegaeon relies on to overlap KV
swap-in, KV swap-out, model prefetch, and inference.

:class:`CudaEvent` reproduces the Table 2 API surface:

* ``record(stream)``      — ``cudaEventRecord``: capture current work
* ``query()``             — ``cudaEventQuery``: non-blocking completion test
* ``stream.wait_event``   — ``cudaStreamWaitEvent``: future work waits
* ``ipc_handle()`` / ``from_ipc_handle()`` — ``cudaIpcGet/OpenEventHandle``

Copies on two streams bound to the *same* link direction serialize on the
link (one copy engine per direction), which is how real hardware behaves
and why the prefetch stream can hide, but not accelerate, transfers.
"""

from __future__ import annotations

import itertools
from typing import Callable, Generator, Optional

from ..hardware.interconnect import Link
from ..obs import NULL_OBS, Observability
from ..sim import Environment, Event, Store

__all__ = ["CudaEvent", "CudaStream", "synchronize_all"]

_handle_counter = itertools.count(1)
_HANDLE_REGISTRY: dict[int, "CudaEvent"] = {}


class CudaEvent:
    """A CUDA event: a marker in a stream's work queue."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._completion: Event = env.event()
        self.recorded = False
        self.completed_at: Optional[float] = None

    # -- Table 2 API ------------------------------------------------------
    def query(self) -> bool:
        """``cudaEventQuery``: has the captured work completed?

        An event that was never recorded reports complete (CUDA
        semantics for a fresh event).
        """
        return self.completed_at is not None or not self.recorded

    def wait(self) -> Event:
        """Simulation event to ``yield`` on for host-side synchronization.

        If the work already completed (or nothing was recorded), returns
        an immediately-firing event.
        """
        if self.query():
            done = self.env.event()
            done.succeed()
            return done
        return self._completion

    def ipc_handle(self) -> int:
        """``cudaIpcGetEventHandle``: opaque handle for another process."""
        handle = next(_handle_counter)
        _HANDLE_REGISTRY[handle] = self
        return handle

    @classmethod
    def from_ipc_handle(cls, handle: int) -> "CudaEvent":
        """``cudaIpcOpenEventHandle``: reconstruct an event from a handle."""
        try:
            return _HANDLE_REGISTRY[handle]
        except KeyError:
            raise ValueError(f"unknown IPC event handle {handle}") from None

    # -- internal ----------------------------------------------------------
    def _complete(self) -> None:
        if self.completed_at is None:
            self.completed_at = self.env.now
            self._completion.succeed()

    def __repr__(self) -> str:
        state = "done" if self.query() else "pending"
        return f"<CudaEvent {self.name or id(self):#x} {state}>"


class CudaStream:
    """An in-order work queue executed by a dedicated simulation process."""

    def __init__(
        self, env: Environment, name: str = "stream", obs: Observability = NULL_OBS
    ):
        self.env = env
        self.name = name
        self._ops: Store = Store(env)
        self._idle: Event = env.event()
        self._idle.succeed()
        self._depth = 0
        self.ops_executed = 0
        self._tracer = obs.tracer
        env.process(self._worker())

    # -- enqueue API --------------------------------------------------------
    def copy(
        self,
        link: Link,
        nbytes: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue an async memcpy over ``link`` (``cudaMemcpyAsync``)."""
        self._enqueue(("copy", link, nbytes, on_done))

    def compute(self, duration: float, on_done: Optional[Callable[[], None]] = None) -> None:
        """Enqueue a kernel of fixed ``duration`` seconds."""
        self._enqueue(("compute", duration, on_done))

    def record(self, event: CudaEvent) -> CudaEvent:
        """``cudaEventRecord``: event completes when prior work drains."""
        event.recorded = True
        self._enqueue(("record", event))
        return event

    def wait_event(self, event: CudaEvent) -> None:
        """``cudaStreamWaitEvent``: later work waits for ``event``."""
        self._enqueue(("wait_event", event))

    def synchronize(self) -> Event:
        """Host-side: simulation event firing when the queue drains."""
        marker = CudaEvent(self.env, name=f"{self.name}.sync")
        self.record(marker)
        return marker.wait()

    @property
    def pending_ops(self) -> int:
        """Operations enqueued but not yet completed."""
        return self._depth

    # -- internal -------------------------------------------------------------
    def _enqueue(self, op: tuple) -> None:
        self._depth += 1
        self._ops.put(op)

    def _worker(self) -> Generator:
        while True:
            op = yield self._ops.get()
            kind = op[0]
            if kind == "copy":
                _, link, nbytes, on_done = op
                start = self.env.now
                # Run the transfer inline (no child process): the worker is
                # already a dedicated in-order lane, so delegating into the
                # link's generator preserves FIFO semantics while skipping
                # a process spawn + completion event per copy.
                yield from link.transfer(nbytes)
                if self._tracer.enabled:
                    self._tracer.complete(
                        "copy", cat="stream", track=self.name,
                        start=start, end=self.env.now, nbytes=nbytes,
                    )
                if on_done is not None:
                    on_done()
            elif kind == "compute":
                _, duration, on_done = op
                start = self.env.now
                yield self.env.timeout(duration)
                if self._tracer.enabled:
                    self._tracer.complete(
                        "compute", cat="stream", track=self.name,
                        start=start, end=self.env.now,
                    )
                if on_done is not None:
                    on_done()
            elif kind == "record":
                op[1]._complete()
            elif kind == "wait_event":
                yield op[1].wait()
            else:  # pragma: no cover - construction is internal
                raise AssertionError(f"unknown stream op {kind!r}")
            self._depth -= 1
            self.ops_executed += 1


def synchronize_all(env: Environment, streams: list[CudaStream]) -> Event:
    """Device-wide synchronize: fires when every stream has drained.

    This is the blocking synchronization the *unoptimized* auto-scaling
    path uses between stages (cudaDeviceSynchronize semantics).
    """
    return env.all_of([stream.synchronize() for stream in streams])
