"""Simulated CUDA streams and events (§5.3, Table 2).

A :class:`CudaStream` is an in-order execution lane: operations enqueued
on it (copies over a PCIe link direction, compute kernels, event
records, event waits) execute sequentially, while separate streams run
concurrently — exactly the semantics Aegaeon relies on to overlap KV
swap-in, KV swap-out, model prefetch, and inference.

:class:`CudaEvent` reproduces the Table 2 API surface:

* ``record(stream)``      — ``cudaEventRecord``: capture current work
* ``query()``             — ``cudaEventQuery``: non-blocking completion test
* ``stream.wait_event``   — ``cudaStreamWaitEvent``: future work waits
* ``ipc_handle()`` / ``from_ipc_handle()`` — ``cudaIpcGet/OpenEventHandle``

Copies on two streams bound to the *same* link direction serialize on the
link (one copy engine per direction), which is how real hardware behaves
and why the prefetch stream can hide, but not accelerate, transfers.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..hardware.interconnect import Link
from ..obs import NULL_OBS, Observability
from ..sim import ContTask, Environment, Event, Store

__all__ = ["CudaEvent", "CudaStream", "synchronize_all"]

_handle_counter = itertools.count(1)
_HANDLE_REGISTRY: dict[int, "CudaEvent"] = {}


class CudaEvent:
    """A CUDA event: a marker in a stream's work queue."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._completion: Event = env.event()
        self.recorded = False
        self.completed_at: Optional[float] = None

    # -- Table 2 API ------------------------------------------------------
    def query(self) -> bool:
        """``cudaEventQuery``: has the captured work completed?

        An event that was never recorded reports complete (CUDA
        semantics for a fresh event).
        """
        return self.completed_at is not None or not self.recorded

    def wait(self) -> Event:
        """Simulation event to ``yield`` on for host-side synchronization.

        If the work already completed (or nothing was recorded), returns
        an immediately-firing event.
        """
        if self.query():
            done = self.env.event()
            done.succeed()
            return done
        return self._completion

    def ipc_handle(self) -> int:
        """``cudaIpcGetEventHandle``: opaque handle for another process."""
        handle = next(_handle_counter)
        _HANDLE_REGISTRY[handle] = self
        return handle

    @classmethod
    def from_ipc_handle(cls, handle: int) -> "CudaEvent":
        """``cudaIpcOpenEventHandle``: reconstruct an event from a handle."""
        try:
            return _HANDLE_REGISTRY[handle]
        except KeyError:
            raise ValueError(f"unknown IPC event handle {handle}") from None

    # -- internal ----------------------------------------------------------
    def _complete(self) -> None:
        if self.completed_at is None:
            self.completed_at = self.env.now
            self._completion.succeed()

    def __repr__(self) -> str:
        state = "done" if self.query() else "pending"
        return f"<CudaEvent {self.name or id(self):#x} {state}>"


class CudaStream:
    """An in-order work queue executed by a dedicated continuation task."""

    def __init__(
        self, env: Environment, name: str = "stream", obs: Observability = NULL_OBS
    ):
        self.env = env
        self.name = name
        self._ops: Store = Store(env)
        self._idle: Event = env.event()
        self._idle.succeed()
        self._depth = 0
        self.ops_executed = 0
        self._tracer = obs.tracer
        _StreamWorker(env, self)

    # -- enqueue API --------------------------------------------------------
    def copy(
        self,
        link: Link,
        nbytes: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue an async memcpy over ``link`` (``cudaMemcpyAsync``)."""
        self._enqueue(("copy", link, nbytes, on_done))

    def compute(self, duration: float, on_done: Optional[Callable[[], None]] = None) -> None:
        """Enqueue a kernel of fixed ``duration`` seconds."""
        self._enqueue(("compute", duration, on_done))

    def record(self, event: CudaEvent) -> CudaEvent:
        """``cudaEventRecord``: event completes when prior work drains."""
        event.recorded = True
        self._enqueue(("record", event))
        return event

    def wait_event(self, event: CudaEvent) -> None:
        """``cudaStreamWaitEvent``: later work waits for ``event``."""
        self._enqueue(("wait_event", event))

    def synchronize(self) -> Event:
        """Host-side: simulation event firing when the queue drains."""
        marker = CudaEvent(self.env, name=f"{self.name}.sync")
        self.record(marker)
        return marker.wait()

    @property
    def pending_ops(self) -> int:
        """Operations enqueued but not yet completed."""
        return self._depth

    # -- internal -------------------------------------------------------------
    def _enqueue(self, op: tuple) -> None:
        self._depth += 1
        self._ops.put(op)


class _StreamWorker(ContTask):
    """The in-order lane driver, flattened into a continuation machine.

    Each loop iteration of the old generator worker paid a
    ``generator.send`` round-trip per event; the state machine fires the
    next state function directly from the kernel's single-waiter slot.
    The copy path also inlines :meth:`Link.transfer` (the worker is a
    dedicated lane, so FIFO semantics are preserved), keeping the exact
    event sequence of the delegated generator: uncontended copies hold
    the channel with a plain token and yield only the timeout; contended
    copies queue a :class:`~repro.sim.resources.Request` and sample the
    transfer duration *after* the grant (throttle semantics).
    """

    __slots__ = (
        "_stream", "_link", "_nbytes", "_on_done",
        "_op_start", "_token", "_claim", "_duration",
    )

    def __init__(self, env: Environment, stream: "CudaStream") -> None:
        self._stream = stream
        self._link = None
        self._nbytes = 0
        self._on_done = None
        self._op_start = 0.0
        self._token = None
        self._claim = None
        self._duration = 0.0
        ContTask.__init__(self, env)

    def _start(self, value: object) -> Event:
        return self._next_op()

    def _next_op(self) -> Event:
        self._send = self._dispatch
        return self._stream._ops.get()

    def _dispatch(self, op: tuple) -> Event:
        kind = op[0]
        if kind == "copy":
            _, link, nbytes, on_done = op
            if nbytes < 0:
                raise ValueError("cannot transfer a negative byte count")
            self._link = link
            self._nbytes = nbytes
            self._on_done = on_done
            self._op_start = self.env.now
            channel = link._channel
            users = channel.users
            if not users and not channel.queue:
                # Uncontended fast path: immediate grant, plain token.
                token = object()
                users.append(token)
                self._token = token
                self._duration = link.transfer_time(nbytes)
                self._send = self._copy_finish
                return self.env.timeout(self._duration)
            self._claim = channel.request()
            self._send = self._copy_granted
            return self._claim
        if kind == "compute":
            _, duration, on_done = op
            self._on_done = on_done
            self._op_start = self.env.now
            self._send = self._compute_done
            return self.env.timeout(duration)
        if kind == "record":
            op[1]._complete()
            return self._finish_op()
        if kind == "wait_event":
            self._send = self._waited
            return op[1].wait()
        raise AssertionError(  # pragma: no cover - construction is internal
            f"unknown stream op {kind!r}"
        )

    def _copy_granted(self, value: object) -> Event:
        # Duration is sampled after the grant, so a transfer that queued
        # behind others sees the link bandwidth at its actual start time.
        self._duration = self._link.transfer_time(self._nbytes)
        self._send = self._copy_finish
        return self.env.timeout(self._duration)

    def _copy_finish(self, value: object) -> Event:
        link = self._link
        link.bytes_moved += self._nbytes
        link.busy_time += self._duration
        channel = link._channel
        token = self._token
        if token is not None:
            channel.users.remove(token)
            self._token = None
            channel._grant_next()
        else:
            claim = self._claim
            self._claim = None
            claim.cancel()
        stream = self._stream
        if stream._tracer.enabled:
            stream._tracer.complete(
                "copy", cat="stream", track=stream.name,
                start=self._op_start, end=self.env.now, nbytes=self._nbytes,
            )
        on_done = self._on_done
        self._on_done = None
        self._link = None
        if on_done is not None:
            on_done()
        return self._finish_op()

    def _compute_done(self, value: object) -> Event:
        stream = self._stream
        if stream._tracer.enabled:
            stream._tracer.complete(
                "compute", cat="stream", track=stream.name,
                start=self._op_start, end=self.env.now,
            )
        on_done = self._on_done
        self._on_done = None
        if on_done is not None:
            on_done()
        return self._finish_op()

    def _waited(self, value: object) -> Event:
        return self._finish_op()

    def _finish_op(self) -> Event:
        stream = self._stream
        stream._depth -= 1
        stream.ops_executed += 1
        return self._next_op()


def synchronize_all(env: Environment, streams: list[CudaStream]) -> Event:
    """Device-wide synchronize: fires when every stream has drained.

    This is the blocking synchronization the *unoptimized* auto-scaling
    path uses between stages (cudaDeviceSynchronize semantics).
    """
    return env.all_of([stream.synchronize() for stream in streams])
