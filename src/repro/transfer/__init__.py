"""KV-cache transfer, CUDA stream/event simulation, and weight loaders."""

from .kv_transfer import KvTransferManager, MoveList, RequestKv, TransferStats
from .loader import NaiveLoader, QuickLoader
from .streams import CudaEvent, CudaStream, synchronize_all

__all__ = [
    "CudaEvent",
    "CudaStream",
    "KvTransferManager",
    "MoveList",
    "NaiveLoader",
    "QuickLoader",
    "RequestKv",
    "TransferStats",
    "synchronize_all",
]
