"""Model-weight loading (§5.2 "Quick model loading", Figure 9 steps 3.a/3.b).

Two loaders are modelled:

* :class:`QuickLoader` — Aegaeon's path: checkpoints cached in the host
  Model Cache, staged through a page-locked Stage Buffer, copied in a
  multi-threaded, chunked, pipelined manner.  Sustains
  ``pcie_bandwidth * beta`` (20 GB/s on PCIe 4.0 with the paper's
  profiled beta = 0.625), i.e. "under one second" for the 13 GB shard of
  a 13B model at TP=2.  A cache miss first fetches the checkpoint from
  the remote registry.

* :class:`NaiveLoader` — the unoptimized inference-engine path, which
  achieves only 2.83 GB/s (the paper's Figure 7 microbenchmark: ~4.6 s
  for the same shard).

Both issue their device copies through the GPU's h2d link, so loading
contends with KV swap-ins exactly as it would on real hardware.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..hardware.interconnect import DuplexLink
from ..memory.model_cache import HostModelCache
from ..models.latency import NAIVE_LOAD_BANDWIDTH, PCIE_BETA
from ..sim import Environment
from .streams import CudaEvent, CudaStream

__all__ = ["CheckpointFetchError", "QuickLoader", "NaiveLoader"]

GiB = 1024**3


class CheckpointFetchError(RuntimeError):
    """A remote checkpoint fetch failed past the loader's retry budget."""

    def __init__(self, model: str, attempts: int):
        super().__init__(
            f"checkpoint fetch for {model!r} failed {attempts} time(s); "
            "retry budget exhausted"
        )
        self.model = model
        self.attempts = attempts


class QuickLoader:
    """Pipelined, cache-backed weight loader."""

    def __init__(
        self,
        env: Environment,
        link: DuplexLink,
        model_cache: HostModelCache,
        stage_buffer_bytes: int = 2 * GiB,
        beta: float = PCIE_BETA,
        remote_bandwidth: float = 1.5e9,
    ):
        if not 0 < beta <= 1:
            raise ValueError("beta must lie in (0, 1]")
        self.env = env
        self.link = link
        self.model_cache = model_cache
        # Double-buffered staging: each in-flight chunk is half the buffer.
        self.chunk_bytes = max(1, stage_buffer_bytes // 2)
        self.beta = beta
        self.remote_bandwidth = remote_bandwidth
        self.loads = 0
        self.remote_fetches = 0
        # Chaos surface: consulted once per remote fetch attempt.  None
        # means the attempt succeeds; a float is the seconds wasted
        # before the failure surfaces (a registry timeout).
        self.fetch_disruptor: Optional[Callable[[str], Optional[float]]] = None
        self.max_fetch_retries = 4
        self.fetch_backoff_base = 0.05  # doubles per retry
        self.fetch_failures = 0
        self.fetch_retries = 0

    # -- estimates (used by the schedulers) -----------------------------------
    def load_time(self, nbytes: int, cached: bool = True) -> float:
        """Estimated load time, excluding link queueing."""
        device_copy = nbytes / (self.link.bandwidth * self.beta)
        if cached:
            return device_copy
        return nbytes / self.remote_bandwidth + device_copy

    # -- loading -----------------------------------------------------------------
    def ensure_cached(self, model: str, nbytes: int) -> Generator:
        """Process: make the checkpoint resident in the host cache.

        Fetch attempts may be failed by an installed ``fetch_disruptor``;
        each failure wastes its reported seconds, then the loader backs
        off exponentially and retries, up to ``max_fetch_retries`` times.
        Exhausting the budget raises :class:`CheckpointFetchError`.
        """
        if self.model_cache.lookup(model):
            return
        attempt = 0
        while True:
            self.remote_fetches += 1
            wasted = (
                self.fetch_disruptor(model)
                if self.fetch_disruptor is not None
                else None
            )
            if wasted is None:
                yield self.env.timeout(nbytes / self.remote_bandwidth)
                self.model_cache.insert(model, nbytes)
                return
            self.fetch_failures += 1
            if wasted > 0:
                yield self.env.timeout(wasted)
            if attempt >= self.max_fetch_retries:
                raise CheckpointFetchError(model, attempt + 1)
            yield self.env.timeout(self.fetch_backoff_base * (2**attempt))
            attempt += 1
            self.fetch_retries += 1

    def load(
        self,
        model: str,
        nbytes: int,
        stream: Optional[CudaStream] = None,
    ) -> Generator:
        """Process: load ``nbytes`` of weights onto the device.

        Returns (via the process value) the :class:`CudaEvent` that
        completes when the last chunk lands.  With ``stream`` given the
        copies are enqueued asynchronously (the prefetch path); without
        it, the process itself drives the chunks and returns after the
        copy finishes.
        """
        yield from self.ensure_cached(model, nbytes)
        self.model_cache.pin(model)
        self.loads += 1
        # Per-chunk pipeline stall: the pageable->pinned staging memcpy
        # overlaps the previous chunk's DMA, but only partially; the
        # profiled beta captures the resulting efficiency.
        chunk_count = max(1, -(-nbytes // self.chunk_bytes))
        stall_per_chunk = (
            self.chunk_bytes / (self.link.bandwidth * self.beta)
            - self.chunk_bytes / self.link.bandwidth
        )
        done = CudaEvent(self.env, name=f"load.{model}")
        if stream is not None:
            for _ in range(chunk_count):
                stream.compute(stall_per_chunk)
                stream.copy(self.link.h2d, min(self.chunk_bytes, nbytes))
            stream.record(done)

            def unpin_when_done() -> Generator:
                yield done.wait()
                self.model_cache.unpin(model)

            self.env.process(unpin_when_done())
            return done
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.chunk_bytes, remaining)
            yield self.env.timeout(stall_per_chunk * chunk / self.chunk_bytes)
            yield self.env.process(self.link.h2d.transfer(chunk))
            remaining -= chunk
        self.model_cache.unpin(model)
        done.recorded = True
        done._complete()
        return done


class NaiveLoader:
    """The unoptimized engine loading path (2.83 GB/s end to end)."""

    def __init__(
        self,
        env: Environment,
        link: DuplexLink,
        bandwidth: float = NAIVE_LOAD_BANDWIDTH,
    ):
        self.env = env
        self.link = link
        self.bandwidth = bandwidth
        self.loads = 0

    def load_time(self, nbytes: int) -> float:
        """End-to-end load estimate."""
        return nbytes / self.bandwidth

    def load(self, model: str, nbytes: int) -> Generator:
        """Process: serialized, host-bound weight load."""
        self.loads += 1
        # The device copy itself occupies the link at raw speed; the rest
        # of the time is host-side deserialization stalling the pipeline.
        yield self.env.process(self.link.h2d.transfer(nbytes))
        host_stall = self.load_time(nbytes) - nbytes / self.link.bandwidth
        if host_stall > 0:
            yield self.env.timeout(host_stall)
