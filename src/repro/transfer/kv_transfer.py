"""KV-cache transfer with fine-grained synchronization (§5.3, Figure 10).

Moving a request's KV cache between the unified GPU cache and the unified
CPU cache must respect three data dependencies:

* rule ❶ — inference needs the KV cache resident on the GPU;
* rule ❷ — a new transfer needs the source blocks to have finished their
  previous transfer;
* rule ❸ — a new transfer's target blocks must be free of past transfers.

Aegaeon enforces these with per-request CUDA events instead of blocking
device synchronization.  Rule ❸ is realized through *move lists*: CPU
blocks released by a swap-in stay unavailable (not returned to the slab
allocator) until a daemon observes the covering event complete — the
deferred free makes "allocations neglect blocks in move lists" automatic.

``fine_grained=False`` reproduces the unoptimized path: every stage ends
in a device-wide synchronize, and frees happen inline on the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..memory.slab import KvBlock, SlabAllocator
from ..models.kv import DEFAULT_BLOCK_TOKENS, KvShape
from ..obs import NULL_OBS, Observability
from ..sim import ContTask, Environment, Event
from ..hardware.interconnect import DuplexLink
from .streams import CudaEvent, CudaStream

__all__ = ["RequestKv", "MoveList", "KvTransferManager", "TransferStats"]

# Host-side cost of manipulating one event / index entry (control plane).
CONTROL_OP_COST = 20e-6


@dataclass
class RequestKv:
    """Tracks where one request's KV cache lives and its last transfer."""

    request_id: int
    shape: KvShape
    tokens: int
    block_tokens: int = DEFAULT_BLOCK_TOKENS
    location: str = "none"  # none | gpu | cpu
    gpu_blocks: list[KvBlock] = field(default_factory=list)
    cpu_blocks: list[KvBlock] = field(default_factory=list)
    last_transfer: Optional[CudaEvent] = None

    def __post_init__(self) -> None:
        # Shape and block size are fixed for the request's lifetime;
        # grow() runs once per decode chunk per request, so the derived
        # block geometry is computed once instead of per call.
        self._block_bytes = self.shape.block_bytes(self.block_tokens)

    @property
    def block_count(self) -> int:
        """Paged blocks needed for ``tokens`` tokens."""
        return max(1, -(-self.tokens // self.block_tokens))

    @property
    def nbytes(self) -> int:
        """Bytes actually moved for this request's KV."""
        return self.tokens * self.shape.bytes_per_token

    @property
    def block_bytes(self) -> int:
        return self._block_bytes

    def ready_on_gpu(self) -> bool:
        """Rule ❶ check: resident and the last transfer has completed."""
        if self.location != "gpu":
            return False
        return self.last_transfer is None or self.last_transfer.query()

    def grow(self, new_tokens: int, gpu_cache: SlabAllocator) -> None:
        """Extend GPU-resident KV by ``new_tokens`` (decode appends)."""
        if self.location != "gpu":
            raise ValueError("can only grow KV resident on the GPU")
        tokens = self.tokens
        block_tokens = self.block_tokens
        old_blocks = -(-tokens // block_tokens)
        self.tokens = tokens = tokens + new_tokens
        missing = -(-tokens // block_tokens) - (old_blocks if old_blocks > 1 else 1)
        if missing > 0:
            self.gpu_blocks.extend(
                gpu_cache.alloc(self.shape, self._block_bytes, missing)
            )


@dataclass
class MoveList:
    """Unsafe sections of the CPU cache: blocks with in-flight transfers."""

    entries: list[tuple[list[KvBlock], CudaEvent]] = field(default_factory=list)

    def add(self, blocks: list[KvBlock], event: CudaEvent) -> None:
        """Mark blocks unsafe until ``event`` completes."""
        self.entries.append((blocks, event))

    def reclaim(self, cpu_cache: SlabAllocator) -> int:
        """Free blocks whose transfers completed; returns blocks freed."""
        freed = 0
        remaining = []
        keep = remaining.append
        for entry in self.entries:
            event = entry[1]
            # Inline CudaEvent.query(): this poll runs for every pending
            # entry on every daemon tick.
            if event.completed_at is not None or not event.recorded:
                blocks = entry[0]
                cpu_cache.free(blocks)
                freed += len(blocks)
            else:
                keep(entry)
        self.entries = remaining
        return freed

    @property
    def pending_blocks(self) -> int:
        return sum(len(blocks) for blocks, _ in self.entries)


@dataclass
class TransferStats:
    """Aggregated overheads, feeding the Figure 14/15 breakdowns."""

    swap_out_count: int = 0
    swap_in_count: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    control_overhead: float = 0.0  # host-side event/index manipulation
    data_wait: float = 0.0  # explicit waiting for KV transfers
    per_request_sync: dict[int, float] = field(default_factory=dict)

    def charge_control(self, ops: int) -> None:
        """Account host-side event/index manipulation cost."""
        self.control_overhead += ops * CONTROL_OP_COST

    def charge_wait(self, request_id: int, seconds: float) -> None:
        """Account explicit waiting time for one request's KV transfer."""
        self.data_wait += seconds
        self.per_request_sync[request_id] = (
            self.per_request_sync.get(request_id, 0.0) + seconds
        )


class KvTransferManager:
    """Swap engine for one GPU: streams, move lists, and the daemon."""

    def __init__(
        self,
        env: Environment,
        link: DuplexLink,
        gpu_cache: SlabAllocator,
        cpu_cache: SlabAllocator,
        move_list: Optional[MoveList] = None,
        fine_grained: bool = True,
        daemon_interval: float = 0.005,
        name: str = "gpu",
        obs: Observability = NULL_OBS,
    ):
        self.env = env
        self.link = link
        self.gpu_cache = gpu_cache
        self.cpu_cache = cpu_cache
        self.move_list = move_list if move_list is not None else MoveList()
        self.fine_grained = fine_grained
        self.stats = TransferStats()
        # GPU block lists handed to in-flight swap-outs: no longer owned
        # by a request, not yet returned to the allocator.  The invariant
        # checker sums these when reconciling GPU-cache occupancy.
        self.inflight_sources: list[list[KvBlock]] = []
        self.kv_in = CudaStream(env, name=f"{name}.kv_in", obs=obs)
        self.kv_out = CudaStream(env, name=f"{name}.kv_out", obs=obs)
        self._daemon_interval = daemon_interval
        self._daemon_wake: Optional[Event] = None
        self.name = name
        self._tracer = obs.tracer
        scope = obs.scoped(f"kv.{name}")
        self._swap_in_counter = scope.counter("swap_in")
        self._swap_out_counter = scope.counter("swap_out")
        self._bytes_in_counter = scope.counter("bytes_in")
        self._bytes_out_counter = scope.counter("bytes_out")
        self._wait_hist = scope.histogram("wait_ready_s")
        if obs.enabled:
            scope.gauge("move_list_blocks").set_fn(
                lambda: self.move_list.pending_blocks
            )
        _ReclaimDaemon(env, self)

    # -- allocation on the GPU ------------------------------------------------
    def alloc_gpu(self, kv: RequestKv) -> None:
        """Give a fresh request its GPU KV blocks (prefill admission)."""
        if kv.location != "none":
            raise ValueError(f"request {kv.request_id} already has KV")
        kv.gpu_blocks = self.gpu_cache.alloc(
            kv.shape, kv.block_bytes, kv.block_count
        )
        kv.location = "gpu"

    def free_gpu(self, kv: RequestKv) -> None:
        """Drop a finished request's GPU KV."""
        if kv.gpu_blocks:
            self.gpu_cache.free(kv.gpu_blocks)
            kv.gpu_blocks = []
        if kv.location == "gpu":
            kv.location = "none"

    def abort_request(self, kv: RequestKv) -> None:
        """Dispose of a request's KV when its instance dies mid-flight.

        GPU blocks the request still owns are freed immediately (the
        device is gone; nothing will touch them).  CPU blocks are freed
        unless an in-flight transfer still covers them — a swap-in's
        source blocks already sit on the move list under ``last_transfer``
        and will be reclaimed by the daemon, so freeing them here would
        double-free.  Blocks handed to an in-flight swap-out are not on
        the request anymore and release through their own completion.
        """
        if kv.gpu_blocks:
            self.gpu_cache.free(kv.gpu_blocks)
            kv.gpu_blocks = []
        if kv.cpu_blocks:
            if kv.last_transfer is not None and not kv.last_transfer.query():
                # Defer to the transfer's completion (rule ❸ discipline).
                self.move_list.add(kv.cpu_blocks, kv.last_transfer)
                self._kick_daemon()
            else:
                self.cpu_cache.free(kv.cpu_blocks)
            kv.cpu_blocks = []
        kv.location = "none"
        self.stats.charge_control(1)

    def gpu_capacity_blocks(self, shape: KvShape, block_tokens: int) -> int:
        """How many more blocks of ``shape`` the GPU cache can hold."""
        return self.gpu_cache.capacity_for(shape, shape.block_bytes(block_tokens))

    # -- swap-out ---------------------------------------------------------------
    def swap_out(self, kv: RequestKv) -> CudaEvent:
        """Offload a request's KV to the unified CPU cache (async).

        Returns the transfer event; GPU blocks are freed when the copy
        completes (they are the *source*, safe to reuse afterwards).
        """
        if kv.location != "gpu":
            raise ValueError(f"request {kv.request_id} is not on the GPU")
        kv.cpu_blocks = self.cpu_cache.alloc(
            kv.shape, kv.block_bytes, kv.block_count
        )
        # Rule ❷: our source (GPU blocks) must be done with its last
        # transfer (e.g. the swap-in that brought it here).
        if kv.last_transfer is not None and not kv.last_transfer.query():
            self.kv_out.wait_event(kv.last_transfer)
            self.stats.charge_control(1)
        event = CudaEvent(self.env, name=f"out.r{kv.request_id}")
        gpu_blocks = kv.gpu_blocks
        kv.gpu_blocks = []
        self.inflight_sources.append(gpu_blocks)

        def release_source() -> None:
            self.inflight_sources.remove(gpu_blocks)
            self.gpu_cache.free(gpu_blocks)

        self.kv_out.copy(self.link.d2h, kv.nbytes, on_done=release_source)
        self.kv_out.record(event)
        kv.last_transfer = event
        kv.location = "cpu"
        self.stats.swap_out_count += 1
        self.stats.bytes_out += kv.nbytes
        self.stats.charge_control(2)
        self._swap_out_counter.inc()
        self._bytes_out_counter.inc(kv.nbytes)
        if self._tracer.enabled:
            self._tracer.instant(
                "swap_out", cat="kv", track=self.name,
                request_id=kv.request_id, nbytes=kv.nbytes,
            )
        return event

    # -- swap-in ----------------------------------------------------------------
    def swap_in(self, kv: RequestKv) -> CudaEvent:
        """Bring a request's KV back onto this GPU (async).

        The CPU source blocks go onto the move list (rule ❸) and are
        reclaimed by the daemon once the copy completes.
        """
        if kv.location != "cpu":
            raise ValueError(f"request {kv.request_id} is not in the CPU cache")
        kv.gpu_blocks = self.gpu_cache.alloc(
            kv.shape, kv.block_bytes, kv.block_count
        )
        # Rule ❷: wait for the producing transfer (possibly recorded by a
        # different instance and shared via IPC).
        if kv.last_transfer is not None and not kv.last_transfer.query():
            self.kv_in.wait_event(kv.last_transfer)
            self.stats.charge_control(1)
        event = CudaEvent(self.env, name=f"in.r{kv.request_id}")
        cpu_blocks = kv.cpu_blocks
        kv.cpu_blocks = []
        self.kv_in.copy(self.link.h2d, kv.nbytes)
        self.kv_in.record(event)
        # Rule ❸: source CPU blocks stay unavailable until the copy is done.
        self.move_list.add(cpu_blocks, event)
        self._kick_daemon()
        kv.last_transfer = event
        kv.location = "gpu"
        self.stats.swap_in_count += 1
        self.stats.bytes_in += kv.nbytes
        self.stats.charge_control(3)
        self._swap_in_counter.inc()
        self._bytes_in_counter.inc(kv.nbytes)
        if self._tracer.enabled:
            self._tracer.instant(
                "swap_in", cat="kv", track=self.name,
                request_id=kv.request_id, nbytes=kv.nbytes,
            )
        return event

    # -- host-side waits -----------------------------------------------------
    def wait_ready(self, kv: RequestKv) -> Generator:
        """Process: block until ``kv`` is usable on the GPU (rule ❶)."""
        if kv.location != "gpu":
            raise ValueError(f"request {kv.request_id} is not headed to the GPU")
        if kv.last_transfer is None or kv.last_transfer.query():
            return
        start = self.env.now
        yield kv.last_transfer.wait()
        waited = self.env.now - start
        self.stats.charge_wait(kv.request_id, waited)
        self._wait_hist.observe(waited)
        if self._tracer.enabled:
            self._tracer.complete(
                "wait_ready", cat="kv", track=self.name,
                start=start, end=self.env.now, request_id=kv.request_id,
            )

    def drain(self) -> Generator:
        """Process: blocking synchronization of both KV streams.

        This is what the unoptimized path does between auto-scaling
        stages; the optimized path never calls it on the critical path.
        """
        start = self.env.now
        yield self.env.all_of(
            [self.kv_in.synchronize(), self.kv_out.synchronize()]
        )
        self.stats.data_wait += self.env.now - start

    # -- internal -----------------------------------------------------------
    def _kick_daemon(self) -> None:
        """Wake the reclaim daemon after adding to the move list."""
        wake = self._daemon_wake
        if wake is not None and not wake.triggered:
            wake.succeed()


class _ReclaimDaemon(ContTask):
    """Reclaim move-list blocks while any are in flight (Fig. 10, step ⑧).

    Reclamation happens on a fixed ``daemon_interval`` tick grid, but the
    daemon parks on a wake event whenever the move list is empty instead
    of polling forever — the idle-polling version dominated the whole
    simulation's event count.  When woken it re-aligns to the grid, so
    blocks are freed at the same instants the always-polling daemon would
    have freed them.

    Continuation state machine: ``_park_or_tick`` either parks on a fresh
    wake event (move list empty) or arms a grid timeout; ``_woken``
    re-aligns to the next grid tick strictly after the add (the add loses
    same-instant ties to an already-queued timeout, hence "strictly
    after"); ``_tick`` reclaims and loops.
    """

    __slots__ = ("_mgr",)

    def __init__(self, env: Environment, mgr: "KvTransferManager") -> None:
        self._mgr = mgr
        ContTask.__init__(self, env)

    def _start(self, value: object) -> Event:
        return self._park_or_tick()

    def _park_or_tick(self) -> Event:
        mgr = self._mgr
        if not mgr.move_list.entries:
            mgr._daemon_wake = self.env.event()
            self._send = self._woken
            return mgr._daemon_wake
        self._send = self._tick
        return self.env.timeout(mgr._daemon_interval)

    def _woken(self, value: object) -> Event:
        mgr = self._mgr
        mgr._daemon_wake = None
        interval = mgr._daemon_interval
        remainder = self.env.now % interval
        self._send = self._tick
        return self.env.timeout(
            interval - remainder if remainder > 0.0 else interval
        )

    def _tick(self, value: object) -> Event:
        mgr = self._mgr
        freed = mgr.move_list.reclaim(mgr.cpu_cache)
        if freed:
            mgr.stats.charge_control(1)
        return self._park_or_tick()
