"""Deterministic discrete-event simulation kernel.

The kernel is the substrate on which every simulated hardware and software
component of the Aegaeon reproduction runs.  See :mod:`repro.sim.core` for
the event loop and :mod:`repro.sim.resources` for queued resources.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    ContTask,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Container, PriorityResource, Resource, Store
from .resources import Request as ResourceRequest

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ContTask",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "ResourceRequest",
    "SimulationError",
    "Store",
    "Timeout",
]
