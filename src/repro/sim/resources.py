"""Queued resources for the simulation kernel.

Provides the classic trio used throughout the reproduction:

* :class:`Resource` — a counted resource with FIFO (or priority) queueing,
  used for GPUs, PCIe lanes, and staging buffers.
* :class:`Container` — a continuous quantity (bytes of memory, etc.).
* :class:`Store` — a FIFO buffer of Python objects (job queues, mailboxes).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Request", "Resource", "PriorityResource", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Fires when the resource grants the claim.  Usable as a context
    manager inside a process::

        with resource.request() as req:
            yield req
            ...  # holding the resource
    """

    __slots__ = ("resource", "priority", "time")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.time = resource.env.now
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the resource (or withdraw the queued claim)."""
        self.resource.release(self)


class Resource:
    """A resource with ``capacity`` slots and a wait queue.

    Requests are granted in FIFO order; :class:`PriorityResource` sorts
    the queue by the request's ``priority`` (lower is more urgent), with
    FIFO tie-breaking.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: float = 0.0) -> Request:
        """Claim one slot; returns an event that fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``.

        Releasing a request that was never granted silently withdraws it
        from the queue, which makes ``with resource.request()`` safe even
        if the process is interrupted while waiting.
        """
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif request in self.queue:
            self.queue.remove(request)

    # -- internal --------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self._insert(request)

    def _insert(self, request: Request) -> None:
        self.queue.append(request)

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self._pop_next()
            self.users.append(request)
            request.succeed()

    def _pop_next(self) -> Request:
        return self.queue.pop(0)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority."""

    def _pop_next(self) -> Request:
        best_index = 0
        for index, request in enumerate(self.queue):
            best = self.queue[best_index]
            if (request.priority, request.time) < (best.priority, best.time):
                best_index = index
        return self.queue.pop(best_index)


class Container:
    """A continuous quantity with blocking ``get`` and ``put``.

    Used for byte-counted memories where exact block identity does not
    matter (e.g. staging-buffer credit).
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would exceed capacity."""
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = self.env.event()
        if not self._putters and self._level + amount <= self.capacity:
            # Uncontended fast path; succeeds in the same order the settle
            # loop would (put first, then any now-satisfiable getters).
            self._level += amount
            event.succeed()
            if self._getters:
                self._settle()
            return event
        self._putters.append((amount, event))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks until available."""
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        event = self.env.event()
        if not self._getters and not self._putters and amount <= self._level:
            self._level -= amount
            event.succeed(amount)
            return event
        self._getters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    event.succeed()
                    progressed = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO buffer of items with blocking ``get``.

    ``get`` optionally takes a filter predicate, in which case the first
    matching item is returned (a FilterStore in SimPy terms).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[tuple[Optional[Callable[[Any], bool]], Event]] = []
        self._putters: list[tuple[Any, Event]] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Append ``item``; blocks while the store is full."""
        event = self.env.event()
        if not self._putters and len(self.items) < self.capacity:
            # Uncontended fast path; same succeed order as the settle
            # loop (the put first, then any now-satisfiable getter).
            self.items.append(item)
            event.succeed()
            if self._getters:
                self._settle()
            return event
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return the first (matching) item; blocks if none."""
        event = self.env.event()
        if not self._getters and not self._putters:
            index = self._find(predicate)
            if index is not None:
                event.succeed(self.items.pop(index))
                return event
        self._getters.append((predicate, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                item, event = self._putters.pop(0)
                self.items.append(item)
                event.succeed()
                progressed = True
            # Grant getters in FIFO order, skipping those whose predicate
            # matches nothing yet.
            remaining: list[tuple[Optional[Callable[[Any], bool]], Event]] = []
            for predicate, event in self._getters:
                index = self._find(predicate)
                if index is None:
                    remaining.append((predicate, event))
                else:
                    event.succeed(self.items.pop(index))
                    progressed = True
            self._getters = remaining

    def _find(self, predicate: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if predicate is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if predicate(item):
                return index
        return None
