"""Discrete-event simulation kernel.

This module implements a small, deterministic, generator-based
discrete-event simulator in the style of SimPy.  Every stateful component
of the reproduction (GPUs, PCIe links, CUDA streams, inference engines,
schedulers) runs as a :class:`Process` inside an :class:`Environment`.

Design notes
------------
* Simulated time is a float, in **seconds**.
* Events scheduled for the same time fire in scheduling order (a strictly
  increasing sequence number breaks ties), so simulations are fully
  deterministic given a seeded workload.
* Processes are plain Python generators that ``yield`` events.  When the
  event fires, the process resumes with the event's value; if the event
  failed, the exception is thrown into the generator.

Hot-path engineering (see DESIGN.md "Performance notes")
--------------------------------------------------------
* Every kernel object carries ``__slots__``; there are no instance dicts
  on the event path.
* :class:`Event`, :class:`Timeout`, and :class:`Process` objects are
  recycled through per-class freelists.  An object is returned to its
  pool only when the run loop holds the *sole* remaining reference
  (checked with ``sys.getrefcount``), so any event a component keeps a
  handle on — a wake event, a prefetch process, a condition sub-event —
  is never reused out from under it.  Failed events are recycled only
  after their failure has been defused (observed); an unobserved failure
  still surfaces at :meth:`Environment.run` with its exception intact.
* Timeouts support *lazy cancellation*: :meth:`Timeout.cancel` (and
  :meth:`Process.interrupt` orphaning a timeout) marks the heap entry
  dead, and the run loop drops it at pop time instead of re-heapifying.
* ``yield`` of an already-processed event, and :class:`AllOf`/
  :class:`AnyOf` over already-triggered events, take allocation-light
  fast paths.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0  # created, not yet triggered
_TRIGGERED = 1  # value set, scheduled to fire
_PROCESSED = 2  # callbacks have run

# Per-class freelist size cap; beyond this, objects fall back to the GC.
_POOL_CAP = 4096


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: *pending* (just created),
    *triggered* (a value or exception has been set and the event is
    queued), and *processed* (its callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused", "_cancelled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        # Failures are "defused" once some process observes them; an
        # unobserved failure surfaces at env.run() to avoid being dropped.
        self._defused = False
        # Lazy cancellation: dead heap entries are dropped at pop time.
        self._cancelled = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value (or exception) has been set."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._state < _TRIGGERED:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._state < _TRIGGERED:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state >= _TRIGGERED:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        heappush(env._queue, (env._now, env._sequence, self))
        env._sequence += 1
        env.events_scheduled += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is pinned to the event until some waiter observes
        (defuses) it; undefused failures are never recycled, so the
        traceback survives to surface at :meth:`Environment.run`.
        """
        if self._state >= _TRIGGERED:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        env = self.env
        heappush(env._queue, (env._now, env._sequence, self))
        env._sequence += 1
        env.events_scheduled += 1
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    # -- internal --------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        Event.__init__(self, env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        heappush(env._queue, (env._now + delay, env._sequence, self))
        env._sequence += 1
        env.events_scheduled += 1

    def cancel(self) -> bool:
        """Lazily cancel this timeout.

        The heap entry stays where it is; the run loop drops it at pop
        time without firing callbacks (and without counting a step).
        Returns True if the timeout was still pending, False if it had
        already been processed (in which case this is a no-op).
        """
        if self._state == _PROCESSED:
            return False
        self._cancelled = True
        return True

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The process's value is the generator's return value; if the generator
    raises, waiting processes observe the exception.
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}"
            )
        Event.__init__(self, env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Bind the resume callback once; every wait reuses it instead of
        # materializing a fresh bound method per yield.
        self._resume_cb = self._resume
        env._schedule_init(self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._state < _TRIGGERED

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is rescheduled immediately; the event it was waiting
        on is left un-consumed (its callbacks no longer include this
        process).  An orphaned :class:`Timeout` — one no waiter remains
        attached to — is lazily cancelled so the run loop can drop it at
        pop time instead of firing it.
        """
        if self._state >= _TRIGGERED:
            raise SimulationError("cannot interrupt a terminated process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process that is not waiting")
        env = self.env
        interrupt_event = env.event()
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event._state = _TRIGGERED
        # Detach from the old target so its firing does not resume us.
        target = self._target
        callbacks = target.callbacks
        if callbacks is not None and self._resume_cb in callbacks:
            callbacks.remove(self._resume_cb)
            if not callbacks and type(target) is Timeout:
                target._cancelled = True
        self._target = None
        interrupt_event.callbacks = [self._resume_cb]
        env._enqueue(interrupt_event)

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        try:
            callbacks = next_event.callbacks
        except AttributeError:
            raise SimulationError(
                f"process yielded a non-event: {next_event!r}"
            ) from None
        if callbacks is not None:
            callbacks.append(self._resume_cb)
            self._target = next_event
        else:
            # Already processed: resume immediately with its value, via a
            # pooled relay event so ordering against the queue is kept.
            resume = env.event()
            ok = next_event._ok
            resume._ok = ok
            resume._value = next_event._value
            if not ok:
                next_event._defused = True
                resume._defused = True
            resume._state = _TRIGGERED
            resume.callbacks.append(self._resume_cb)
            heappush(env._queue, (env._now, env._sequence, resume))
            env._sequence += 1
            env.events_scheduled += 1
            self._target = resume


def _all_fired(events: list[Event], count: int) -> bool:
    """Evaluate for :class:`AllOf`: every sub-event has fired."""
    return count == len(events)


def _any_fired(events: list[Event], count: int) -> bool:
    """Evaluate for :class:`AnyOf`: at least one sub-event has fired."""
    return count >= 1


class Condition(Event):
    """An event that fires once ``evaluate`` holds over its sub-events."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        Event.__init__(self, env)
        self._evaluate = evaluate
        self._attach(env, list(events))

    def _attach(self, env: "Environment", events: list[Event]) -> None:
        self._events = events
        self._count = 0
        for event in events:
            if event.env is not env:
                raise SimulationError("conditions cannot span environments")

        if not events:
            self.succeed(self._collect_values())
            return
        check = self._check
        for event in events:
            if event.callbacks is None:
                # Fast path: the sub-event already fired; account for it
                # now instead of queueing anything.
                check(event)
            else:
                event.callbacks.append(check)

    def _collect_values(self) -> dict[Event, Any]:
        return {
            event: event._value
            for event in self._events
            if event._state == _PROCESSED and event._ok
        }

    def _check(self, event: Event) -> None:
        if self._state >= _TRIGGERED:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Fires when all sub-events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        Event.__init__(self, env)
        self._evaluate = _all_fired
        self._attach(env, list(events))

    def _check(self, event: Event) -> None:
        if self._state >= _TRIGGERED:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._count == len(self._events):
            self.succeed(self._collect_values())


class AnyOf(Condition):
    """Fires when any sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        Event.__init__(self, env)
        self._evaluate = _any_fired
        self._attach(env, list(events))

    def _check(self, event: Event) -> None:
        if self._state >= _TRIGGERED:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect_values())


class Environment:
    """The simulation environment: clock plus event queue."""

    __slots__ = (
        "_now",
        "_queue",
        "_sequence",
        "_active_process",
        "steps_executed",
        "events_scheduled",
        "events_cancelled",
        "events_recycled",
        "_event_pool",
        "_timeout_pool",
        "_process_pool",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        # Plain-int telemetry sampled by the observability layer.
        self.steps_executed = 0
        self.events_scheduled = 0
        self.events_cancelled = 0
        self.events_recycled = 0
        # Freelists; see the module docstring for the recycling contract.
        self._event_pool: list[Event] = []
        self._timeout_pool: list[Timeout] = []
        self._process_pool: list[Process] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event (recycled when possible)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = None
            event._ok = True
            event._state = _PENDING
            event._defused = False
            event._cancelled = False
            return event
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            timeout = pool.pop()
            timeout.callbacks = []
            timeout._value = value
            timeout._ok = True
            timeout._state = _TRIGGERED
            timeout._defused = False
            timeout._cancelled = False
            timeout.delay = delay
            heappush(self._queue, (self._now + delay, self._sequence, timeout))
            self._sequence += 1
            self.events_scheduled += 1
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        pool = self._process_pool
        if pool:
            if not hasattr(generator, "throw"):
                raise SimulationError(
                    f"process() requires a generator, got {generator!r}"
                )
            process = pool.pop()
            process.callbacks = []
            process._value = None
            process._ok = True
            process._state = _PENDING
            process._defused = False
            process._cancelled = False
            process._generator = generator
            process._target = None
            self._schedule_init(process)
            return process
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1
        self.events_scheduled += 1

    def _schedule_init(self, process: Process) -> None:
        """Queue the pooled event that gives a new process its first turn."""
        init = self.event()
        init._ok = True
        init._state = _TRIGGERED
        init.callbacks.append(process._resume_cb)
        heappush(self._queue, (self._now, self._sequence, init))
        self._sequence += 1
        self.events_scheduled += 1

    def _recycle(self, event: Event) -> None:
        """Return ``event`` to its freelist if nothing else references it.

        The caller's local is expected to be the only remaining reference
        (``getrefcount == 2``: the local plus getrefcount's argument).
        Failed events reach this only once defused; the value is cleared
        so pooled objects never pin exceptions or payloads alive.
        """
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        elif cls is Process:
            pool = self._process_pool
        else:
            return
        if getrefcount(event) == 3 and len(pool) < _POOL_CAP:
            event._value = None
            if cls is Process:
                event._generator = None
            pool.append(event)
            self.events_recycled += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event (cancelled entries are dropped)."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heappop(self._queue)
        if event._cancelled:
            event.callbacks = None
            event._state = _PROCESSED
            self.events_cancelled += 1
            self._recycle(event)
            return
        self.steps_executed += 1
        event._run_callbacks()
        if not event._ok and not event._defused:
            raise event._value
        self._recycle(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run until the clock reaches it), or an :class:`Event` (run until
        it fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) lies in the past (now={self._now})"
                )

        # The pop/dispatch/recycle loop is inlined: at hundreds of
        # thousands of events per run the per-event method-call overhead
        # of step()/peek() is measurable.
        queue = self._queue
        event_pool = self._event_pool
        timeout_pool = self._timeout_pool
        process_pool = self._process_pool
        steps = 0
        cancelled = 0
        recycled = 0
        try:
            while queue:
                if stop_event is not None and stop_event._state == _PROCESSED:
                    break
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                self._now, _, event = heappop(queue)
                if event._cancelled:
                    # Lazy cancellation: dropped here instead of firing.
                    event.callbacks = None
                    event._state = _PROCESSED
                    cancelled += 1
                    if (
                        event.__class__ is Timeout
                        and getrefcount(event) == 2
                        and len(timeout_pool) < _POOL_CAP
                    ):
                        event._value = None
                        timeout_pool.append(event)
                        recycled += 1
                    continue
                steps += 1
                event._run_callbacks()
                if not event._ok and not event._defused:
                    raise event._value
                cls = event.__class__
                if cls is Timeout:
                    if getrefcount(event) == 2 and len(timeout_pool) < _POOL_CAP:
                        event._value = None
                        timeout_pool.append(event)
                        recycled += 1
                elif cls is Event:
                    if getrefcount(event) == 2 and len(event_pool) < _POOL_CAP:
                        event._value = None
                        event_pool.append(event)
                        recycled += 1
                elif cls is Process:
                    if getrefcount(event) == 2 and len(process_pool) < _POOL_CAP:
                        event._value = None
                        event._generator = None
                        process_pool.append(event)
                        recycled += 1
        finally:
            self.steps_executed += steps
            self.events_cancelled += cancelled
            self.events_recycled += recycled

        if stop_event is not None:
            if stop_event._state < _TRIGGERED:
                raise SimulationError(
                    "run() ran out of events before `until` event fired"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_time != float("inf"):
            self._now = stop_time
        return None
