"""Discrete-event simulation kernel.

This module implements a small, deterministic, generator-based
discrete-event simulator in the style of SimPy.  Every stateful component
of the reproduction (GPUs, PCIe links, CUDA streams, inference engines,
schedulers) runs as a :class:`Process` inside an :class:`Environment`.

Design notes
------------
* Simulated time is a float, in **seconds**.
* Events scheduled for the same time fire in scheduling order (a strictly
  increasing sequence number breaks ties), so simulations are fully
  deterministic given a seeded workload.
* Processes are plain Python generators that ``yield`` events.  When the
  event fires, the process resumes with the event's value; if the event
  failed, the exception is thrown into the generator.

Hot-path engineering (see DESIGN.md "Performance notes")
--------------------------------------------------------
* **Batched same-timestamp dispatch.**  The run loop drains every heap
  entry sharing the front timestamp into a FIFO tick batch in one pass,
  then dispatches from the batch without further heap traffic.  Events
  scheduled *for the current instant while the batch is live* (zero-delay
  triggers, process init events, immediate-resume relays) are appended to
  the batch directly and never touch the heap at all.  Because the batch
  is drained in heap (``(time, seq)``) order and every in-tick append has
  a later logical sequence than everything already in the batch, the
  global firing order is byte-identical to a pure-heap kernel.  See
  DESIGN.md for the ordering rules new event sources must follow.
* **Single-waiter fast path.**  The common case — exactly one process
  waiting on an event — stores the waiting process in the event's
  ``_waiter`` slot instead of materializing a callbacks-list entry, and
  the run loop resumes the generator inline (no bound-method dispatch).
  The callbacks list is still there for multi-waiter events, conditions,
  and external subscribers; the waiter always fires first because it is
  only installed when the callbacks list is empty (earliest attachment).
* **Callback continuations.**  Two first-class alternatives to
  generator coroutines for the highest-frequency lifecycles:
  :meth:`Environment.schedule_call` fires a plain function through the
  existing callbacks dispatch with zero generator/heap-entry overhead
  beyond the one scheduled event, and :class:`ContTask` is a process
  whose resume target is a plain bound method (a *state function*)
  instead of ``generator.send`` — it rides the single-waiter protocol
  unchanged, so a converted lifecycle consumes exactly the same events,
  sequence numbers, and firing order as the generator it replaces.
  Generator processes remain fully supported (chaos injection,
  sessions, controller ticks, tests); ContTask's ``_run_gen`` bridge
  drives a cold sub-generator (e.g. a scale-up) event-for-event without
  spawning a child process.  See DESIGN.md "Kernel fast paths" for when
  to use which, and the ordering rules both must obey.
* Every kernel object carries ``__slots__``; there are no instance dicts
  on the event path.
* :class:`Event`, :class:`Timeout`, and :class:`Process` objects are
  recycled through per-class freelists.  An object is returned to its
  pool only when the run loop holds the *sole* remaining reference
  (checked with ``sys.getrefcount``), so any event a component keeps a
  handle on — a wake event, a prefetch process, a condition sub-event —
  is never reused out from under it.  Pooled objects are reset at
  *recycle* time (restoring the emptied callbacks list in place instead
  of allocating a fresh one), so the factories only touch the fields that
  differ per use.  Failed events are recycled only after their failure
  has been defused (observed); an unobserved failure still surfaces at
  :meth:`Environment.run` with its exception intact.
* Timeouts support *lazy cancellation*: :meth:`Timeout.cancel` (and
  :meth:`Process.interrupt` orphaning a timeout) marks the heap entry
  dead, and the run loop drops it at pop time instead of re-heapifying.
* ``yield`` of an already-processed event, and :class:`AllOf`/
  :class:`AnyOf` over already-triggered events, take allocation-light
  fast paths.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "ContTask",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0  # created, not yet triggered
_TRIGGERED = 1  # value set, scheduled to fire
_PROCESSED = 2  # callbacks have run

# Per-class freelist size cap; beyond this, objects fall back to the GC.
_POOL_CAP = 4096

# Sentinel distinguishing "generator terminated" from a yielded None
# (which must surface as a SimulationError) in the inlined resume path.
_DONE = object()

# Processed marker, stored in the ``_waiter`` slot when an event is
# dispatched.  Folding "has been processed" into the slot the dispatcher
# must touch anyway saves a per-event state store on the hot path; the
# ``_state`` field stops at _TRIGGERED and public ``processed`` reads the
# sentinel instead.
_FIRED = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: *pending* (just created),
    *triggered* (a value or exception has been set and the event is
    queued), and *processed* (its callbacks have run).
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_state",
        "_defused",
        "_cancelled",
        "_waiter",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        # Failures are "defused" once some process observes them; an
        # unobserved failure surfaces at env.run() to avoid being dropped.
        self._defused = False
        # Lazy cancellation: dead heap entries are dropped at pop time.
        self._cancelled = False
        # Single-waiter fast path: the first process to wait on a
        # callback-free event parks here and is resumed inline by the
        # run loop.  Always fires before the callbacks list.
        self._waiter: Optional[Process] = None

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value (or exception) has been set."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._waiter is _FIRED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._state < _TRIGGERED:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._state < _TRIGGERED:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state >= _TRIGGERED:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        heappush(env._queue, (env._now, env._sequence, self))
        env._sequence += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is pinned to the event until some waiter observes
        (defuses) it; undefused failures are never recycled, so the
        traceback survives to surface at :meth:`Environment.run`.
        """
        if self._state >= _TRIGGERED:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        env = self.env
        heappush(env._queue, (env._now, env._sequence, self))
        env._sequence += 1
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event."""
        if event._ok or event._cancelled:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    # -- internal --------------------------------------------------------
    def _fire(self) -> None:
        """Mark processed and run the waiter plus any listed callbacks.

        Generic (non-inlined) dispatch, used by :meth:`Environment.step`
        and anything else outside the run loop.  The ``_waiter`` process
        resumes first — it is only ever installed when the callbacks list
        is empty, so waiter-then-list is exactly attachment order.
        """
        waiter = self._waiter
        self._waiter = _FIRED
        if waiter is not None:
            waiter._resume(self)
        callbacks = self.callbacks
        if callbacks:
            # Detach while running so re-entrant attachment attempts fail
            # loudly instead of mutating the list under iteration.
            self.callbacks = None
            for callback in callbacks:
                callback(self)
            callbacks.clear()
            self.callbacks = callbacks

    # Backwards-compatible alias (pre-batching name).
    _run_callbacks = _fire

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        Event.__init__(self, env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        heappush(env._queue, (env._now + delay, env._sequence, self))
        env._sequence += 1

    def cancel(self) -> bool:
        """Lazily cancel this timeout.

        The heap entry stays where it is; the run loop drops it at pop
        time without firing callbacks (and without counting a step).
        Returns True if the timeout was still pending, False if it had
        already been processed (in which case this is a no-op).
        """
        if self._waiter is _FIRED:
            return False
        # A cancelled entry reads as not-ok so the dispatcher's existing
        # success branch doubles as the cancellation check; the dropped
        # entry never throws (the _cancelled flag is tested first).
        self._ok = False
        self._cancelled = True
        return True

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The process's value is the generator's return value; if the generator
    raises, waiting processes observe the exception.
    """

    __slots__ = ("_generator", "_send", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}"
            )
        Event.__init__(self, env)
        self._generator = generator
        # Bound-method cache: one attribute load per resume instead of two.
        self._send = generator.send
        self._target: Optional[Event] = None
        # Bind the resume callback once; every wait reuses it instead of
        # materializing a fresh bound method per yield.
        self._resume_cb = self._resume
        env._schedule_init(self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._state < _TRIGGERED

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is rescheduled immediately; the event it was waiting
        on is left un-consumed (it no longer resumes this process).  An
        orphaned :class:`Timeout` — one no waiter remains attached to —
        is lazily cancelled so the run loop can drop it at pop time
        instead of firing it.
        """
        if self._state >= _TRIGGERED:
            raise SimulationError("cannot interrupt a terminated process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process that is not waiting")
        env = self.env
        interrupt_event = env.event()
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event._state = _TRIGGERED
        # Detach from the old target so its firing does not resume us.
        target = self._target
        if target._waiter is self:
            target._waiter = None
            if not target.callbacks and type(target) is Timeout:
                target._ok = False
                target._cancelled = True
        else:
            callbacks = target.callbacks
            if callbacks is not None and self._resume_cb in callbacks:
                callbacks.remove(self._resume_cb)
                if (
                    not callbacks
                    and target._waiter is None
                    and type(target) is Timeout
                ):
                    target._ok = False
                    target._cancelled = True
        self._target = None
        interrupt_event._waiter = self
        env._enqueue(interrupt_event)

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_event = self._send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        try:
            waiter_slot = next_event._waiter
        except AttributeError:
            raise SimulationError(
                f"process yielded a non-event: {next_event!r}"
            ) from None
        if waiter_slot is None and not next_event.callbacks:
            next_event._waiter = self
            self._target = next_event
            return
        if waiter_slot is not _FIRED:
            next_event.callbacks.append(self._resume_cb)
            self._target = next_event
            return
        # Already processed: resume immediately with its value, via a
        # pooled relay event so ordering against the queue is kept.
        resume = env.event()
        ok = next_event._ok
        resume._ok = ok
        resume._value = next_event._value
        if not ok:
            next_event._defused = True
            resume._defused = True
        resume._state = _TRIGGERED
        resume._waiter = self
        heappush(env._queue, (env._now, env._sequence, resume))
        env._sequence += 1
        self._target = resume


class ContTask(Process):
    """A process driven by continuation *state functions*, not a generator.

    Subclasses override :meth:`_start` and transition by assigning
    ``self._send`` before returning the next event to wait on.  Each
    state function receives the fired event's value and must either

    * return the next :class:`Event` to wait on (after pointing
      ``self._send`` at the state that should receive its value), or
    * raise :class:`StopIteration` (optionally with a value) to
      terminate the task, succeeding it like a returning generator.

    The run loop cannot tell a ContTask from a generator process: the
    ``_send`` slot it dispatches through is simply a bound state method,
    and the ``_generator`` slot points back at the task so failed waits
    arrive via :meth:`throw`.  Construction schedules the same init
    event as ``env.process``, termination consumes the same ``succeed``
    schedule, and every wait maps 1:1 onto an event — so converting a
    lifecycle from a generator to a ContTask is invisible to event
    counts, sequence numbers, and firing order.  The payoff is the
    resume itself: one plain method call instead of a ``send`` that
    re-enters an N-deep ``yield from`` chain.

    Cold multi-wait sub-operations can stay generators: ``_run_gen``
    drives one *inline* (no child process, no extra events), delegating
    resumes straight into the sub-generator's frame exactly like
    ``yield from`` did.
    """

    __slots__ = ("_gen", "_gen_done", "_gen_err")

    def __init__(self, env: "Environment"):
        Event.__init__(self, env)
        self._generator = self
        self._send = self._start
        self._target: Optional[Event] = None
        self._resume_cb = self._resume
        # Bridged sub-generator state (see _run_gen).
        self._gen: Optional[Generator] = None
        self._gen_done: Optional[Callable[[Any], Event]] = None
        self._gen_err: Optional[Callable[[BaseException], Event]] = None
        env._schedule_init(self)

    # -- subclass interface ----------------------------------------------
    def _start(self, value: Any) -> Event:
        """First state, fired by the init event (``value`` is ``None``)."""
        raise NotImplementedError

    def _on_throw(self, exc: BaseException) -> Event:
        """Handle a failed wait outside a bridge (default: let it fail).

        Mirrors an uncaught exception at a ``yield``: re-raising fails
        the task.  Subclasses override to implement handlers like the
        instance loops' ``except Interrupt: return``.
        """
        raise exc

    # -- generator bridge -------------------------------------------------
    def _run_gen(
        self,
        gen: Generator,
        done: Callable[[Any], Event],
        err: Optional[Callable[[BaseException], Event]] = None,
    ) -> Event:
        """Drive ``gen`` inline, event-for-event, as ``yield from`` did.

        ``done(result)`` runs when the sub-generator returns; ``err(exc)``
        when an exception escapes it (after its ``finally``/``with``
        blocks ran).  Both are state functions: they must set ``_send``
        and return the next event (or raise StopIteration).  With no
        ``err``, escaped exceptions route through :meth:`_on_throw`.
        """
        try:
            first = gen.send(None)
        except StopIteration as stop:
            return done(stop.value)
        except BaseException as exc:
            if err is not None:
                return err(exc)
            return self._on_throw(exc)
        self._gen = gen
        self._gen_done = done
        self._gen_err = err
        self._send = self._gen_step
        return first

    def _gen_finish(self, value: Any) -> Event:
        self._gen = None
        done = self._gen_done
        self._gen_done = None
        self._gen_err = None
        return done(value)

    def _gen_error(self, exc: BaseException) -> Event:
        self._gen = None
        err = self._gen_err
        self._gen_done = None
        self._gen_err = None
        if err is not None:
            return err(exc)
        return self._on_throw(exc)

    def _gen_step(self, value: Any) -> Event:
        try:
            return self._gen.send(value)
        except StopIteration as stop:
            return self._gen_finish(stop.value)
        except BaseException as exc:
            return self._gen_error(exc)

    # -- kernel interface --------------------------------------------------
    def throw(self, exc: BaseException) -> Event:
        """Dispatch a failed wait (the ``_generator.throw`` protocol).

        While bridging, the exception is thrown into the sub-generator
        frame first so its cleanup runs — identical to the interrupt
        unwinding through a ``yield from`` chain; whatever escapes is
        routed like any other bridge error.  Outside a bridge, plain
        states delegate to :meth:`_on_throw`.
        """
        gen = self._gen
        if gen is not None:
            try:
                return gen.throw(exc)
            except StopIteration as stop:
                return self._gen_finish(stop.value)
            except BaseException as chained:
                return self._gen_error(chained)
        return self._on_throw(exc)


def _all_fired(events: list[Event], count: int) -> bool:
    """Evaluate for :class:`AllOf`: every sub-event has fired."""
    return count == len(events)


def _any_fired(events: list[Event], count: int) -> bool:
    """Evaluate for :class:`AnyOf`: at least one sub-event has fired."""
    return count >= 1


class Condition(Event):
    """An event that fires once ``evaluate`` holds over its sub-events."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        Event.__init__(self, env)
        self._evaluate = evaluate
        self._attach(env, list(events))

    def _attach(self, env: "Environment", events: list[Event]) -> None:
        self._events = events
        self._count = 0
        for event in events:
            if event.env is not env:
                raise SimulationError("conditions cannot span environments")

        if not events:
            self.succeed(self._collect_values())
            return
        check = self._check
        for event in events:
            if event._waiter is _FIRED:
                # Fast path: the sub-event already fired; account for it
                # now instead of queueing anything.
                check(event)
            else:
                event.callbacks.append(check)

    def _collect_values(self) -> dict[Event, Any]:
        return {
            event: event._value
            for event in self._events
            if event._waiter is _FIRED and event._ok
        }

    def _check(self, event: Event) -> None:
        if self._state >= _TRIGGERED:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Fires when all sub-events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        Event.__init__(self, env)
        self._evaluate = _all_fired
        self._attach(env, list(events))

    def _check(self, event: Event) -> None:
        if self._state >= _TRIGGERED:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._count == len(self._events):
            self.succeed(self._collect_values())


class AnyOf(Condition):
    """Fires when any sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        Event.__init__(self, env)
        self._evaluate = _any_fired
        self._attach(env, list(events))

    def _check(self, event: Event) -> None:
        if self._state >= _TRIGGERED:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect_values())


def _make_event_factory(env: "Environment"):
    """Build the bound ``env.event`` closure.

    The factories are closures rather than methods so the hot-path
    lookups (freelist, heap, heappush) are default-arg locals resolved
    once at bind time instead of attribute loads on every call.
    """

    def event(_env=env, _pool=env._event_pool) -> Event:
        """Create a new, untriggered event (recycled when possible)."""
        if _pool:
            ev = _pool.pop()
            ev._state = _PENDING
            return ev
        return Event(_env)

    return event


def _make_timeout_factory(env: "Environment"):
    """Build the bound ``env.timeout`` closure."""

    def timeout(
        delay: float,
        value: Any = None,
        _env=env,
        _pool=env._timeout_pool,
        _queue=env._queue,
        _push=heappush,
    ) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        if _pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            # Invariant: a pooled Timeout still holds _state == _TRIGGERED
            # from its previous life (dispatch never downgrades it), so
            # the factory does not re-store it.
            timeout = _pool.pop()
            timeout.delay = delay
            if value is not None:
                timeout._value = value
            seq = _env._sequence
            _push(_queue, (_env._now + delay, seq, timeout))
            _env._sequence = seq + 1
            return timeout
        return Timeout(_env, delay, value)

    return timeout


def _make_process_factory(env: "Environment"):
    """Build the bound ``env.process`` closure."""

    def process(
        generator: Generator,
        _env=env,
        _pool=env._process_pool,
        _event_pool=env._event_pool,
        _queue=env._queue,
        _push=heappush,
    ) -> Process:
        """Start a new process from a generator."""
        if _pool:
            if not hasattr(generator, "throw"):
                raise SimulationError(
                    f"process() requires a generator, got {generator!r}"
                )
            process = _pool.pop()
            process._state = _PENDING
            process._generator = generator
            process._send = generator.send
            if _event_pool:
                # Pooled events keep _state == _TRIGGERED and _ok == True
                # from recycling; only fresh ones need the stores.
                init = _event_pool.pop()
            else:
                init = Event(_env)
                init._state = _TRIGGERED
            init._waiter = process
            seq = _env._sequence
            _push(_queue, (_env._now, seq, init))
            _env._sequence = seq + 1
            return process
        return Process(_env, generator)

    return process


def _make_schedule_call_factory(env: "Environment"):
    """Build the bound ``env.schedule_call`` closure."""

    def schedule_call(
        fn: Callable[[Event], None],
        delay: float = 0.0,
        value: Any = None,
        _env=env,
        _pool=env._event_pool,
        _queue=env._queue,
        _push=heappush,
    ) -> Event:
        """Schedule plain function ``fn(event)`` to fire after ``delay``.

        The cheapest event source in the kernel: one pooled, already-
        triggered event whose callbacks list carries ``fn`` — no
        generator frame, no waiter hand-off, no process bookkeeping.
        It fires in the same (time, seq) order a Timeout scheduled at
        the same instant would, drains inside the batched
        same-timestamp tick like every other event, and is recycled as
        soon as it has fired (do not keep triggering references to it).
        """
        if delay < 0:
            raise SimulationError(f"negative schedule_call delay: {delay}")
        if _pool:
            # Pooled events keep _state == _TRIGGERED and _ok == True.
            event = _pool.pop()
        else:
            event = Event(_env)
            event._state = _TRIGGERED
        if value is not None:
            event._value = value
        event.callbacks.append(fn)
        seq = _env._sequence
        _push(_queue, (_env._now + delay, seq, event))
        _env._sequence = seq + 1
        return event

    return schedule_call


class Environment:
    """The simulation environment: clock plus event queue."""

    __slots__ = (
        "_now",
        "_queue",
        "_tick",
        "_sequence",
        "_reseq",
        "_active_process",
        "steps_executed",
        "events_cancelled",
        "events_recycled",
        "_event_pool",
        "_timeout_pool",
        "_process_pool",
        # Bound factory closures (see _make_*_factory).
        "event",
        "timeout",
        "process",
        "schedule_call",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        # The live tick batch: all events firing at the current instant,
        # in (time, seq) order.  Non-empty only inside run(); anything
        # left over (early exit, surfaced failure) is flushed back to the
        # heap so external observers never see a half-drained tick.
        self._tick: deque[Event] = deque()
        self._sequence = 0
        # Sequence numbers consumed by tick flush-backs (re-scheduling,
        # not scheduling); discounts the events_scheduled telemetry.
        self._reseq = 0
        self._active_process: Optional[Process] = None
        # Plain-int telemetry sampled by the observability layer.
        self.steps_executed = 0
        self.events_cancelled = 0
        self.events_recycled = 0
        # Freelists; see the module docstring for the recycling contract.
        self._event_pool: list[Event] = []
        self._timeout_pool: list[Timeout] = []
        self._process_pool: list[Process] = []
        # Factories are per-instance closures over the pools and heap.
        self.event = _make_event_factory(self)
        self.timeout = _make_timeout_factory(self)
        self.process = _make_process_factory(self)
        self.schedule_call = _make_schedule_call_factory(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (telemetry).

        Every schedule consumes one sequence number, so the count is
        derived instead of maintained on the hot path; the only
        non-scheduling consumers of the sequence counter are tick
        flush-backs, discounted via ``_reseq``.
        """
        return self._sequence - self._reseq

    # -- factories ---------------------------------------------------------
    # event/timeout/process are instance closures bound in __init__; the
    # pooled objects they hand out are reset at recycle time (callbacks
    # == [], value/ok/defused/cancelled/waiter cleared), so the factories
    # only set what differs per use.
    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def _schedule_init(self, process: Process) -> None:
        """Queue the pooled event that gives a new process its first turn."""
        init = self.event()
        init._ok = True
        init._state = _TRIGGERED
        init._waiter = process
        heappush(self._queue, (self._now, self._sequence, init))
        self._sequence += 1

    def _recycle(self, event: Event) -> None:
        """Return ``event`` to its freelist if nothing else references it.

        The caller's local is expected to be the only remaining reference
        (``getrefcount == 2``: the local plus getrefcount's argument).
        Failed events reach this only once defused; the reset clears the
        value so pooled objects never pin exceptions or payloads alive.
        """
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        elif cls is Event:
            pool = self._event_pool
        elif cls is Process:
            pool = self._process_pool
        else:
            return
        if getrefcount(event) == 3 and len(pool) < _POOL_CAP:
            cbs = event.callbacks
            if cbs is None:
                event.callbacks = []
            elif cbs:
                cbs.clear()
            event._value = None
            event._ok = True
            event._defused = False
            event._cancelled = False
            event._waiter = None
            if cls is Process:
                event._generator = None
                event._send = None
                event._target = None
            pool.append(event)
            self.events_recycled += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event (cancelled entries are dropped)."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heappop(self._queue)
        if event._cancelled:
            event._waiter = _FIRED
            self.events_cancelled += 1
            self._recycle(event)
            return
        self.steps_executed += 1
        event._fire()
        if not event._ok and not event._defused:
            raise event._value
        self._recycle(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run until the clock reaches it), or an :class:`Event` (run until
        it fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) lies in the past (now={self._now})"
                )

        # The tick-drain/dispatch/recycle loop is fully inlined, twice: a
        # tight variant for run() (no stop conditions — the kernel
        # benchmark path) and a general variant for run(until=...).  At
        # millions of events per run the per-event cost of method calls
        # and dead stop checks is measurable; keep the two bodies in
        # sync when touching either.
        #
        # Step accounting is derived, not maintained: every heap push
        # consumes one sequence number, so pops over this run window are
        #   len_before + pushes - len_after
        # and fired steps are pops minus lazily-dropped cancellations.
        queue = self._queue
        tick = self._tick
        event_pool = self._event_pool
        timeout_pool = self._timeout_pool
        process_pool = self._process_pool
        pop = heappop
        refs = getrefcount
        cancelled = 0
        recycled = 0
        len_before = len(queue) + len(tick)
        seq_before = self._sequence
        try:
            if stop_event is None and stop_time == float("inf"):
                # -- tight loop: drain everything ------------------------
                # No tick batching here: bare run() is the kernel
                # micro-benchmark path where timestamps are almost all
                # distinct, and heap (time, seq) order alone already
                # yields the deterministic firing order.  Same-instant
                # batching lives in the general loop below, which is
                # what serving/fleet/chaos drive via run(until=...).
                while queue:
                    when, _, event = pop(queue)
                    self._now = when
                    # The processed marker (_waiter = _FIRED) is stored
                    # lazily: before callbacks run, on lazy-cancel drops,
                    # and on events that survive recycling.  An event
                    # recycled in this same iteration is unobservable in
                    # between, so the hot path skips the store entirely.
                    waiter = event._waiter
                    if waiter is not None:
                        # Inline single-waiter resume (the hot path).
                        if event._ok:
                            self._active_process = waiter
                            try:
                                nxt = waiter._send(event._value)
                            except StopIteration as stop:
                                waiter._target = None
                                waiter.succeed(stop.value)
                                nxt = _DONE
                            except BaseException as exc:
                                waiter._target = None
                                waiter.fail(exc)
                                nxt = _DONE
                        elif event._cancelled:
                            # Lazy cancellation: dropped, never fired; a
                            # parked waiter stays parked (its _target ref
                            # also keeps the event off the freelist).
                            event._waiter = _FIRED
                            cancelled += 1
                            continue
                        else:
                            self._active_process = waiter
                            event._defused = True
                            try:
                                nxt = waiter._generator.throw(event._value)
                            except StopIteration as stop:
                                waiter._target = None
                                waiter.succeed(stop.value)
                                nxt = _DONE
                            except BaseException as exc:
                                waiter._target = None
                                waiter.fail(exc)
                                nxt = _DONE
                        if nxt is not _DONE:
                            try:
                                wslot = nxt._waiter
                            except AttributeError:
                                raise SimulationError(
                                    f"process yielded a non-event: {nxt!r}"
                                ) from None
                            if wslot is None:
                                if not nxt.callbacks:
                                    nxt._waiter = waiter
                                else:
                                    nxt.callbacks.append(waiter._resume_cb)
                                waiter._target = nxt
                            elif wslot is not _FIRED:
                                nxt.callbacks.append(waiter._resume_cb)
                                waiter._target = nxt
                            else:
                                # Already processed: relay at this instant.
                                if event_pool:
                                    relay = event_pool.pop()
                                else:
                                    relay = Event(self)
                                ok = nxt._ok
                                relay._ok = ok
                                relay._value = nxt._value
                                if not ok:
                                    nxt._defused = True
                                    relay._defused = True
                                relay._state = _TRIGGERED
                                relay._waiter = waiter
                                heappush(
                                    queue, (self._now, self._sequence, relay)
                                )
                                self._sequence += 1
                                waiter._target = relay
                        cbs = event.callbacks
                        if cbs:
                            event._waiter = _FIRED
                            self._active_process = None
                            event.callbacks = None
                            for callback in cbs:
                                callback(event)
                            cbs.clear()
                            event.callbacks = cbs
                        # A failed event resumed a waiter above, which
                        # defused it; no unobserved-failure check needed.
                    elif event._ok:
                        event._waiter = _FIRED
                        cbs = event.callbacks
                        if cbs:
                            self._active_process = None
                            event.callbacks = None
                            for callback in cbs:
                                callback(event)
                            cbs.clear()
                            event.callbacks = cbs
                    elif event._cancelled:
                        cancelled += 1
                        if event.__class__ is Timeout and refs(event) == 2:
                            cbs = event.callbacks
                            if cbs:
                                cbs.clear()
                            event._value = None
                            event._ok = True
                            event._cancelled = False
                            event._waiter = None
                            timeout_pool.append(event)
                            recycled += 1
                        else:
                            event._waiter = _FIRED
                        continue
                    else:
                        event._waiter = _FIRED
                        cbs = event.callbacks
                        if cbs:
                            self._active_process = None
                            event.callbacks = None
                            for callback in cbs:
                                callback(event)
                            cbs.clear()
                            event.callbacks = cbs
                        if not event._defused:
                            raise event._value
                    cls = event.__class__
                    if cls is Timeout:
                        if refs(event) == 2:
                            event._value = None
                            event._waiter = None
                            if not event._ok:
                                event._ok = True
                                event._defused = False
                            timeout_pool.append(event)
                            recycled += 1
                        else:
                            event._waiter = _FIRED
                    elif cls is Event:
                        if refs(event) == 2:
                            event._value = None
                            event._waiter = None
                            if not event._ok:
                                event._ok = True
                                event._defused = False
                            event_pool.append(event)
                            recycled += 1
                        else:
                            event._waiter = _FIRED
                    elif cls is Process:
                        if refs(event) == 2:
                            event._value = None
                            event._waiter = None
                            if not event._ok:
                                event._ok = True
                                event._defused = False
                            event._generator = None
                            event._send = None
                            event._target = None
                            process_pool.append(event)
                            recycled += 1
                        else:
                            event._waiter = _FIRED
                    else:
                        event._waiter = _FIRED
            else:
                # -- general loop: stop on time or event -----------------
                while True:
                    if stop_event is not None and stop_event._waiter is _FIRED:
                        break
                    if tick:
                        event = tick.popleft()
                    elif queue:
                        if queue[0][0] > stop_time:
                            self._now = stop_time
                            return None
                        when, _, event = pop(queue)
                        self._now = when
                        if queue and queue[0][0] == when:
                            append = tick.append
                            while queue and queue[0][0] == when:
                                append(pop(queue)[2])
                    else:
                        break
                    waiter = event._waiter
                    if waiter is not None:
                        if event._ok:
                            self._active_process = waiter
                            try:
                                nxt = waiter._send(event._value)
                            except StopIteration as stop:
                                waiter._target = None
                                waiter.succeed(stop.value)
                                nxt = _DONE
                            except BaseException as exc:
                                waiter._target = None
                                waiter.fail(exc)
                                nxt = _DONE
                        elif event._cancelled:
                            event._waiter = _FIRED
                            cancelled += 1
                            continue
                        else:
                            self._active_process = waiter
                            event._defused = True
                            try:
                                nxt = waiter._generator.throw(event._value)
                            except StopIteration as stop:
                                waiter._target = None
                                waiter.succeed(stop.value)
                                nxt = _DONE
                            except BaseException as exc:
                                waiter._target = None
                                waiter.fail(exc)
                                nxt = _DONE
                        if nxt is not _DONE:
                            try:
                                wslot = nxt._waiter
                            except AttributeError:
                                raise SimulationError(
                                    f"process yielded a non-event: {nxt!r}"
                                ) from None
                            if wslot is None:
                                if not nxt.callbacks:
                                    nxt._waiter = waiter
                                else:
                                    nxt.callbacks.append(waiter._resume_cb)
                                waiter._target = nxt
                            elif wslot is not _FIRED:
                                nxt.callbacks.append(waiter._resume_cb)
                                waiter._target = nxt
                            else:
                                if event_pool:
                                    relay = event_pool.pop()
                                else:
                                    relay = Event(self)
                                ok = nxt._ok
                                relay._ok = ok
                                relay._value = nxt._value
                                if not ok:
                                    nxt._defused = True
                                    relay._defused = True
                                relay._state = _TRIGGERED
                                relay._waiter = waiter
                                heappush(
                                    queue, (self._now, self._sequence, relay)
                                )
                                self._sequence += 1
                                waiter._target = relay
                        cbs = event.callbacks
                        if cbs:
                            event._waiter = _FIRED
                            self._active_process = None
                            event.callbacks = None
                            for callback in cbs:
                                callback(event)
                            cbs.clear()
                            event.callbacks = cbs
                    elif event._ok:
                        event._waiter = _FIRED
                        cbs = event.callbacks
                        if cbs:
                            self._active_process = None
                            event.callbacks = None
                            for callback in cbs:
                                callback(event)
                            cbs.clear()
                            event.callbacks = cbs
                    elif event._cancelled:
                        cancelled += 1
                        if event.__class__ is Timeout and refs(event) == 2:
                            cbs = event.callbacks
                            if cbs:
                                cbs.clear()
                            event._value = None
                            event._ok = True
                            event._cancelled = False
                            event._waiter = None
                            timeout_pool.append(event)
                            recycled += 1
                        else:
                            event._waiter = _FIRED
                        continue
                    else:
                        event._waiter = _FIRED
                        cbs = event.callbacks
                        if cbs:
                            self._active_process = None
                            event.callbacks = None
                            for callback in cbs:
                                callback(event)
                            cbs.clear()
                            event.callbacks = cbs
                        if not event._defused:
                            raise event._value
                    cls = event.__class__
                    if cls is Timeout:
                        if refs(event) == 2:
                            event._value = None
                            event._waiter = None
                            if not event._ok:
                                event._ok = True
                                event._defused = False
                            timeout_pool.append(event)
                            recycled += 1
                        else:
                            event._waiter = _FIRED
                    elif cls is Event:
                        if refs(event) == 2:
                            event._value = None
                            event._waiter = None
                            if not event._ok:
                                event._ok = True
                                event._defused = False
                            event_pool.append(event)
                            recycled += 1
                        else:
                            event._waiter = _FIRED
                    elif cls is Process:
                        if refs(event) == 2:
                            event._value = None
                            event._waiter = None
                            if not event._ok:
                                event._ok = True
                                event._defused = False
                            event._generator = None
                            event._send = None
                            event._target = None
                            process_pool.append(event)
                            recycled += 1
                        else:
                            event._waiter = _FIRED
                    else:
                        event._waiter = _FIRED
        finally:
            self._active_process = None
            # A half-drained tick (early break, surfaced failure) goes
            # back to the heap in FIFO order; the heap holds nothing at
            # the current instant with a smaller sequence, so fresh
            # sequence numbers preserve the original firing order.
            # Re-scheduling, not scheduling: _reseq discounts these from
            # the events_scheduled telemetry.  Each flush-back adds one
            # push and one queue entry, cancelling out of the derived
            # pop count below.
            while tick:
                heappush(queue, (self._now, self._sequence, tick.popleft()))
                self._sequence += 1
                self._reseq += 1
            # Pool caps are enforced once per run instead of per recycle
            # in the hot loop; overflow falls back to the GC here.
            del timeout_pool[_POOL_CAP:]
            del event_pool[_POOL_CAP:]
            del process_pool[_POOL_CAP:]
            pops = len_before + (self._sequence - seq_before) - len(queue)
            self.steps_executed += pops - cancelled
            self.events_cancelled += cancelled
            self.events_recycled += recycled

        if stop_event is not None:
            if stop_event._state < _TRIGGERED:
                raise SimulationError(
                    "run() ran out of events before `until` event fired"
                )
            if stop_event._cancelled:
                # A cancelled stop event never fires; historically this
                # drains to exhaustion and reports no value.
                return None
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_time != float("inf"):
            self._now = stop_time
        return None
