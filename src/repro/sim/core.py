"""Discrete-event simulation kernel.

This module implements a small, deterministic, generator-based
discrete-event simulator in the style of SimPy.  Every stateful component
of the reproduction (GPUs, PCIe links, CUDA streams, inference engines,
schedulers) runs as a :class:`Process` inside an :class:`Environment`.

Design notes
------------
* Simulated time is a float, in **seconds**.
* Events scheduled for the same time fire in scheduling order (a strictly
  increasing sequence number breaks ties), so simulations are fully
  deterministic given a seeded workload.
* Processes are plain Python generators that ``yield`` events.  When the
  event fires, the process resumes with the event's value; if the event
  failed, the exception is thrown into the generator.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0  # created, not yet triggered
_TRIGGERED = 1  # value set, scheduled to fire
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: *pending* (just created),
    *triggered* (a value or exception has been set and the event is
    queued), and *processed* (its callbacks have run).
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        # Failures are "defused" once some process observes them; an
        # unobserved failure surfaces at env.run() to avoid being dropped.
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value (or exception) has been set."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.env._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.env._enqueue(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defused = True
            self.fail(event._value)

    # -- internal --------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env._enqueue(self, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._state = _TRIGGERED
        env._enqueue(self)


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The process's value is the generator's return value; if the generator
    raises, waiting processes observe the exception.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process() requires a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process is rescheduled immediately; the event it was waiting
        on is left un-consumed (its callbacks no longer include this
        process).
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process that is not waiting")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event._state = _TRIGGERED
        # Detach from the old target so its firing does not resume us.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        interrupt_event.callbacks = [self._resume]
        self.env._enqueue(interrupt_event)

    # -- internal --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded a non-event: {next_event!r}"
            )
        if next_event.callbacks is None:
            # Already processed: resume immediately with its value.
            resume = Event(self.env)
            resume._ok = next_event._ok
            resume._value = next_event._value
            if not next_event._ok:
                next_event._defused = True
                resume._defused = True
            resume._state = _TRIGGERED
            resume.callbacks = [self._resume]
            self.env._enqueue(resume)
            self._target = resume
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event


class Condition(Event):
    """An event that fires once ``evaluate`` holds over its sub-events."""

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("conditions cannot span environments")

        if not self._events:
            self.succeed(self._collect_values())
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> dict[Event, Any]:
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Fires when all sub-events have fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count == len(events), events)


class AnyOf(Condition):
    """Fires when any sub-event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= 1, events)


class Environment:
    """The simulation environment: clock plus event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        # Plain-int telemetry sampled by the observability layer.
        self.steps_executed = 0
        self.events_scheduled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1
        self.events_scheduled += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heapq.heappop(self._queue)
        self.steps_executed += 1
        event._run_callbacks()
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run until the clock reaches it), or an :class:`Event` (run until
        it fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) lies in the past (now={self._now})"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run() ran out of events before `until` event fired"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_time != float("inf"):
            self._now = stop_time
        return None
