"""Host-memory model cache (§5.2, Figure 9).

Each node keeps a shared DRAM region — the *Model Cache* — holding raw
tensor chunks of recently used checkpoints, so scale-ups load weights
from host memory instead of the remote registry.  Entries are managed
with LRU eviction; models being actively loaded are pinned so they
cannot be evicted mid-copy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..obs import NULL_OBS, Observability

__all__ = ["CacheEntry", "HostModelCache"]


@dataclass
class CacheEntry:
    """One cached checkpoint."""

    model: str
    nbytes: int
    pins: int = 0


class HostModelCache:
    """LRU cache of model checkpoints in host DRAM."""

    def __init__(
        self,
        capacity_bytes: int,
        name: str = "model_cache",
        obs: Observability = NULL_OBS,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.name = name
        scope = obs.scoped(name)
        self._hit_counter = scope.counter("hits")
        self._miss_counter = scope.counter("misses")
        self._eviction_counter = scope.counter("evictions")
        if obs.enabled:
            scope.gauge("used_bytes").set_fn(lambda: self.used_bytes)
            scope.gauge("resident_models").set_fn(lambda: len(self._entries))

    @property
    def used_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def contains(self, model: str) -> bool:
        """True if the checkpoint is resident (does not touch LRU order)."""
        return model in self._entries

    def lookup(self, model: str) -> bool:
        """Probe for ``model``, recording a hit or miss and touching LRU."""
        if model in self._entries:
            self._entries.move_to_end(model)
            self.hits += 1
            self._hit_counter.inc()
            return True
        self.misses += 1
        self._miss_counter.inc()
        return False

    def insert(self, model: str, nbytes: int) -> list[str]:
        """Insert a checkpoint, evicting LRU entries as needed.

        Returns the names of evicted models.  Raises ``MemoryError`` if
        the checkpoint cannot fit even after evicting every unpinned
        entry.
        """
        if nbytes > self.capacity_bytes:
            raise MemoryError(
                f"checkpoint {model!r} ({nbytes} bytes) exceeds cache "
                f"capacity ({self.capacity_bytes})"
            )
        if model in self._entries:
            self._entries.move_to_end(model)
            return []
        evicted: list[str] = []
        while self.free_bytes < nbytes:
            victim = self._find_victim()
            if victim is None:
                raise MemoryError(
                    f"cannot fit {model!r}: {nbytes} bytes needed, "
                    f"{self.free_bytes} free and all entries pinned"
                )
            evicted.append(victim)
            del self._entries[victim]
            self.evictions += 1
            self._eviction_counter.inc()
        self._entries[model] = CacheEntry(model=model, nbytes=nbytes)
        return evicted

    def pin(self, model: str) -> None:
        """Protect an entry from eviction (e.g. during a staged copy)."""
        self._entries[model].pins += 1

    def unpin(self, model: str) -> None:
        """Release one pin."""
        entry = self._entries[model]
        if entry.pins <= 0:
            raise ValueError(f"{model!r} is not pinned")
        entry.pins -= 1

    def _find_victim(self) -> str | None:
        for model, entry in self._entries.items():  # LRU first
            if entry.pins == 0:
                return model
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<HostModelCache {len(self)} models, "
            f"{self.used_bytes}/{self.capacity_bytes} bytes>"
        )
