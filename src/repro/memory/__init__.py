"""Explicit memory management (§5.2): bump buffer, slab cache, model cache."""

from .bump import BumpAllocation, BumpAllocator
from .model_cache import CacheEntry, HostModelCache
from .slab import KvBlock, ShapeStats, Slab, SlabAllocator

__all__ = [
    "BumpAllocation",
    "BumpAllocator",
    "CacheEntry",
    "HostModelCache",
    "KvBlock",
    "ShapeStats",
    "Slab",
    "SlabAllocator",
]
