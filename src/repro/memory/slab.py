"""Slab-allocated unified KV cache (§5.2, Figure 9 bottom).

KV-cache block sizes vary 20x across models (Table 1), so a unified
cache serving many models cannot pre-carve fixed per-shape pools without
fragmenting.  Aegaeon divides each cache region (VRAM or DRAM) into
fixed-size *slabs*; a slab is dynamically assigned to one KV shape and
serves fixed-size blocks of that shape until every block is freed, at
which point the slab returns to the shared free pool.

This module is a real allocator: every block handed out is a distinct
:class:`KvBlock` with a stable address, double-free and cross-shape
accounting is enforced, and the fragmentation statistics behind the
paper's Figure 16 are measured from live state.

Hot-path design (the allocator sits on the per-decode-round path of
every instance):

* **Block arena** — ``KvBlock`` is immutable, so each slab memoizes the
  blocks it has ever minted (lazily, per index) and hands the same
  object out on every reuse.  Steady-state allocation does zero tuple
  construction.
* **Consolidated per-shape state** — block size, free-block total,
  availability list, and assigned-slab list live in one ``_ShapeRec``,
  fetched with a single dict lookup per ``alloc``; the free path
  reaches it through ``Slab._rec`` with no hashing.  ``capacity_for``
  reads the incrementally-maintained free total and never scans slabs.
* **Availability lists** — per-shape lists of slabs that still have
  free blocks, compacted lazily during allocation, so ``alloc`` never
  iterates full slabs.  Stale entries (slab released or reassigned) are
  recognised by ``Slab._avail_shape`` and dropped on sight.
* **Bitmap occupancy** — per-slab ``bytearray`` occupancy plus an
  integer count replace the old per-slab ``set``; double-free detection
  is one index probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, NamedTuple, Optional

from ..obs import NULL_OBS, Observability

__all__ = ["KvBlock", "Slab", "SlabAllocator", "ShapeStats"]


class KvBlock(NamedTuple):
    """One KV-cache block (a fixed number of tokens of one shape).

    A NamedTuple rather than a frozen dataclass: blocks are minted on
    the allocator's hottest path and tuple construction is several times
    cheaper than ``object.__setattr__`` per field, with the same
    immutability, equality, and hashability.  Immutability is also what
    lets slabs memoize and re-issue the same block object.
    """

    slab_index: int
    block_index: int
    shape: Hashable
    nbytes: int

    @property
    def address(self) -> tuple[int, int]:
        """Stable identity within the allocator."""
        return (self.slab_index, self.block_index)


@dataclass
class Slab:
    """A fixed-size chunk of the cache region, bound to one shape at a time."""

    index: int
    nbytes: int
    shape: Optional[Hashable] = None
    block_bytes: int = 0
    free_blocks: list[int] = field(default_factory=list)
    used_count: int = 0
    # Occupancy bitmap: _used_state[i] is truthy iff block i is live.
    _used_state: bytearray = field(default_factory=bytearray, repr=False)
    # Shape this slab is listed under in the allocator's availability
    # lists, or None when not listed (full, free, or released).  Lets
    # stale availability entries be recognised without bookkeeping on
    # the release path.
    _avail_shape: Optional[Hashable] = field(default=None, repr=False)
    # Lazily-minted KvBlock memo for the current shape (index -> block).
    # One memo list is kept per shape ever hosted (``_block_caches``), so
    # a slab oscillating between shapes re-issues its old arena instead
    # of re-minting every block on each rebind.
    _block_cache: list = field(default_factory=list, repr=False)
    _block_caches: dict = field(default_factory=dict, repr=False)
    # The allocator's per-shape record this slab is assigned under
    # (set by _acquire_slab); gives the free path its shape bookkeeping
    # without any dict lookups.
    _rec: Optional["_ShapeRec"] = field(default=None, repr=False)

    @property
    def blocks_per_slab(self) -> int:
        return self.nbytes // self.block_bytes if self.block_bytes else 0

    @property
    def is_empty(self) -> bool:
        return not self.used_count

    @property
    def is_full(self) -> bool:
        return self.shape is not None and not self.free_blocks

    def assign(self, shape: Hashable, block_bytes: int) -> None:
        """Bind this (previously free) slab to a shape."""
        if self.shape is not None:
            raise ValueError(f"slab {self.index} already assigned")
        if block_bytes <= 0 or block_bytes > self.nbytes:
            raise ValueError(
                f"block_bytes {block_bytes} does not fit slab of {self.nbytes}"
            )
        self.shape = shape
        self.block_bytes = block_bytes
        count = self.nbytes // block_bytes
        self.free_blocks = list(range(count))
        self.used_count = 0
        self._used_state = bytearray(count)
        cache = self._block_caches.get(shape)
        if cache is None:
            cache = [None] * count
            self._block_caches[shape] = cache
        self._block_cache = cache

    def unassign(self) -> None:
        """Return the slab to the shared pool (must be empty)."""
        if not self.is_empty:
            raise ValueError(f"slab {self.index} still has used blocks")
        self.shape = None
        self.block_bytes = 0
        self.free_blocks = []
        self.used_count = 0
        self._used_state = bytearray()
        self._avail_shape = None


@dataclass(frozen=True)
class ShapeStats:
    """Per-shape occupancy, the quantity plotted in Figure 16."""

    shape: Hashable
    block_bytes: int
    used_blocks: int
    slab_count: int
    slab_bytes: int

    @property
    def used_bytes(self) -> int:
        return self.used_blocks * self.block_bytes

    @property
    def held_bytes(self) -> int:
        return self.slab_count * self.slab_bytes

    @property
    def fragmentation(self) -> float:
        """Unused fraction of the memory held for this shape."""
        if self.held_bytes == 0:
            return 0.0
        return 1.0 - self.used_bytes / self.held_bytes


class _ShapeRec:
    """All per-shape allocator state, one dict lookup away.

    ``alloc`` fetches this record once per call; the free path reaches
    it through ``Slab._rec`` with no hashing at all.  Records are never
    deleted — a shape that loses its last slab keeps its registered
    ``block_bytes`` (conflicting re-registration stays an error) with
    ``free_count`` back at zero.
    """

    __slots__ = ("block_bytes", "per_slab", "free_count", "avail", "slabs")

    def __init__(self, block_bytes: int, per_slab: int):
        self.block_bytes = block_bytes
        self.per_slab = per_slab
        self.free_count = 0
        # Indices of assigned slabs believed to have free blocks, in
        # listing order; may contain stale entries, which alloc() drops
        # when their _avail_shape no longer matches.
        self.avail: list[int] = []
        # Indices of slabs currently assigned to this shape.
        self.slabs: list[int] = []


class SlabAllocator:
    """Unified KV cache over a region divided into fixed-size slabs."""

    def __init__(
        self,
        region_bytes: int,
        slab_bytes: int,
        name: str = "slab",
        obs: Observability = NULL_OBS,
    ):
        if slab_bytes <= 0 or region_bytes < slab_bytes:
            raise ValueError("region must hold at least one slab")
        self.slab_bytes = slab_bytes
        self.slab_count = region_bytes // slab_bytes
        self.region_bytes = self.slab_count * slab_bytes
        self._slabs = [Slab(index=i, nbytes=slab_bytes) for i in range(self.slab_count)]
        self._free_slabs: list[int] = list(range(self.slab_count))
        # shape -> consolidated per-shape state (block size, free-block
        # total, availability list, assigned slabs); one hash per alloc.
        self._shapes: dict[Hashable, _ShapeRec] = {}
        self._held_bytes = 0
        self.peak_held_bytes = 0
        # Plain-int lifetime totals, always live (unlike the obs
        # counters below, inert under NULL_OBS) — the invariant checker
        # reconciles allocated - freed against live blocks every tick.
        self.blocks_allocated = 0
        self.blocks_freed = 0
        self.name = name
        scope = obs.scoped(name)
        self._blocks_allocated = scope.counter("blocks_allocated")
        self._blocks_freed = scope.counter("blocks_freed")
        if obs.enabled:
            scope.gauge("held_bytes").set_fn(lambda: self.held_bytes)
            scope.gauge("fragmentation").set_fn(self.overall_fragmentation)

    # -- allocation ----------------------------------------------------------
    def alloc(self, shape: Hashable, block_bytes: int, count: int = 1) -> list[KvBlock]:
        """Allocate ``count`` blocks of ``shape``; all-or-nothing.

        Raises ``MemoryError`` when the region cannot satisfy the
        request even after acquiring new slabs.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        rec = self._shapes.get(shape)
        if rec is None:
            rec = _ShapeRec(block_bytes, self.slab_bytes // block_bytes)
            self._shapes[shape] = rec
        elif rec.block_bytes != block_bytes:
            raise ValueError(
                f"shape {shape!r} registered with block_bytes={rec.block_bytes}, "
                f"got {block_bytes}"
            )
        if (rec.free_count + len(self._free_slabs) * rec.per_slab) < count:
            raise MemoryError(
                f"unified cache cannot hold {count} blocks of {shape!r}"
            )
        slabs = self._slabs
        avail = rec.avail
        if count == 1:
            # Decode growth allocates one block per chunk per request —
            # the allocator's single hottest call shape.  Same slab
            # choice, block choice, and list states as the general path
            # (front of the availability list, top of the free list,
            # stale entries dropped on sight), minus its loop scaffolding.
            while avail:
                slab_index = avail[0]
                slab = slabs[slab_index]
                if slab._avail_shape is not shape:
                    del avail[0]  # stale: released or reassigned since listed
                    continue
                free_list = slab.free_blocks
                block_index = free_list.pop()
                slab._used_state[block_index] = 1
                cache = slab._block_cache
                block = cache[block_index]
                if block is None:
                    block = KvBlock(slab_index, block_index, shape, block_bytes)
                    cache[block_index] = block
                slab.used_count += 1
                if not free_list:
                    slab._avail_shape = None
                    del avail[0]
                rec.free_count -= 1
                self.blocks_allocated += 1
                self._blocks_allocated.inc(1)
                return [block]
        blocks: list[KvBlock] = []
        append = blocks.append
        remaining = count
        if avail:
            read = write = 0
            n_avail = len(avail)
            while read < n_avail and remaining:
                slab_index = avail[read]
                read += 1
                slab = slabs[slab_index]
                if slab._avail_shape is not shape:
                    continue  # stale: released or reassigned since listed
                free_list = slab.free_blocks
                state = slab._used_state
                cache = slab._block_cache
                # Take the tail of the free list in pop() order, as one
                # slice instead of per-block pops.
                n_free = len(free_list)
                taken = n_free if n_free < remaining else remaining
                cut = n_free - taken
                indices = free_list[n_free - 1 :: -1] if cut == 0 else free_list[: cut - 1 : -1]
                del free_list[cut:]
                for block_index in indices:
                    state[block_index] = 1
                    block = cache[block_index]
                    if block is None:
                        block = KvBlock(
                            slab_index, block_index, shape, block_bytes
                        )
                        cache[block_index] = block
                    append(block)
                remaining -= taken
                slab.used_count += taken
                if free_list:
                    avail[write] = slab_index
                    write += 1
                else:
                    slab._avail_shape = None
            if write != read:
                del avail[write:read]
        while remaining:
            slab = self._acquire_slab(shape, block_bytes, rec)
            free_list = slab.free_blocks
            state = slab._used_state
            cache = slab._block_cache
            slab_index = slab.index
            n_free = len(free_list)
            taken = n_free if n_free < remaining else remaining
            cut = n_free - taken
            indices = free_list[n_free - 1 :: -1] if cut == 0 else free_list[: cut - 1 : -1]
            del free_list[cut:]
            for block_index in indices:
                state[block_index] = 1
                block = cache[block_index]
                if block is None:
                    block = KvBlock(slab_index, block_index, shape, block_bytes)
                    cache[block_index] = block
                append(block)
            remaining -= taken
            slab.used_count += taken
            if not free_list:
                slab._avail_shape = None
        rec.free_count -= count
        self.blocks_allocated += count
        self._blocks_allocated.inc(count)
        return blocks

    def free(self, blocks: list[KvBlock]) -> None:
        """Release blocks; empty slabs return to the shared pool.

        Blocks from one allocation come in slab-contiguous runs, so the
        per-slab bookkeeping (``used_count``, the shape's free total, the
        release/relist decision) is applied once per run instead of once
        per block; only the occupancy bit and the free-list push remain
        per-block work.
        """
        slabs = self._slabs
        slab = None
        slab_index = -1
        run = 0
        shape = state = fl_append = None
        for block in blocks:
            index = block.slab_index
            if index != slab_index:
                if run:
                    self._finish_free_run(slab, run)
                slab = slabs[index]
                slab_index = index
                run = 0
                shape = slab.shape
                state = slab._used_state
                fl_append = slab.free_blocks.append
            if shape is not block.shape and shape != block.shape:
                raise ValueError(
                    f"block {block.address} shape {block.shape!r} does not "
                    f"match slab shape {shape!r} (double free?)"
                )
            block_index = block.block_index
            if not state[block_index]:
                raise ValueError(f"double free of block {block.address}")
            state[block_index] = 0
            fl_append(block_index)
            run += 1
        if run:
            self._finish_free_run(slab, run)
        self.blocks_freed += len(blocks)
        self._blocks_freed.inc(len(blocks))

    def _finish_free_run(self, slab: Slab, run: int) -> None:
        """Apply the per-slab accounting for ``run`` just-freed blocks.

        Equivalent to the former per-block updates: nothing can allocate
        between the blocks of one ``free()`` call, so deferring the
        counter updates and the release/relist decision to the end of the
        run is unobservable.
        """
        rec = slab._rec
        slab.used_count -= run
        rec.free_count += run
        if not slab.used_count:
            self._release_slab(slab)
        elif slab._avail_shape is None:
            # Was full (or lazily delisted); list it again.
            slab._avail_shape = slab.shape
            rec.avail.append(slab.index)

    # -- capacity ------------------------------------------------------------
    def capacity_for(self, shape: Hashable, block_bytes: int) -> int:
        """Blocks of ``shape`` allocatable right now (free + reclaimable)."""
        rec = self._shapes.get(shape)
        if rec is None:
            return len(self._free_slabs) * (self.slab_bytes // block_bytes)
        return rec.free_count + len(self._free_slabs) * rec.per_slab

    @property
    def free_slab_count(self) -> int:
        return len(self._free_slabs)

    # -- statistics (Figure 16) ------------------------------------------------
    @property
    def _shape_slabs(self) -> dict[Hashable, list[int]]:
        """shape -> assigned slab indices (view; cold-path introspection)."""
        return {
            shape: rec.slabs
            for shape, rec in self._shapes.items()
            if rec.slabs
        }

    def shape_stats(self) -> list[ShapeStats]:
        """Occupancy per shape, for shapes currently holding slabs."""
        stats = []
        for shape, rec in sorted(
            self._shapes.items(), key=lambda kv: str(kv[0])
        ):
            if not rec.slabs:
                continue
            used = sum(self._slabs[i].used_count for i in rec.slabs)
            stats.append(
                ShapeStats(
                    shape=shape,
                    block_bytes=rec.block_bytes,
                    used_blocks=used,
                    slab_count=len(rec.slabs),
                    slab_bytes=self.slab_bytes,
                )
            )
        return stats

    def overall_fragmentation(self) -> float:
        """Unused fraction of all held (assigned) slab memory."""
        held = used = 0
        for stats in self.shape_stats():
            held += stats.held_bytes
            used += stats.used_bytes
        return 0.0 if held == 0 else 1.0 - used / held

    @property
    def held_bytes(self) -> int:
        """Bytes in slabs currently assigned to some shape."""
        return self._held_bytes

    # -- internal ----------------------------------------------------------
    def _acquire_slab(
        self, shape: Hashable, block_bytes: int, rec: _ShapeRec
    ) -> Slab:
        if not self._free_slabs:
            raise MemoryError("no free slabs")
        slab = self._slabs[self._free_slabs.pop()]
        slab.assign(shape, block_bytes)
        slab._avail_shape = shape
        slab._rec = rec
        rec.slabs.append(slab.index)
        rec.avail.append(slab.index)
        rec.free_count += len(slab.free_blocks)
        self._held_bytes += self.slab_bytes
        if self._held_bytes > self.peak_held_bytes:
            self.peak_held_bytes = self._held_bytes
        return slab

    def _release_slab(self, slab: Slab) -> None:
        rec = slab._rec
        rec.slabs.remove(slab.index)
        rec.free_count -= len(slab.free_blocks)
        slab._rec = None
        slab.unassign()
        self._free_slabs.append(slab.index)
        self._held_bytes -= self.slab_bytes
