"""Slab-allocated unified KV cache (§5.2, Figure 9 bottom).

KV-cache block sizes vary 20x across models (Table 1), so a unified
cache serving many models cannot pre-carve fixed per-shape pools without
fragmenting.  Aegaeon divides each cache region (VRAM or DRAM) into
fixed-size *slabs*; a slab is dynamically assigned to one KV shape and
serves fixed-size blocks of that shape until every block is freed, at
which point the slab returns to the shared free pool.

This module is a real allocator: every block handed out is a distinct
:class:`KvBlock` with a stable address, double-free and cross-shape
accounting is enforced, and the fragmentation statistics behind the
paper's Figure 16 are measured from live state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, NamedTuple, Optional

from ..obs import NULL_OBS, Observability

__all__ = ["KvBlock", "Slab", "SlabAllocator", "ShapeStats"]


class KvBlock(NamedTuple):
    """One KV-cache block (a fixed number of tokens of one shape).

    A NamedTuple rather than a frozen dataclass: blocks are minted on
    the allocator's hottest path and tuple construction is several times
    cheaper than ``object.__setattr__`` per field, with the same
    immutability, equality, and hashability.
    """

    slab_index: int
    block_index: int
    shape: Hashable
    nbytes: int

    @property
    def address(self) -> tuple[int, int]:
        """Stable identity within the allocator."""
        return (self.slab_index, self.block_index)


@dataclass
class Slab:
    """A fixed-size chunk of the cache region, bound to one shape at a time."""

    index: int
    nbytes: int
    shape: Optional[Hashable] = None
    block_bytes: int = 0
    free_blocks: list[int] = field(default_factory=list)
    used_blocks: set[int] = field(default_factory=set)

    @property
    def blocks_per_slab(self) -> int:
        return self.nbytes // self.block_bytes if self.block_bytes else 0

    @property
    def is_empty(self) -> bool:
        return not self.used_blocks

    @property
    def is_full(self) -> bool:
        return self.shape is not None and not self.free_blocks

    def assign(self, shape: Hashable, block_bytes: int) -> None:
        """Bind this (previously free) slab to a shape."""
        if self.shape is not None:
            raise ValueError(f"slab {self.index} already assigned")
        if block_bytes <= 0 or block_bytes > self.nbytes:
            raise ValueError(
                f"block_bytes {block_bytes} does not fit slab of {self.nbytes}"
            )
        self.shape = shape
        self.block_bytes = block_bytes
        self.free_blocks = list(range(self.nbytes // block_bytes))
        self.used_blocks = set()

    def unassign(self) -> None:
        """Return the slab to the shared pool (must be empty)."""
        if not self.is_empty:
            raise ValueError(f"slab {self.index} still has used blocks")
        self.shape = None
        self.block_bytes = 0
        self.free_blocks = []
        self.used_blocks = set()


@dataclass(frozen=True)
class ShapeStats:
    """Per-shape occupancy, the quantity plotted in Figure 16."""

    shape: Hashable
    block_bytes: int
    used_blocks: int
    slab_count: int
    slab_bytes: int

    @property
    def used_bytes(self) -> int:
        return self.used_blocks * self.block_bytes

    @property
    def held_bytes(self) -> int:
        return self.slab_count * self.slab_bytes

    @property
    def fragmentation(self) -> float:
        """Unused fraction of the memory held for this shape."""
        if self.held_bytes == 0:
            return 0.0
        return 1.0 - self.used_bytes / self.held_bytes


class SlabAllocator:
    """Unified KV cache over a region divided into fixed-size slabs."""

    def __init__(
        self,
        region_bytes: int,
        slab_bytes: int,
        name: str = "slab",
        obs: Observability = NULL_OBS,
    ):
        if slab_bytes <= 0 or region_bytes < slab_bytes:
            raise ValueError("region must hold at least one slab")
        self.slab_bytes = slab_bytes
        self.slab_count = region_bytes // slab_bytes
        self.region_bytes = self.slab_count * slab_bytes
        self._slabs = [Slab(index=i, nbytes=slab_bytes) for i in range(self.slab_count)]
        self._free_slabs: list[int] = list(range(self.slab_count))
        # shape -> indices of slabs currently assigned to it
        self._shape_slabs: dict[Hashable, list[int]] = {}
        self._block_bytes: dict[Hashable, int] = {}
        self._held_bytes = 0
        self.peak_held_bytes = 0
        # Plain-int lifetime totals, always live (unlike the obs
        # counters below, inert under NULL_OBS) — the invariant checker
        # reconciles allocated - freed against live blocks every tick.
        self.blocks_allocated = 0
        self.blocks_freed = 0
        self.name = name
        scope = obs.scoped(name)
        self._blocks_allocated = scope.counter("blocks_allocated")
        self._blocks_freed = scope.counter("blocks_freed")
        if obs.enabled:
            scope.gauge("held_bytes").set_fn(lambda: self.held_bytes)
            scope.gauge("fragmentation").set_fn(self.overall_fragmentation)

    # -- allocation ----------------------------------------------------------
    def alloc(self, shape: Hashable, block_bytes: int, count: int = 1) -> list[KvBlock]:
        """Allocate ``count`` blocks of ``shape``; all-or-nothing.

        Raises ``MemoryError`` when the region cannot satisfy the
        request even after acquiring new slabs.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        known = self._block_bytes.setdefault(shape, block_bytes)
        if known != block_bytes:
            raise ValueError(
                f"shape {shape!r} registered with block_bytes={known}, "
                f"got {block_bytes}"
            )
        if self.capacity_for(shape, block_bytes) < count:
            raise MemoryError(
                f"unified cache cannot hold {count} blocks of {shape!r}"
            )
        blocks: list[KvBlock] = []
        append = blocks.append
        slabs = self._slabs
        remaining = count
        for slab_index in self._shape_slabs.get(shape, []):
            slab = slabs[slab_index]
            free_list = slab.free_blocks
            if not free_list:
                continue
            used = slab.used_blocks
            slab_shape = slab.shape
            block_nbytes = slab.block_bytes
            while free_list and remaining:
                block_index = free_list.pop()
                used.add(block_index)
                append(KvBlock(slab_index, block_index, slab_shape, block_nbytes))
                remaining -= 1
            if not remaining:
                break
        while remaining:
            slab = self._acquire_slab(shape, block_bytes)
            free_list = slab.free_blocks
            used = slab.used_blocks
            slab_index = slab.index
            block_nbytes = slab.block_bytes
            while free_list and remaining:
                block_index = free_list.pop()
                used.add(block_index)
                append(KvBlock(slab_index, block_index, shape, block_nbytes))
                remaining -= 1
        self.blocks_allocated += count
        self._blocks_allocated.inc(count)
        return blocks

    def free(self, blocks: list[KvBlock]) -> None:
        """Release blocks; empty slabs return to the shared pool."""
        slabs = self._slabs
        for block in blocks:
            slab = slabs[block.slab_index]
            if slab.shape is not block.shape and slab.shape != block.shape:
                raise ValueError(
                    f"block {block.address} shape {block.shape!r} does not "
                    f"match slab shape {slab.shape!r} (double free?)"
                )
            used = slab.used_blocks
            block_index = block.block_index
            if block_index not in used:
                raise ValueError(f"double free of block {block.address}")
            used.remove(block_index)
            slab.free_blocks.append(block_index)
            if not used:
                self._release_slab(slab)
        self.blocks_freed += len(blocks)
        self._blocks_freed.inc(len(blocks))

    # -- capacity ------------------------------------------------------------
    def capacity_for(self, shape: Hashable, block_bytes: int) -> int:
        """Blocks of ``shape`` allocatable right now (free + reclaimable)."""
        free_in_shape = sum(
            len(self._slabs[i].free_blocks)
            for i in self._shape_slabs.get(shape, [])
        )
        per_slab = self.slab_bytes // block_bytes
        return free_in_shape + len(self._free_slabs) * per_slab

    @property
    def free_slab_count(self) -> int:
        return len(self._free_slabs)

    # -- statistics (Figure 16) ------------------------------------------------
    def shape_stats(self) -> list[ShapeStats]:
        """Occupancy per shape, for shapes currently holding slabs."""
        stats = []
        for shape, slab_indices in sorted(
            self._shape_slabs.items(), key=lambda kv: str(kv[0])
        ):
            if not slab_indices:
                continue
            used = sum(len(self._slabs[i].used_blocks) for i in slab_indices)
            stats.append(
                ShapeStats(
                    shape=shape,
                    block_bytes=self._block_bytes[shape],
                    used_blocks=used,
                    slab_count=len(slab_indices),
                    slab_bytes=self.slab_bytes,
                )
            )
        return stats

    def overall_fragmentation(self) -> float:
        """Unused fraction of all held (assigned) slab memory."""
        held = used = 0
        for stats in self.shape_stats():
            held += stats.held_bytes
            used += stats.used_bytes
        return 0.0 if held == 0 else 1.0 - used / held

    @property
    def held_bytes(self) -> int:
        """Bytes in slabs currently assigned to some shape."""
        return self._held_bytes

    # -- internal ----------------------------------------------------------
    def _take(self, slab: Slab) -> KvBlock:
        block_index = slab.free_blocks.pop()
        slab.used_blocks.add(block_index)
        return KvBlock(
            slab_index=slab.index,
            block_index=block_index,
            shape=slab.shape,
            nbytes=slab.block_bytes,
        )

    def _acquire_slab(self, shape: Hashable, block_bytes: int) -> Slab:
        if not self._free_slabs:
            raise MemoryError("no free slabs")
        slab = self._slabs[self._free_slabs.pop()]
        slab.assign(shape, block_bytes)
        self._shape_slabs.setdefault(shape, []).append(slab.index)
        self._held_bytes += self.slab_bytes
        if self._held_bytes > self.peak_held_bytes:
            self.peak_held_bytes = self._held_bytes
        return slab

    def _release_slab(self, slab: Slab) -> None:
        self._shape_slabs[slab.shape].remove(slab.index)
        if not self._shape_slabs[slab.shape]:
            del self._shape_slabs[slab.shape]
        slab.unassign()
        self._free_slabs.append(slab.index)
        self._held_bytes -= self.slab_bytes
