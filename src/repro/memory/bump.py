"""Self-managed VRAM buffer with bump allocation (§5.2).

Aegaeon requests all the VRAM it needs for weights and KV cache as one
self-managed buffer at startup and serves model-weight allocations from
it by bumping a pointer.  Deallocation of *everything above a mark* is a
pointer reset — this is what removes the garbage-collection stage from
the preemptive scale-up sequence.

The allocator here is byte-accurate: the engine allocates real extents
for weights and prefetched models, and the prefetch "move to the start of
the buffer" trick (Figure 9, step 3.b) is implemented as
:meth:`BumpAllocator.compact_to_front`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BumpAllocation", "BumpAllocator"]


@dataclass
class BumpAllocation:
    """A live extent inside the bump buffer."""

    offset: int
    nbytes: int
    tag: str
    freed: bool = False

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


@dataclass
class BumpAllocator:
    """A contiguous self-managed buffer with bump allocation.

    Allocations are placed at the current pointer; ``reset`` (optionally
    to a mark) releases everything allocated after that point in O(1).
    """

    capacity: int
    alignment: int = 256
    _pointer: int = 0
    _live: list[BumpAllocation] = field(default_factory=list)
    peak: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.alignment <= 0 or (self.alignment & (self.alignment - 1)):
            raise ValueError("alignment must be a positive power of two")

    # -- core API ----------------------------------------------------------
    def alloc(self, nbytes: int, tag: str = "") -> BumpAllocation:
        """Allocate ``nbytes`` at the pointer; raises ``MemoryError`` if full."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        aligned = self._align(self._pointer)
        if aligned + nbytes > self.capacity:
            raise MemoryError(
                f"bump buffer exhausted: need {nbytes} bytes at {aligned}, "
                f"capacity {self.capacity}"
            )
        allocation = BumpAllocation(offset=aligned, nbytes=nbytes, tag=tag)
        self._live.append(allocation)
        self._pointer = aligned + nbytes
        self.peak = max(self.peak, self._pointer)
        return allocation

    def reset(self, mark: int = 0) -> list[BumpAllocation]:
        """Drop every allocation at or above ``mark``; returns the dropped ones.

        This is the O(1)-conceptual "deallocate by resetting the pointer"
        operation; live bookkeeping is updated so leaks are detectable.
        """
        if mark < 0 or mark > self.capacity:
            raise ValueError("mark out of range")
        dropped = [a for a in self._live if a.offset >= mark]
        for allocation in dropped:
            allocation.freed = True
        self._live = [a for a in self._live if a.offset < mark]
        self._pointer = mark
        return dropped

    def mark(self) -> int:
        """Current pointer, usable as a later ``reset`` target."""
        return self._pointer

    def retire(self, allocation: BumpAllocation) -> None:
        """Drop one live allocation without moving the pointer.

        True to bump semantics, the space is not reusable until a
        ``reset`` below it (or a ``compact_to_front`` of a sole
        survivor); this is how the engine retires the running model's
        weights while a prefetched model sits above them.
        """
        if allocation.freed or allocation not in self._live:
            raise ValueError("allocation is not live")
        allocation.freed = True
        self._live.remove(allocation)

    def compact_to_front(self, allocation: BumpAllocation) -> BumpAllocation:
        """Move one live allocation to the front of the buffer.

        Implements the prefetch promotion in Figure 9 (step 3.b): after
        the old model is dropped, the prefetched weights sitting higher
        in the buffer are moved to offset 0 with a cheap on-device copy.
        All other live allocations must already be gone.
        """
        if allocation.freed or allocation not in self._live:
            raise ValueError("can only compact a live allocation")
        others = [a for a in self._live if a is not allocation]
        if others:
            raise ValueError("compact_to_front requires a sole survivor")
        allocation.offset = 0
        self._pointer = allocation.nbytes
        return allocation

    # -- inspection ---------------------------------------------------------
    @property
    def used(self) -> int:
        """Bytes between the buffer start and the pointer."""
        return self._pointer

    @property
    def free(self) -> int:
        """Bytes remaining above the pointer."""
        return self.capacity - self._pointer

    @property
    def live_bytes(self) -> int:
        """Bytes inside live allocations (excludes alignment gaps)."""
        return sum(a.nbytes for a in self._live)

    @property
    def live_allocations(self) -> tuple[BumpAllocation, ...]:
        return tuple(self._live)

    def _align(self, offset: int) -> int:
        mask = self.alignment - 1
        return (offset + mask) & ~mask
