"""Baseline serving systems: ServerlessLLM(+), MuxServe, dedicated."""

from .base import BaselineServer, BatcherInstanceBase
from .muxserve import DedicatedServing, MuxServe, SharedGpuInstance, plan_placement
from .serverless_llm import ServerlessLLM, ServerlessLLMPlus

__all__ = [
    "BaselineServer",
    "BatcherInstanceBase",
    "DedicatedServing",
    "MuxServe",
    "ServerlessLLM",
    "ServerlessLLMPlus",
    "SharedGpuInstance",
    "plan_placement",
]
