"""Baseline serving systems: ServerlessLLM(+), MuxServe, dedicated."""

from .base import BaselineServer
from .muxserve import DedicatedServing, MuxServe, SharedGpuInstance, plan_placement
from .serverless_llm import ServerlessLLM, ServerlessLLMPlus

__all__ = [
    "BaselineServer",
    "DedicatedServing",
    "MuxServe",
    "ServerlessLLM",
    "ServerlessLLMPlus",
    "SharedGpuInstance",
    "plan_placement",
]
