"""ServerlessLLM baseline: request-level auto-scaling (§2.3, §7.1).

ServerlessLLM scales models from host-memory checkpoints with a fast
loader (the paper rates its loading "comparable" to Aegaeon's), but it
schedules at the **request** granularity: an instance switches models
only when its running requests complete.  Under aggressive pooling this
head-of-line blocking is what caps its SLO attainment (Figure 2(a),
§3.1), so our model deliberately grants it Aegaeon-grade switch costs
and conventional vLLM-style continuous batching, isolating scheduling
granularity as the differentiator — exactly the paper's comparison.

``ServerlessLLMPlus`` (§7.1) extends it with oracle Shortest-Job-First
ordering over the waiting queue.  Both the queue order and the routing
rule come from the system's policy bundle
(:class:`~repro.policy.RequestLevelScaling`,
:class:`~repro.policy.AffinityBacklogDispatch`).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.slo import DEFAULT_SLO, SloSpec
from ..engine.batching import BatchingPolicy, ContinuousBatcher
from ..engine.block_manager import BlockManager
from ..engine.engine import AegaeonEngine, EngineConfig
from ..engine.request import Request
from ..hardware.cluster import Cluster
from ..memory.model_cache import HostModelCache
from ..memory.slab import SlabAllocator
from ..models.catalog import ModelSpec
from ..obs import ObsConfig, Observability
from ..sim import Environment
from ..workload.trace import Trace
from .base import BaselineServer, BatcherInstanceBase

__all__ = ["ServerlessLLM", "ServerlessLLMPlus"]

GiB = 1024**3

# Decode chunking, mirroring the Aegaeon instances.
DECODE_CHUNK_STEPS = 16


class _ServerlessInstance(BatcherInstanceBase):
    """One GPU (or TP group) running whole requests for one model at a time."""

    def __init__(
        self,
        env: Environment,
        engine: AegaeonEngine,
        server: "ServerlessLLM",
        name: str,
    ):
        super().__init__(env, name, server.note_finished)
        self.engine = engine
        self.server = server
        self.waiting: list[Request] = []
        self.batcher: Optional[ContinuousBatcher] = None
        self._start()

    # -- dispatch interface ------------------------------------------------
    @property
    def current_model(self) -> Optional[ModelSpec]:
        return self.engine.current_model

    @property
    def active(self) -> bool:
        return bool(self.waiting) or (
            self.batcher is not None and self.batcher.has_work
        )

    def estimated_backlog(self) -> float:
        """Rough seconds of queued work (for least-loaded routing).

        Vectorized per model (Eqs. 5-6 in one numpy pass per spec), with
        the per-request contributions scattered back into queue order and
        accumulated in Python so the total is byte-identical to the
        per-request scalar loop it replaces.
        """
        backlog = 0.0
        waiting = self.waiting
        if waiting:
            if len(waiting) >= 8:
                estimates = [0.0] * len(waiting)
                by_spec: dict[str, list[int]] = {}
                for index, request in enumerate(waiting):
                    by_spec.setdefault(request.spec.name, []).append(index)
                for indices in by_spec.values():
                    latency = self.engine.latency_model(waiting[indices[0]].spec)
                    values = latency.estimate_service_time_batch(
                        [waiting[i].input_tokens for i in indices],
                        [waiting[i].output_tokens for i in indices],
                    ).tolist()
                    for i, value in zip(indices, values):
                        estimates[i] = value
                for value in estimates:
                    backlog += value
            else:
                for request in waiting:
                    latency = self.engine.latency_model(request.spec)
                    backlog += latency.estimate_service_time(
                        request.input_tokens, request.output_tokens
                    )
        if self.batcher is not None and self.batcher.running:
            running = self.batcher.running
            size = max(1, len(running))
            if len(running) >= 8:
                estimates = [0.0] * len(running)
                by_spec = {}
                for index, request in enumerate(running):
                    by_spec.setdefault(request.spec.name, []).append(index)
                for indices in by_spec.values():
                    latency = self.engine.latency_model(running[indices[0]].spec)
                    steps = latency.decode_time_batch(
                        [size] * len(indices),
                        [running[i].context_tokens for i in indices],
                    ).tolist()
                    for i, step in zip(indices, steps):
                        estimates[i] = running[i].remaining_tokens * step
                for value in estimates:
                    backlog += value
            else:
                for request in running:
                    latency = self.engine.latency_model(request.spec)
                    backlog += request.remaining_tokens * latency.decode_step_time(
                        size, request.context_tokens
                    )
        return backlog

    def enqueue(self, request: Request) -> None:
        self.waiting.append(request)
        self._kick()

    # -- main loop ----------------------------------------------------------
    def _step(self) -> Generator:
        if self.batcher is not None and self.batcher.has_work:
            yield from self._serve_current()
            return
        # Request-level scaling point: running set has drained.
        target = self._pick_next_model()
        if target is not None:
            yield from self._switch_to(target)

    def _pick_next_model(self) -> Optional[ModelSpec]:
        """Next model by queue policy (FCFS base, SJF in the + variant)."""
        if not self.waiting:
            return None
        self.server.order_queue(self.waiting, self.engine)
        return self.waiting[0].spec

    def _switch_to(self, spec: ModelSpec) -> Generator:
        yield from self.engine.scale_to(spec)
        pool_bytes = self.engine.gpu_kv_cache.region_bytes
        block_manager = BlockManager(
            pool_bytes, spec, tp=self.engine.config.tp,
            block_tokens=self.engine.config.block_tokens,
        )
        self.batcher = ContinuousBatcher(
            block_manager, BatchingPolicy(max_batch_size=self.server.max_batch_size)
        )
        self._drain_matching(spec)

    def _drain_matching(self, spec: ModelSpec) -> None:
        """Move same-model waiting requests into the engine's queue."""
        matching = [r for r in self.waiting if r.spec.name == spec.name]
        for request in matching:
            self.waiting.remove(request)
            self.batcher.enqueue(request)

    def _serve_current(self) -> Generator:
        spec = self.engine.current_model
        # Continuous batching: newly arrived same-model requests join.
        self._drain_matching(spec)
        admitted = self.batcher.admit_prefills()
        if admitted:
            yield from self._prefill(spec, admitted)
            return
        if self.batcher.running:
            yield from self._decode_chunk(spec)
            return
        # Nothing admissible (pool full with zero running cannot happen;
        # waiting holds only other models) — let the loop switch.
        self.batcher = None if not self.batcher.has_work else self.batcher

    def _prefill(self, spec: ModelSpec, admitted: list[Request]) -> Generator:
        self._mark_prefilling(admitted)
        yield from self.engine.prefill(
            spec, [request.input_tokens for request in admitted]
        )
        self._mark_prefilled(self.batcher, admitted)

    def _decode_chunk(self, spec: ModelSpec) -> Generator:
        running = self.batcher.decode_batch()
        step = self.engine.decode_step_time(
            spec, len(running), sum(r.context_tokens for r in running)
        )
        steps = max(1, min(
            DECODE_CHUNK_STEPS, min(r.remaining_tokens for r in running)
        ))
        chunk_start = self.env.now
        yield from self.engine.decode_for(spec, steps * step)
        self._account_decode_chunk(self.batcher, running, chunk_start, step, steps)


class ServerlessLLM(BaselineServer):
    """Request-level auto-scaling across a GPU pool."""

    label = "ServerlessLLM"
    default_policies = "serverless-llm"

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        instance_count: Optional[int] = None,
        tp: int = 1,
        slo: SloSpec = DEFAULT_SLO,
        max_batch_size: int = 32,
        model_cache_bytes: int = 1280 * GiB,
        obs: Optional[ObsConfig | Observability] = None,
        policies=None,
    ):
        super().__init__(env, slo, obs=obs, policies=policies)
        self.max_batch_size = max_batch_size
        available = len(cluster.gpus) // tp
        count = available if instance_count is None else instance_count
        if count > available:
            raise ValueError(f"cluster supports {available} TP={tp} instances")
        self.model_cache = HostModelCache(
            model_cache_bytes, name="model_cache", obs=self.obs
        )
        # ServerlessLLM holds no cross-model unified KV cache; engines
        # get a token-sized CPU pool purely to satisfy the engine API.
        cpu_kv = SlabAllocator(
            region_bytes=GiB, slab_bytes=64 * 1024**2, name="cpu_kv", obs=self.obs
        )
        vram = cluster.gpus[0].spec.vram_bytes
        weight_buffer = min(30 * GiB, int(vram * 0.9) - 8 * GiB)
        engine_config = EngineConfig(
            prefetch=False,
            fine_grained_sync=False,
            tp=tp,
            weight_buffer_bytes=weight_buffer,
        )
        tunables = self.policies.tunables
        self.instances = []
        gpus = cluster.gpus
        for index in range(count):
            group = gpus[index * tp : (index + 1) * tp]
            engine = AegaeonEngine(
                env,
                cluster.node_of(group[0]),
                group,
                self.model_cache,
                cpu_kv,
                config=engine_config,
                name=f"sllm{index}",
                pre_initialized=True,
                obs=self.obs,
            )
            engine.quick_loader.max_fetch_retries = tunables.fetch_max_retries
            engine.quick_loader.fetch_backoff_base = tunables.fetch_backoff_base
            self.instances.append(
                _ServerlessInstance(env, engine, self, name=f"sllm{index}")
            )
        self.gpu_count = count * tp

    # -- policy hooks ------------------------------------------------------
    def order_queue(self, waiting: list[Request], engine: AegaeonEngine) -> None:
        """Queue order (FCFS here, oracle SJF in the + bundle)."""
        self.policies.scaling.order_queue(waiting, engine)

    def admission_pressure(self) -> float:
        """Least estimated backlog across the pool, in seconds of work."""
        if not self.instances:
            return float("inf")
        return min(instance.estimated_backlog() for instance in self.instances)

    # -- dispatch ----------------------------------------------------------
    def dispatch(self, request: Request) -> None:
        # Affinity → idle → least backlog (the bundle's dispatch policy).
        target = self.policies.dispatch.place(self, request)
        target.enqueue(request)

    def prepare(self, trace: Trace) -> None:
        for spec in trace.models:
            self.model_cache.insert(
                spec.name, spec.weight_bytes // max(1, self.instances[0].engine.config.tp)
            )

    def engines(self) -> list[AegaeonEngine]:
        """Every per-instance engine (for scaling/transfer stats)."""
        return [instance.engine for instance in self.instances]


class ServerlessLLMPlus(ServerlessLLM):
    """ServerlessLLM with oracle Shortest-Job-First queueing (§7.1)."""

    label = "ServerlessLLM+"
    default_policies = "serverless-llm+"
