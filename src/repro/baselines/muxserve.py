"""MuxServe baseline: static multiplexing (§2.3, §7.2).

MuxServe colocates a few models on each GPU — weights permanently
resident — and multiplexes compute between them.  Its defining
properties, both reproduced here:

* **No auto-scaling cost.**  Switching between colocated models is free,
  which is why MuxServe wins under the strictest SLOs (Figure 13(c)).
* **Hard memory cap.**  The placement optimizer refuses to colocate
  models whose weights plus a minimum KV reservation exceed VRAM — at
  most two 14B models per 80 GB GPU, so at most ~2 models/GPU of
  pooling (the §7.2 observation that MuxServe serves at most 32 models
  on 16 GPUs).  Requests for unplaced models are never served.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.slo import DEFAULT_SLO, SloSpec
from ..engine.batching import BatchingPolicy, ContinuousBatcher
from ..engine.block_manager import BlockManager
from ..engine.request import Phase, Request
from ..hardware.cluster import Cluster
from ..hardware.gpu import GpuSpec
from ..models.catalog import ModelSpec
from ..models.latency import LatencyModel
from ..obs import ObsConfig, Observability
from ..sim import Environment, Event
from ..workload.trace import Trace
from .base import BaselineServer

__all__ = ["MuxServe", "DedicatedServing", "SharedGpuInstance", "plan_placement"]

GiB = 1024**3

# Per-model reservation MuxServe's placement optimizer demands beyond
# weights: a minimum KV pool plus engine runtime overhead (activations,
# CUDA context, allocator headroom).  With the paper's 25.1 GB average
# weights this caps placement at two models per 80 GB GPU — the "at
# most 32 models on 16 GPUs" observation of §7.2 — and our 6-14B mix
# lands at the same two-per-GPU packing.
MIN_KV_BYTES = 16 * GiB
# Interleave granularity between colocated models (fine-grained
# temporal multiplexing: a few decode steps per turn, no switch cost).
MUX_CHUNK_STEPS = 4


def plan_placement(
    models: list[ModelSpec],
    gpu_count: int,
    gpu_spec: GpuSpec,
    min_kv_bytes: int = MIN_KV_BYTES,
    usable_fraction: float = 0.9,
) -> tuple[list[list[ModelSpec]], list[ModelSpec]]:
    """Greedy memory-constrained placement.

    Returns (per-GPU model lists, unplaced models).  Models are placed
    first-fit in popularity order (callers pass them most-popular first,
    matching how an optimizer would prioritize).
    """
    budget = int(gpu_spec.vram_bytes * usable_fraction)
    placements: list[list[ModelSpec]] = [[] for _ in range(gpu_count)]
    used = [0] * gpu_count
    unplaced: list[ModelSpec] = []
    for spec in models:
        need = spec.weight_bytes + min_kv_bytes
        for index in range(gpu_count):
            if used[index] + need <= budget:
                placements[index].append(spec)
                used[index] += need
                break
        else:
            unplaced.append(spec)
    return placements, unplaced


class SharedGpuInstance:
    """One GPU serving a fixed set of colocated models.

    Round-robins between colocated models' engines at a fine temporal
    granularity with zero switching cost.  With a single model this is
    exactly a dedicated vLLM instance (the strawman of §3).
    """

    def __init__(
        self,
        env: Environment,
        gpu_spec: GpuSpec,
        models: list[ModelSpec],
        on_finished,
        tp: int = 1,
        max_batch_size: int = 32,
        name: str = "mux",
    ):
        self.env = env
        self.gpu_spec = gpu_spec
        self.tp = tp
        self.name = name
        self.on_finished = on_finished
        self.models = {spec.name: spec for spec in models}
        self._latency = {
            spec.name: LatencyModel(spec, gpu_spec, tp=tp) for spec in models
        }
        weight_total = sum(spec.weight_bytes // tp for spec in models)
        kv_total = int(gpu_spec.vram_bytes * 0.9) - weight_total
        if kv_total <= 0 and models:
            raise MemoryError(f"{name}: colocated weights exceed VRAM")
        per_model_kv = kv_total // max(1, len(models))
        self.batchers = {
            spec.name: ContinuousBatcher(
                BlockManager(per_model_kv, spec, tp=tp),
                BatchingPolicy(max_batch_size=max_batch_size),
            )
            for spec in models
        }
        self._wake: Optional[Event] = None
        self.busy_time = 0.0
        self.process = env.process(self._run())

    # -- dispatch ----------------------------------------------------------
    def hosts(self, model: str) -> bool:
        """True if this GPU colocates ``model``."""
        return model in self.models

    def enqueue(self, request: Request) -> None:
        """Queue a request on its model's engine."""
        self.batchers[request.model].enqueue(request)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    @property
    def active(self) -> bool:
        return any(batcher.has_work for batcher in self.batchers.values())

    def load(self) -> int:
        """Queued + running requests (for least-loaded dispatch)."""
        return sum(
            len(batcher.waiting) + len(batcher.running)
            for batcher in self.batchers.values()
        )

    # -- main loop -----------------------------------------------------------
    def _run(self) -> Generator:
        order = list(self.batchers)
        while True:
            if not self.active:
                self._wake = self.env.event()
                if not self.active:
                    yield self._wake
                self._wake = None
                continue
            for model in order:
                batcher = self.batchers[model]
                if not batcher.has_work:
                    continue
                yield from self._iteration(model, batcher)

    def _iteration(self, model: str, batcher: ContinuousBatcher) -> Generator:
        latency = self._latency[model]
        admitted = batcher.admit_prefills()
        if admitted:
            for request in admitted:
                request.phase = Phase.PREFILLING
                request.prefill_start = self.env.now
            duration = latency.prefill_time(
                [request.input_tokens for request in admitted]
            )
            yield self.env.timeout(duration)
            self.busy_time += duration
            now = self.env.now
            for request in admitted:
                request.prefill_end = now
                request.record_tokens([now])
                request.decode_enqueue = now
            batcher.start_decoding(admitted)
            self._finish_done(batcher)
            return
        running = batcher.decode_batch()
        if not running:
            return
        step = latency.decode_step_time(
            len(running), sum(r.context_tokens for r in running)
        )
        steps = max(1, min(MUX_CHUNK_STEPS, min(r.remaining_tokens for r in running)))
        chunk_start = self.env.now
        yield self.env.timeout(steps * step)
        self.busy_time += steps * step
        for request in running:
            context_before = request.context_tokens
            request.record_tokens(
                [chunk_start + (i + 1) * step for i in range(steps)]
            )
            request.decode_exec_time += steps * step
            try:
                batcher.block_manager.append_tokens(
                    request.request_id, context_before, steps
                )
            except MemoryError:
                batcher.block_manager.release(request.request_id)
                batcher.running.remove(request)
                request.phase = Phase.QUEUED
                batcher.waiting.insert(0, request)
        self._finish_done(batcher)

    def _finish_done(self, batcher: ContinuousBatcher) -> None:
        for request in [r for r in batcher.running if r.finished]:
            batcher.retire(request)
            request.complete(self.env.now)
            self.on_finished(request)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of wall time this GPU ran token generation."""
        elapsed = self.env.now if elapsed is None else elapsed
        return 0.0 if elapsed <= 0 else min(1.0, self.busy_time / elapsed)


class MuxServe(BaselineServer):
    """Static multiplexing across a GPU pool."""

    label = "MuxServe"

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        tp: int = 1,
        slo: SloSpec = DEFAULT_SLO,
        max_batch_size: int = 32,
        obs: Optional[ObsConfig | Observability] = None,
    ):
        super().__init__(env, slo, obs=obs)
        self.cluster = cluster
        self.tp = tp
        self.max_batch_size = max_batch_size
        self.instances: list[SharedGpuInstance] = []
        self.unplaced: set[str] = set()
        self.rejected: list[Request] = []
        self.gpu_count = len(cluster.gpus)

    def prepare(self, trace: Trace) -> None:
        """Run the placement optimizer over the trace's model set."""
        counts = trace.per_model_counts()
        models = sorted(
            trace.models, key=lambda spec: counts.get(spec.name, 0), reverse=True
        )
        slots = len(self.cluster.gpus) // self.tp
        placements, unplaced = plan_placement(
            models, slots, self.cluster.gpus[0].spec
        )
        self.unplaced = {spec.name for spec in unplaced}
        self.instances = [
            SharedGpuInstance(
                self.env,
                self.cluster.gpus[0].spec,
                placed,
                self.note_finished,
                tp=self.tp,
                max_batch_size=self.max_batch_size,
                name=f"mux{index}",
            )
            for index, placed in enumerate(placements)
            if placed
        ]

    @property
    def placed_model_count(self) -> int:
        return sum(len(instance.models) for instance in self.instances)

    def dispatch(self, request: Request) -> None:
        if request.model in self.unplaced:
            # No capacity was ever provisioned for this model; the
            # request counts fully against SLO attainment.
            self.rejected.append(request)
            return
        candidates = [
            instance for instance in self.instances if instance.hosts(request.model)
        ]
        target = min(candidates, key=lambda instance: instance.load())
        target.enqueue(request)


class DedicatedServing(BaselineServer):
    """The §3 strawman: one dedicated instance per model, no sharing."""

    label = "Dedicated"

    def __init__(
        self,
        env: Environment,
        gpu_spec: GpuSpec,
        tp: int = 1,
        slo: SloSpec = DEFAULT_SLO,
        max_batch_size: int = 32,
        obs: Optional[ObsConfig | Observability] = None,
    ):
        super().__init__(env, slo, obs=obs)
        self.gpu_spec = gpu_spec
        self.tp = tp
        self.max_batch_size = max_batch_size
        self.instances: dict[str, SharedGpuInstance] = {}

    def prepare(self, trace: Trace) -> None:
        for spec in trace.models:
            self.instances[spec.name] = SharedGpuInstance(
                self.env,
                self.gpu_spec,
                [spec],
                self.note_finished,
                tp=self.tp,
                max_batch_size=self.max_batch_size,
                name=f"dedicated:{spec.name}",
            )
        self.gpu_count = len(self.instances) * self.tp

    def dispatch(self, request: Request) -> None:
        self.instances[request.model].enqueue(request)
