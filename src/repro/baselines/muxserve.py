"""MuxServe baseline: static multiplexing (§2.3, §7.2).

MuxServe colocates a few models on each GPU — weights permanently
resident — and multiplexes compute between them.  Its defining
properties, both reproduced here:

* **No auto-scaling cost.**  Switching between colocated models is free,
  which is why MuxServe wins under the strictest SLOs (Figure 13(c)).
* **Hard memory cap.**  The placement optimizer refuses to colocate
  models whose weights plus a minimum KV reservation exceed VRAM — at
  most two 14B models per 80 GB GPU, so at most ~2 models/GPU of
  pooling (the §7.2 observation that MuxServe serves at most 32 models
  on 16 GPUs).  Requests for unplaced models are shed at admission by
  the bundle's :class:`~repro.policy.PlacedModelsAdmission`.

The placement rule itself is the bundle's
:class:`~repro.policy.PlacementPolicy` — memory-constrained first-fit by
default, or :class:`~repro.policy.CostAwarePlacement` under the
``muxserve-cost-placement`` bundle on heterogeneous pools.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.slo import DEFAULT_SLO, SloSpec
from ..engine.batching import BatchingPolicy, ContinuousBatcher
from ..engine.block_manager import BlockManager
from ..engine.request import Request
from ..hardware.cluster import Cluster
from ..hardware.gpu import GpuSpec
from ..models.catalog import ModelSpec
from ..models.latency import LatencyModel
from ..obs import ObsConfig, Observability
from ..policy.placement import MIN_KV_BYTES, MemoryConstrainedPlacement
from ..sim import Environment
from ..workload.trace import Trace
from .base import BaselineServer, BatcherInstanceBase

__all__ = ["MuxServe", "DedicatedServing", "SharedGpuInstance", "plan_placement"]

GiB = 1024**3

# Interleave granularity between colocated models (fine-grained
# temporal multiplexing: a few decode steps per turn, no switch cost).
MUX_CHUNK_STEPS = 4


def plan_placement(
    models: list[ModelSpec],
    gpu_count: int,
    gpu_spec: GpuSpec,
    min_kv_bytes: int = MIN_KV_BYTES,
    usable_fraction: float = 0.9,
) -> tuple[list[list[ModelSpec]], list[ModelSpec]]:
    """Greedy memory-constrained placement over a homogeneous pool.

    Returns (per-GPU model lists, unplaced models).  Models are placed
    first-fit in popularity order (callers pass them most-popular first,
    matching how an optimizer would prioritize).  Kept as a thin wrapper
    over :class:`~repro.policy.MemoryConstrainedPlacement` for callers
    that predate the policy layer.
    """
    policy = MemoryConstrainedPlacement(
        min_kv_bytes=min_kv_bytes, usable_fraction=usable_fraction
    )
    return policy.plan(models, [gpu_spec] * gpu_count)


class SharedGpuInstance(BatcherInstanceBase):
    """One GPU serving a fixed set of colocated models.

    Round-robins between colocated models' engines at a fine temporal
    granularity with zero switching cost.  With a single model this is
    exactly a dedicated vLLM instance (the strawman of §3).
    """

    def __init__(
        self,
        env: Environment,
        gpu_spec: GpuSpec,
        models: list[ModelSpec],
        on_finished,
        tp: int = 1,
        max_batch_size: int = 32,
        name: str = "mux",
    ):
        super().__init__(env, name, on_finished)
        self.gpu_spec = gpu_spec
        self.tp = tp
        self.models = {spec.name: spec for spec in models}
        self._latency = {
            spec.name: LatencyModel(spec, gpu_spec, tp=tp) for spec in models
        }
        weight_total = sum(spec.weight_bytes // tp for spec in models)
        kv_total = int(gpu_spec.vram_bytes * 0.9) - weight_total
        if kv_total <= 0 and models:
            raise MemoryError(f"{name}: colocated weights exceed VRAM")
        per_model_kv = kv_total // max(1, len(models))
        self.batchers = {
            spec.name: ContinuousBatcher(
                BlockManager(per_model_kv, spec, tp=tp),
                BatchingPolicy(max_batch_size=max_batch_size),
            )
            for spec in models
        }
        self._order = list(self.batchers)
        self.busy_time = 0.0
        self._start()

    # -- dispatch ----------------------------------------------------------
    def hosts(self, model: str) -> bool:
        """True if this GPU colocates ``model``."""
        return model in self.models

    def enqueue(self, request: Request) -> None:
        """Queue a request on its model's engine."""
        self.batchers[request.model].enqueue(request)
        self._kick()

    @property
    def active(self) -> bool:
        return any(batcher.has_work for batcher in self.batchers.values())

    def load(self) -> int:
        """Queued + running requests (for least-loaded dispatch)."""
        return sum(
            len(batcher.waiting) + len(batcher.running)
            for batcher in self.batchers.values()
        )

    # -- main loop -----------------------------------------------------------
    def _step(self) -> Generator:
        for model in self._order:
            batcher = self.batchers[model]
            if not batcher.has_work:
                continue
            yield from self._iteration(model, batcher)

    def _iteration(self, model: str, batcher: ContinuousBatcher) -> Generator:
        latency = self._latency[model]
        admitted = batcher.admit_prefills()
        if admitted:
            self._mark_prefilling(admitted)
            duration = latency.prefill_time(
                [request.input_tokens for request in admitted]
            )
            yield self.env.timeout(duration)
            self.busy_time += duration
            self._mark_prefilled(batcher, admitted)
            return
        running = batcher.decode_batch()
        if not running:
            return
        step = latency.decode_step_time(
            len(running), sum(r.context_tokens for r in running)
        )
        steps = max(1, min(MUX_CHUNK_STEPS, min(r.remaining_tokens for r in running)))
        chunk_start = self.env.now
        yield self.env.timeout(steps * step)
        self.busy_time += steps * step
        self._account_decode_chunk(batcher, running, chunk_start, step, steps)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of wall time this GPU ran token generation."""
        elapsed = self.env.now if elapsed is None else elapsed
        return 0.0 if elapsed <= 0 else min(1.0, self.busy_time / elapsed)


class MuxServe(BaselineServer):
    """Static multiplexing across a GPU pool."""

    label = "MuxServe"
    default_policies = "muxserve"

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        tp: int = 1,
        slo: SloSpec = DEFAULT_SLO,
        max_batch_size: int = 32,
        obs: Optional[ObsConfig | Observability] = None,
        policies=None,
    ):
        super().__init__(env, slo, obs=obs, policies=policies)
        self.cluster = cluster
        self.tp = tp
        self.max_batch_size = max_batch_size
        self.instances: list[SharedGpuInstance] = []
        self.unplaced: set[str] = set()
        self.gpu_count = len(cluster.gpus)

    def prepare(self, trace: Trace) -> None:
        """Run the bundle's placement policy over the trace's model set."""
        counts = trace.per_model_counts()
        models = sorted(
            trace.models, key=lambda spec: counts.get(spec.name, 0), reverse=True
        )
        slots = len(self.cluster.gpus) // self.tp
        slot_specs = [self.cluster.gpus[index * self.tp].spec for index in range(slots)]
        placements, unplaced = self.policies.placement.plan(
            models, slot_specs, tracer=self.obs.tracer
        )
        self.unplaced = {spec.name for spec in unplaced}
        self.instances = [
            SharedGpuInstance(
                self.env,
                slot_specs[index],
                placed,
                self.note_finished,
                tp=self.tp,
                max_batch_size=self.max_batch_size,
                name=f"mux{index}",
            )
            for index, placed in enumerate(placements)
            if placed
        ]

    @property
    def placed_model_count(self) -> int:
        return sum(len(instance.models) for instance in self.instances)

    def dispatch(self, request: Request) -> None:
        # Unplaced models were already shed at admission by the bundle's
        # PlacedModelsAdmission; route among the hosting instances.
        target = self.policies.dispatch.place(self, request)
        if target is None:
            self.note_rejected(request)
            return
        target.enqueue(request)


class DedicatedServing(BaselineServer):
    """The §3 strawman: one dedicated instance per model, no sharing."""

    label = "Dedicated"
    default_policies = "muxserve"

    def __init__(
        self,
        env: Environment,
        gpu_spec: GpuSpec,
        tp: int = 1,
        slo: SloSpec = DEFAULT_SLO,
        max_batch_size: int = 32,
        obs: Optional[ObsConfig | Observability] = None,
        policies=None,
    ):
        super().__init__(env, slo, obs=obs, policies=policies)
        self.gpu_spec = gpu_spec
        self.tp = tp
        self.max_batch_size = max_batch_size
        self.instances: dict[str, SharedGpuInstance] = {}

    def prepare(self, trace: Trace) -> None:
        for spec in trace.models:
            self.instances[spec.name] = SharedGpuInstance(
                self.env,
                self.gpu_spec,
                [spec],
                self.note_finished,
                tp=self.tp,
                max_batch_size=self.max_batch_size,
                name=f"dedicated:{spec.name}",
            )
        self.gpu_count = len(self.instances) * self.tp

    def dispatch(self, request: Request) -> None:
        self.instances[request.model].enqueue(request)
