"""Shared machinery for baseline serving systems.

The implementation lives in :mod:`repro.core.serving`; this module
re-exports it so baselines keep a local, stable import path.
"""

from ..core.serving import BaselineServer

__all__ = ["BaselineServer"]
