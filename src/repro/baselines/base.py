"""Shared machinery for baseline serving systems.

:class:`BaselineServer` (the serving-side base) lives in
:mod:`repro.core.serving` and is re-exported here as the baselines'
stable import path.  :class:`BatcherInstanceBase` is the instance-side
counterpart: the wake/sleep driver loop and the request-lifecycle
accounting that ServerlessLLM's and MuxServe's instances used to carry
as copy-pasted blocks — prefill timestamping, decode-chunk token
recording with vLLM-style preemption on KV exhaustion, and retirement of
finished requests.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

from ..core.serving import BaselineServer
from ..engine.batching import ContinuousBatcher
from ..engine.request import Phase, Request
from ..sim import ContTask, Environment, Event

__all__ = ["BaselineServer", "BatcherInstanceBase"]


class BatcherInstanceBase:
    """One pool member driven by a wake/sleep simulation process.

    Subclasses define the :attr:`active` property (is there work?) and a
    ``_step()`` generator (one scheduling iteration); everything else —
    parking on a wake event when idle, waking on :meth:`_kick`, and the
    :class:`~repro.engine.batching.ContinuousBatcher` request-lifecycle
    accounting — is shared.
    """

    def __init__(self, env: Environment, name: str, on_finished: Callable[[Request], None]):
        self.env = env
        self.name = name
        self.on_finished = on_finished
        self._wake: Optional[Event] = None
        self.process = None

    # -- subclass interface --------------------------------------------------
    @property
    def active(self) -> bool:
        """True while the instance has queued or running work."""
        raise NotImplementedError

    def _step(self) -> Generator:
        """One scheduling iteration (only called while :attr:`active`)."""
        raise NotImplementedError

    # -- driver loop ---------------------------------------------------------
    def _start(self) -> None:
        """Launch the driver task (call at the end of subclass ctors)."""
        self.process = _DriverTask(self.env, self)

    def _kick(self) -> None:
        """Wake the driver loop after new work arrives."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # -- request-lifecycle accounting ----------------------------------------
    def _mark_prefilling(self, admitted: Sequence[Request]) -> None:
        """Stamp a batch of admitted requests as entering prefill."""
        now = self.env.now
        for request in admitted:
            request.phase = Phase.PREFILLING
            request.prefill_start = now

    def _mark_prefilled(
        self, batcher: ContinuousBatcher, admitted: Sequence[Request]
    ) -> None:
        """Stamp prefill completion (the first output token) and start decoding."""
        now = self.env.now
        for request in admitted:
            request.prefill_end = now
            request.record_tokens([now])
            request.decode_enqueue = now
        batcher.start_decoding(admitted)
        self._finish_done(batcher)

    def _account_decode_chunk(
        self,
        batcher: ContinuousBatcher,
        running: Sequence[Request],
        chunk_start: float,
        step: float,
        steps: int,
    ) -> None:
        """Record one decode chunk's tokens and grow each request's KV.

        A request whose KV block allocation fails is preempted
        vLLM-style: blocks released, moved to the head of the waiting
        queue for recomputation.
        """
        times = [chunk_start + (i + 1) * step for i in range(steps)]
        for request in running:
            context_before = request.context_tokens
            request.record_tokens(times)
            request.decode_exec_time += steps * step
            try:
                batcher.block_manager.append_tokens(
                    request.request_id, context_before, steps
                )
            except MemoryError:
                batcher.block_manager.release(request.request_id)
                batcher.running.remove(request)
                request.phase = Phase.QUEUED
                batcher.waiting.insert(0, request)
        self._finish_done(batcher)

    def _finish_done(self, batcher: ContinuousBatcher) -> None:
        """Retire and report every finished request still in ``batcher``."""
        for request in [r for r in batcher.running if r.finished]:
            batcher.retire(request)
            request.complete(self.env.now)
            self.on_finished(request)


class _DriverTask(ContTask):
    """The wake/sleep driver loop as a continuation state machine.

    Each ``_step()`` scheduling iteration (a subclass generator) runs
    through the :class:`~repro.sim.ContTask` bridge, so its events fire
    exactly as the old ``yield from`` did; only the outer ``while True``
    generator frame is gone.
    """

    __slots__ = ("_inst",)

    def __init__(self, env: Environment, inst: BatcherInstanceBase) -> None:
        self._inst = inst
        ContTask.__init__(self, env)

    def _start(self, value: object) -> Event:
        return self._main()

    def _main(self) -> Event:
        inst = self._inst
        if not inst.active:
            inst._wake = self.env.event()
            self._send = self._woken
            return inst._wake
        return self._run_gen(inst._step(), self._step_done)

    def _woken(self, value: object) -> Event:
        self._inst._wake = None
        return self._main()

    def _step_done(self, value: object) -> Event:
        return self._main()
