"""Mergeable fleet metrics: log-bucketed histograms, shard stats, rollup.

Fleet-scale replays dispose of requests as they finish (peak memory must
track concurrency, not trace length), so per-shard measurement has to be
*streaming*: every terminal request is folded once into a
:class:`ShardStats` and dropped.  All the state is mergeable — counters
and :class:`LatencyHistogram` buckets — so a :class:`FleetRollup` can
combine K shards into fleet-wide p50/p99 TTFT/TBT, per-token SLO
attainment (paper §2.1: tokens never generated count as missed), and
$/token, without ever holding a request list.

The histogram is geometric (32 buckets per decade, 100 µs .. 10 ks), so
``observe`` is O(1) and quantiles carry at most ~7.5% relative error —
the right trade for latency percentiles over 10^5+ requests.  The
in-repo :class:`repro.obs.metrics.Histogram` keeps a sorted list per
observation (O(n) inserts) and is deliberately *not* used here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.slo import DEFAULT_SLO, SloSpec, tokens_met
from ..engine.request import Phase, Request

__all__ = ["LatencyHistogram", "ShardStats", "FleetRollup"]

# 32 geometric buckets per decade over [1e-4 s, 1e4 s) — 8 decades.
_BUCKETS_PER_DECADE = 32
_DECADES = 8
_FLOOR = 1e-4
_BUCKET_COUNT = _BUCKETS_PER_DECADE * _DECADES
_SCALE = _BUCKETS_PER_DECADE / math.log(10.0)
_LOG_FLOOR = math.log(_FLOOR)
# Geometric midpoint of each bucket, precomputed for quantile readout.
_MIDPOINTS = [
    math.exp(_LOG_FLOOR + (index + 0.5) / _SCALE) for index in range(_BUCKET_COUNT)
]


class LatencyHistogram:
    """Fixed-bucket geometric histogram: O(1) insert, exact merge."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * _BUCKET_COUNT
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if value <= 0.0:
            index = 0
        else:
            index = int((math.log(value) - _LOG_FLOOR) * _SCALE)
            if index < 0:
                index = 0
            elif index >= _BUCKET_COUNT:
                index = _BUCKET_COUNT - 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "LatencyHistogram") -> None:
        for index, count in enumerate(other.counts):
            if count:
                self.counts[index] += count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate quantile (bucket geometric midpoint, clamped to
        the exact observed min/max)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return math.nan
        rank = q * (self.count - 1)
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative > rank:
                return min(max(_MIDPOINTS[index], self.min), self.max)
        return self.max

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }


@dataclass
class ShardStats:
    """Streaming per-shard accounting, folded one request at a time."""

    shard: int = 0
    slo: SloSpec = DEFAULT_SLO
    requests: int = 0
    finished: int = 0
    failed: int = 0
    rejected: int = 0
    #: Requests this shard turned away at admission that the fleet
    #: controller re-submitted to another shard (their terminal
    #: disposition is recorded wherever they finally land).
    spilled: int = 0
    #: Catalog migrations executed by the fleet controller: models this
    #: shard shed (out) / absorbed (in) mid-run.
    migrations_out: int = 0
    migrations_in: int = 0
    no_first_token: int = 0
    tokens_generated: int = 0
    tokens_expected: int = 0
    tokens_met: int = 0
    input_tokens: int = 0
    ttft: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Per-request mean time-between-tokens (needs >= 2 tokens).
    tbt: LatencyHistogram = field(default_factory=LatencyHistogram)

    def fold(self, request: Request) -> None:
        """Absorb one terminally disposed request; the request may be
        garbage-collected immediately afterwards."""
        self.requests += 1
        if request.phase is Phase.REJECTED:
            self.rejected += 1
        elif request.phase is Phase.FAILED:
            self.failed += 1
        elif request.finished:
            self.finished += 1
        met, generated = tokens_met(
            request.arrival, request.token_times, self.slo
        )
        self.tokens_met += met
        self.tokens_generated += generated
        self.tokens_expected += request.output_tokens
        self.input_tokens += request.input_tokens
        times = request.token_times
        if times:
            self.ttft.observe(times[0] - request.arrival)
            if len(times) >= 2:
                self.tbt.observe((times[-1] - times[0]) / (len(times) - 1))
        else:
            self.no_first_token += 1

    def fold_spilled(self, request: Request) -> None:
        """Absorb a rejection this shard handed to another shard.

        A spill is this shard's final word on the request — it counts
        toward ``requests`` so per-shard submissions reconcile
        (``finished + failed + rejected + spilled == submitted``) — but
        its tokens are *not* charged here: the shard that ultimately
        serves (or rejects) the re-submission accounts for them.
        """
        self.requests += 1
        self.spilled += 1

    @property
    def slo_attainment(self) -> float:
        """Fraction of *expected* tokens meeting their deadline (§2.1)."""
        return (
            self.tokens_met / self.tokens_expected if self.tokens_expected else 1.0
        )

    def merge(self, other: "ShardStats") -> None:
        self.requests += other.requests
        self.finished += other.finished
        self.failed += other.failed
        self.rejected += other.rejected
        self.spilled += other.spilled
        self.migrations_out += other.migrations_out
        self.migrations_in += other.migrations_in
        self.no_first_token += other.no_first_token
        self.tokens_generated += other.tokens_generated
        self.tokens_expected += other.tokens_expected
        self.tokens_met += other.tokens_met
        self.input_tokens += other.input_tokens
        self.ttft.merge(other.ttft)
        self.tbt.merge(other.tbt)

    def as_dict(self) -> dict[str, object]:
        return {
            "shard": self.shard,
            "requests": self.requests,
            "finished": self.finished,
            "failed": self.failed,
            "rejected": self.rejected,
            "spilled": self.spilled,
            "migrations_out": self.migrations_out,
            "migrations_in": self.migrations_in,
            "no_first_token": self.no_first_token,
            "tokens_generated": self.tokens_generated,
            "tokens_expected": self.tokens_expected,
            "slo_attainment": self.slo_attainment,
            "ttft": self.ttft.as_dict(),
            "tbt": self.tbt.as_dict(),
        }


class FleetRollup:
    """Fleet-wide aggregate of per-shard :class:`ShardStats`."""

    def __init__(self, shards: list[ShardStats]):
        self.shards = list(shards)
        self.total = ShardStats(shard=-1, slo=shards[0].slo if shards else DEFAULT_SLO)
        for stats in self.shards:
            self.total.merge(stats)

    # Aggregate views -------------------------------------------------------
    @property
    def requests(self) -> int:
        return self.total.requests

    @property
    def slo_attainment(self) -> float:
        return self.total.slo_attainment

    def ttft_quantile(self, q: float) -> float:
        return self.total.ttft.quantile(q)

    def tbt_quantile(self, q: float) -> float:
        return self.total.tbt.quantile(q)

    def cost_per_token(self, cost_usd: float) -> Optional[float]:
        """USD per generated output token, given the run's GPU bill."""
        if not self.total.tokens_generated:
            return None
        return cost_usd / self.total.tokens_generated

    def summary(self) -> dict[str, object]:
        """Fleet-level metric rollup (what the demo and CI print)."""
        total = self.total
        return {
            "shards": len(self.shards),
            "requests": total.requests,
            "finished": total.finished,
            "failed": total.failed,
            "rejected": total.rejected,
            "spilled": total.spilled,
            "migrations": total.migrations_out,
            "slo_attainment": total.slo_attainment,
            "tokens_generated": total.tokens_generated,
            "ttft_p50": total.ttft.quantile(0.50),
            "ttft_p99": total.ttft.quantile(0.99),
            "tbt_p50": total.tbt.quantile(0.50),
            "tbt_p99": total.tbt.quantile(0.99),
        }
