"""The live fleet controller: observe, forecast, rebalance, spill.

PR 6 gave the fleet a *static* control plane — the catalog is hashed
across shards once, ``rebalance()`` is a pre-replay pinning hook, and a
request rejected at one shard's admission gate is simply dropped even
when the shard next door is idle.  This module closes the loop the way
DeepServe's control plane does (see PAPERS.md), consuming the
forecast-style signals "Taming the Chaos" argues for instead of
point-in-time queue depths:

* A :class:`FleetController` runs as a periodic simulation process
  (configurable ``tick``).  Each tick it snapshots per-shard telemetry
  (admission pressure, in-flight concurrency, the streaming rollup's
  SLO attainment over the window) into a :class:`FleetView`, updates
  per-model EWMA/slope arrival-rate forecasts (:class:`ModelForecast`),
  and asks its :class:`~repro.policy.base.FleetControlPolicy` for
  decisions.
* **Live rebalance** — the policy returns catalog moves; the controller
  re-pins each model on the partitioner so *future* arrivals route to
  the new shard while in-flight requests drain on the old one, warms
  the target shard's model cache, and records the move in both shards'
  rollup stats (``migrations_out`` / ``migrations_in``).
* **Spillover** — when a shard rejects a request at admission, the
  controller may re-submit it to a less-pressured shard (an ordinary
  zero-or-more-delay simulation event, never an inline callback).  Hops
  are bounded by a :class:`SpillLedger`; the spilling shard records the
  disposition as ``spilled`` so per-shard submissions still reconcile
  exactly (``finished + failed + rejected + spilled == submitted``).
* **Scaling hints** — each shard's forecast-load share is fed into the
  existing :class:`~repro.policy.base.ScalingPolicy` seam through
  ``system.apply_scaling_hint`` (policies opt in by implementing
  ``observe_fleet_hint``).

Every action happens inside ordinary sim events (the tick timeout, the
spill re-submission process), so controller-enabled runs obey the
DESIGN.md intra-timestamp ordering rules and stay byte-identical across
same-seed replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.request import Phase
from ..policy.fleet_control import get_fleet_policy

__all__ = [
    "ControllerConfig",
    "ModelForecast",
    "ShardTelemetry",
    "FleetView",
    "SpillLedger",
    "FleetController",
]


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the fleet control loop (``REPRO_FLEET_*`` surface)."""

    #: Registered fleet-control policy name (``"static"``,
    #: ``"forecast"``) or a :class:`FleetControlPolicy` object.
    policy: object = "forecast"
    #: Control-loop period in simulated seconds (a fixed grid: the tick
    #: process always re-arms with the same delay).
    tick: float = 5.0
    #: EWMA smoothing factor for per-model arrival-rate forecasts.
    ewma_alpha: float = 0.3
    #: Max cross-shard re-submissions per rejected request; 0 disables
    #: spillover entirely.
    max_spill_hops: int = 2
    #: Simulated delay of one spill re-submission (cross-shard RPC); 0
    #: re-submits later within the same timestamp's event batch.
    spill_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.tick <= 0:
            raise ValueError("tick must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.max_spill_hops < 0:
            raise ValueError("max_spill_hops must be non-negative")
        if self.spill_delay < 0:
            raise ValueError("spill_delay must be non-negative")

    def resolve_policy(self) -> object:
        """The policy object this config names (or carries directly)."""
        if isinstance(self.policy, str):
            return get_fleet_policy(self.policy)
        return self.policy


@dataclass
class ModelForecast:
    """EWMA arrival rate plus its slope for one model."""

    rate: float = 0.0
    slope: float = 0.0
    observations: int = 0

    @property
    def predicted(self) -> float:
        """Rate projected one tick ahead (clamped at zero)."""
        return max(0.0, self.rate + self.slope)

    def update(self, observed: float, alpha: float, tick: float) -> None:
        if self.observations == 0:
            self.rate = observed
            self.slope = 0.0
        else:
            previous = self.rate
            self.rate = alpha * observed + (1.0 - alpha) * previous
            # Slope is pre-scaled by the tick so ``predicted`` reads one
            # tick ahead without re-multiplying.
            self.slope = self.rate - previous
        self.observations += 1


@dataclass(frozen=True)
class ShardTelemetry:
    """One shard's control-plane observables at a tick boundary."""

    index: int
    admission_pressure: float
    in_flight: int
    #: SLO attainment over the last window (1.0 when no tokens came due).
    window_attainment: float
    requests: int
    spilled: int


@dataclass
class FleetView:
    """What a :class:`FleetControlPolicy` sees when asked to decide."""

    now: float
    tick: float
    shards: list[ShardTelemetry]
    forecasts: dict[str, ModelForecast]
    partitioner: object

    def pressure_of(self, shard: int) -> float:
        return self.shards[shard].admission_pressure

    def forecast_shard_loads(self) -> list[float]:
        """Forecast req/s per shard under the current catalog mapping."""
        loads = [0.0] * len(self.shards)
        shard_of = self.partitioner.shard_of
        for name in sorted(self.forecasts):
            loads[shard_of(name)] += self.forecasts[name].predicted
        return loads


class SpillLedger:
    """Bounded-hop bookkeeping for spillover re-submissions.

    Tracks hops per request id only while a request is actually
    spilling — entries are dropped at terminal disposition — so memory
    is bounded by in-flight spilled concurrency, matching the fleet's
    streaming-memory discipline.
    """

    __slots__ = ("max_hops", "_hops")

    def __init__(self, max_hops: int):
        if max_hops < 0:
            raise ValueError("max_hops must be non-negative")
        self.max_hops = max_hops
        self._hops: dict[int, int] = {}

    def can_spill(self, request_id: int) -> bool:
        return self._hops.get(request_id, 0) < self.max_hops

    def record_hop(self, request_id: int) -> int:
        """Count one hop; returns the request's total so far."""
        hops = self._hops.get(request_id, 0) + 1
        if hops > self.max_hops:
            raise RuntimeError(
                f"request {request_id} exceeded the spill bound "
                f"({hops} > {self.max_hops})"
            )
        self._hops[request_id] = hops
        return hops

    def settle(self, request_id: int) -> None:
        """Forget a request that reached a terminal disposition."""
        self._hops.pop(request_id, None)

    def hops_of(self, request_id: int) -> int:
        return self._hops.get(request_id, 0)

    def __len__(self) -> int:
        return len(self._hops)


class FleetController:
    """Periodic control loop over a :class:`~repro.fleet.FleetRunner`."""

    def __init__(self, runner, config: ControllerConfig):
        self.runner = runner
        self.config = config
        self.policy = config.resolve_policy()
        self.ledger = SpillLedger(config.max_spill_hops)
        self.forecasts: dict[str, ModelForecast] = {}
        self.ticks = 0
        self.migrations: list[tuple[str, int, int]] = []
        self.spills = 0
        #: Rejections that stood because the hop bound was exhausted.
        self.spill_bound_hits = 0
        self._arrivals: dict[str, int] = {}
        #: Callbacks fired on every *genuine* terminal disposition (not
        #: on spills, which re-submit and settle elsewhere) — the
        #: session coordinator advances DAGs through this.
        self.settle_hooks: list = []
        #: Per-shard (tokens_met, tokens_expected) at the last tick, for
        #: windowed attainment.
        self._window = [(0, 0) for _ in runner.shards]
        self._stream = None
        if runner.obs.enabled:
            metrics = runner.obs.metrics
            metrics.gauge("ticks", scope="controller").set_fn(lambda: self.ticks)
            metrics.gauge("migrations", scope="controller").set_fn(
                lambda: len(self.migrations)
            )
            metrics.gauge("spills", scope="controller").set_fn(
                lambda: self.spills
            )

    # -- data-path hooks -----------------------------------------------------
    def bind_stream(self, stream) -> None:
        """Called by the runner at run start (spec lookups for warming)."""
        self._stream = stream

    def note_arrival(self, model: str) -> None:
        """Pump hook: count one arrival toward this tick's forecasts."""
        self._arrivals[model] = self._arrivals.get(model, 0) + 1

    def make_sink(self, shard):
        """The disposition sink installed on ``shard`` — classifies each
        terminal request as a genuine disposition or a spill."""
        fold = shard.stats.fold
        fold_spilled = shard.stats.fold_spilled
        settle = self.ledger.settle

        def sink(request) -> None:
            if request.phase is Phase.REJECTED and self._try_spill(shard, request):
                fold_spilled(request)
            else:
                settle(request.request_id)
                fold(request)
                for hook in self.settle_hooks:
                    hook(request)

        return sink

    # -- spillover -----------------------------------------------------------
    def _try_spill(self, shard, request) -> bool:
        # A policy can mark a rejection as final (the cost router's
        # session-budget shedding): re-routing it to another shard would
        # evade the decision, not the capacity problem.
        if getattr(request, "no_spill", False):
            return False
        if not self.ledger.can_spill(request.request_id):
            if self.config.max_spill_hops:
                self.spill_bound_hits += 1
            return False
        target = self.policy.spill_target(
            self._live_view(), shard.index, request
        )
        if (
            target is None
            or target == shard.index
            or not 0 <= target < len(self.runner.shards)
        ):
            return False
        hops = self.ledger.record_hop(request.request_id)
        self.spills += 1
        # Re-submission is its own sim event (DESIGN.md ordering rule 1:
        # never re-enter the data path from inside a disposition
        # callback), so the rejected request leaves shard ``shard`` this
        # event and arrives at ``target`` a later one.
        self.runner.env.process(self._respill(request.trace, request.spec, target))
        tracer = self.runner.obs.tracer
        if tracer.enabled:
            tracer.instant(
                "fleet.controller.spill",
                cat="fleet",
                track="controller",
                request_id=request.request_id,
                model=request.model,
                src=shard.index,
                dst=target,
                hops=hops,
            )
        return True

    def _respill(self, trace_request, spec, target: int):
        yield self.runner.env.timeout(self.config.spill_delay)
        self.runner.shards[target].system.submit(trace_request, spec)

    # -- the control loop ----------------------------------------------------
    def start(self) -> None:
        """Arm the periodic tick process on the runner's clock."""
        self.runner.env.process(self._loop())

    def _loop(self):
        env = self.runner.env
        tick = self.config.tick
        while True:
            # Fixed grid (DESIGN.md ordering rule 4): the delay never
            # varies, so the controller's wakeups stay aligned across
            # runs regardless of what the data path is doing.
            yield env.timeout(tick)
            self._tick()

    def _tick(self) -> None:
        self.ticks += 1
        self._update_forecasts()
        view = self._tick_view()
        for move in self.policy.plan_migrations(view):
            self._apply_migration(*move)
        for telemetry in view.shards:
            hint = self.policy.scaling_hint(view, telemetry.index)
            if hint is not None:
                self.runner.shards[telemetry.index].system.apply_scaling_hint(hint)
        obs = self.runner.obs
        if obs.enabled:
            for load, telemetry in zip(view.forecast_shard_loads(), view.shards):
                obs.metrics.gauge(
                    "forecast_load", scope=f"shard-{telemetry.index}"
                ).set(load)
        if obs.tracer.enabled:
            obs.tracer.instant(
                "fleet.controller.tick",
                cat="fleet",
                track="controller",
                tick=self.ticks,
                models_forecast=len(self.forecasts),
                migrations=len(self.migrations),
                spills=self.spills,
            )

    def _update_forecasts(self) -> None:
        alpha = self.config.ewma_alpha
        tick = self.config.tick
        for model in sorted(set(self.forecasts) | set(self._arrivals)):
            observed = self._arrivals.get(model, 0) / tick
            forecast = self.forecasts.get(model)
            if forecast is None:
                forecast = self.forecasts[model] = ModelForecast()
            forecast.update(observed, alpha, tick)
        self._arrivals.clear()

    # -- telemetry -----------------------------------------------------------
    def _telemetry(self, windowed: bool) -> list[ShardTelemetry]:
        out = []
        for shard in self.runner.shards:
            stats = shard.stats
            if windowed:
                prev_met, prev_expected = self._window[shard.index]
                d_met = stats.tokens_met - prev_met
                d_expected = stats.tokens_expected - prev_expected
                self._window[shard.index] = (
                    stats.tokens_met,
                    stats.tokens_expected,
                )
                attainment = d_met / d_expected if d_expected else 1.0
            else:
                attainment = stats.slo_attainment
            out.append(
                ShardTelemetry(
                    index=shard.index,
                    admission_pressure=shard.system.admission_pressure(),
                    in_flight=shard.system.registry.in_flight,
                    window_attainment=attainment,
                    requests=stats.requests,
                    spilled=stats.spilled,
                )
            )
        return out

    def _tick_view(self) -> FleetView:
        return FleetView(
            now=self.runner.env.now,
            tick=self.config.tick,
            shards=self._telemetry(windowed=True),
            forecasts=self.forecasts,
            partitioner=self.runner.partitioner,
        )

    def _live_view(self) -> FleetView:
        """A fresh (non-window-consuming) view for spill decisions."""
        return FleetView(
            now=self.runner.env.now,
            tick=self.config.tick,
            shards=self._telemetry(windowed=False),
            forecasts=self.forecasts,
            partitioner=self.runner.partitioner,
        )

    # -- migration -----------------------------------------------------------
    def _apply_migration(self, model: str, src: int, dst: int) -> None:
        shards = self.runner.shards
        if not (0 <= src < len(shards) and 0 <= dst < len(shards)) or src == dst:
            return
        # Idempotent with policies (like the forecast bundle) that pin
        # through partitioner.rebalance() while planning.
        self.runner.partitioner.pin(model, dst)
        spec = None
        if self._stream is not None:
            try:
                spec = self._stream.spec_of(model)
            except KeyError:
                spec = None
        if spec is not None:
            # Future arrivals hit the new shard's model cache warm, the
            # same steady-state prepare() establishes; in-flight work on
            # the old shard drains untouched.
            warm = getattr(shards[dst].system, "warm", None)
            if warm is not None:
                warm([spec])
            shards[src].models = tuple(
                s for s in shards[src].models if s.name != model
            )
            if all(s.name != model for s in shards[dst].models):
                shards[dst].models = shards[dst].models + (spec,)
        shards[src].stats.migrations_out += 1
        shards[dst].stats.migrations_in += 1
        self.migrations.append((model, src, dst))
        tracer = self.runner.obs.tracer
        if tracer.enabled:
            tracer.instant(
                "fleet.controller.migrate",
                cat="fleet",
                track="controller",
                model=model,
                src=src,
                dst=dst,
            )

    # -- results -------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Controller accounting for :class:`FleetResult`."""
        policy = self.policy
        return {
            "policy": getattr(policy, "name", type(policy).__name__),
            "tick": self.config.tick,
            "ticks": self.ticks,
            "migrations": len(self.migrations),
            "moves": list(self.migrations),
            "spills": self.spills,
            "spill_bound_hits": self.spill_bound_hits,
            "models_forecast": len(self.forecasts),
        }
